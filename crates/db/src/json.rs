//! JSON text serialization for [`Value`], used as the on-disk
//! persistence format (one document per line).
//!
//! This is a complete, dependency-free JSON reader/writer for the
//! document model. Numbers that are integral and fit in `i64` parse to
//! [`Value::Int`]; everything else numeric becomes [`Value::Float`].

use crate::error::DbError;
use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Serializes a value to compact JSON.
pub fn to_json(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value);
    out
}

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                // Always keep a decimal point / exponent so floats
                // round-trip as floats.
                let text = format!("{f}");
                out.push_str(&text);
                if !text.contains('.') && !text.contains('e') && !text.contains('E') {
                    out.push_str(".0");
                }
            } else {
                // JSON has no Inf/NaN; encode as null like most writers.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(map) => {
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document into a [`Value`].
///
/// # Errors
///
/// Returns [`DbError::Parse`] describing the byte offset and cause for
/// malformed input, including trailing garbage after the top-level value.
pub fn from_json(text: &str) -> Result<Value, DbError> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> DbError {
        DbError::Parse {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), DbError> {
        if self.bump() == Some(byte) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.error(&format!("expected {:?}", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, DbError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_map(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Value) -> Result<Value, DbError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{literal}`")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, DbError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("sliced on ASCII boundaries");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error("invalid number"))
    }

    fn parse_string(&mut self) -> Result<String, DbError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = self.parse_hex4()?;
                        // Handle surrogate pairs for completeness.
                        let c = if (0xd800..0xdc00).contains(&code) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.error("unpaired surrogate"));
                            }
                            let low = self.parse_hex4()?;
                            if !(0xdc00..0xe000).contains(&low) {
                                return Err(self.error("invalid low surrogate"));
                            }
                            let combined = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(code)
                        };
                        out.push(c.ok_or_else(|| self.error("invalid unicode escape"))?);
                    }
                    _ => return Err(self.error("invalid escape sequence")),
                },
                Some(byte) if byte < 0x20 => return Err(self.error("control character in string")),
                Some(byte) => {
                    // Re-assemble multi-byte UTF-8 from the input slice.
                    if byte < 0x80 {
                        out.push(byte as char);
                    } else {
                        let width = match byte {
                            0xc0..=0xdf => 2,
                            0xe0..=0xef => 3,
                            0xf0..=0xf7 => 4,
                            _ => return Err(self.error("invalid UTF-8")),
                        };
                        let start = self.pos - 1;
                        let end = start + width;
                        if end > self.bytes.len() {
                            return Err(self.error("truncated UTF-8"));
                        }
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.error("invalid UTF-8"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, DbError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.error("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.error("invalid hex digit"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_array(&mut self) -> Result<Value, DbError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.error("expected `,` or `]`"));
                }
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, DbError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Map(map)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.error("expected `,` or `}`"));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) {
        let text = to_json(v);
        let back = from_json(&text).unwrap_or_else(|e| panic!("parse {text:?}: {e}"));
        assert_eq!(&back, v, "via {text}");
    }

    #[test]
    fn scalar_round_trips() {
        round_trip(&Value::Null);
        round_trip(&Value::Bool(true));
        round_trip(&Value::Bool(false));
        round_trip(&Value::Int(0));
        round_trip(&Value::Int(i64::MAX));
        round_trip(&Value::Int(i64::MIN));
        round_trip(&Value::Float(1.5));
        round_trip(&Value::Float(-0.0001));
        round_trip(&Value::Float(3e30));
        round_trip(&Value::Str(String::new()));
        round_trip(&Value::Str("héllo \"wörld\"\n\t\\".to_owned()));
        round_trip(&Value::Str("emoji: \u{1F600} done".to_owned()));
    }

    #[test]
    fn float_round_trips_as_float() {
        let v = from_json("1.0").unwrap();
        assert_eq!(v, Value::Float(1.0));
        assert_eq!(to_json(&v), "1.0");
        assert_eq!(from_json("2e3").unwrap(), Value::Float(2000.0));
        assert_eq!(from_json("7").unwrap(), Value::Int(7));
    }

    #[test]
    fn nested_round_trip() {
        round_trip(&Value::map([
            ("empty_map", Value::map([] as [(&str, Value); 0])),
            ("empty_arr", Value::array([])),
            (
                "nested",
                Value::map([(
                    "list",
                    Value::array([Value::Int(1), Value::Str("two".into()), Value::Null]),
                )]),
            ),
        ]));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"abc",
            "{\"a\":}",
            "nul",
            "01x",
            "[1] garbage",
            "{'a':1}",
        ] {
            assert!(from_json(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn surrogate_pairs_parse() {
        let v = from_json("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, Value::Str("\u{1F600}".to_owned()));
        assert!(from_json("\"\\ud83d\"").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = from_json("  { \"a\" : [ 1 , 2 ] }\n").unwrap();
        assert_eq!(v.at("a.1").and_then(Value::as_int), Some(2));
    }

    #[test]
    fn nonfinite_floats_serialize_as_null() {
        assert_eq!(to_json(&Value::Float(f64::NAN)), "null");
        assert_eq!(to_json(&Value::Float(f64::INFINITY)), "null");
    }
}
