//! Error type for database operations.

use std::fmt;

/// Errors produced by the embedded document database.
#[derive(Debug)]
#[non_exhaustive]
pub enum DbError {
    /// A document with the same `_id` already exists in the collection.
    DuplicateId {
        /// Collection name.
        collection: String,
        /// The colliding id.
        id: String,
    },
    /// A unique-key constraint was violated.
    UniqueViolation {
        /// Collection name.
        collection: String,
        /// The constrained field path.
        field: String,
        /// Rendered value that collided.
        value: String,
    },
    /// A different index already covers the path being declared.
    IndexConflict {
        /// Collection name.
        collection: String,
        /// The contested field path.
        path: String,
    },
    /// Document rejected because it is not a map or lacks an `_id` string.
    InvalidDocument {
        /// Why the document was rejected.
        reason: String,
    },
    /// A lookup found nothing.
    NotFound {
        /// What was searched for.
        query: String,
    },
    /// Malformed persisted JSON.
    Parse {
        /// Byte offset of the failure.
        offset: usize,
        /// Cause.
        message: String,
    },
    /// A persisted record (document line, blob, or journal frame) is
    /// corrupt. Only surfaced when loading with
    /// [`LoadOptions::strict`](crate::LoadOptions::strict); the default
    /// lenient load counts corrupt records instead.
    CorruptRecord {
        /// The file holding the corrupt record.
        path: String,
        /// What was wrong with it.
        detail: String,
    },
    /// The operation requires a directory-attached database (one opened
    /// with [`Database::open`](crate::Database::open)).
    NotAttached,
    /// A previous journal append failed partway and could not be rolled
    /// back, leaving a torn frame at the journal's tail. Further
    /// appends are refused — they would land after the tear and be
    /// silently discarded by replay — until a
    /// [`Database::checkpoint`](crate::Database::checkpoint) rewrites
    /// the journal.
    JournalPoisoned,
    /// Filesystem failure during persistence.
    Io(std::io::Error),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::DuplicateId { collection, id } => {
                write!(f, "duplicate _id {id:?} in collection {collection:?}")
            }
            DbError::UniqueViolation {
                collection,
                field,
                value,
            } => write!(
                f,
                "unique constraint on {collection:?}.{field} violated by value {value}"
            ),
            DbError::IndexConflict { collection, path } => write!(
                f,
                "an index with a different spec already covers {collection:?}.{path}"
            ),
            DbError::InvalidDocument { reason } => {
                write!(f, "invalid document: {reason}")
            }
            DbError::NotFound { query } => write!(f, "no document matches {query:?}"),
            DbError::Parse { offset, message } => {
                write!(f, "JSON parse error at byte {offset}: {message}")
            }
            DbError::CorruptRecord { path, detail } => {
                write!(f, "corrupt record in {path}: {detail}")
            }
            DbError::NotAttached => {
                write!(
                    f,
                    "database is not attached to a directory (use Database::open)"
                )
            }
            DbError::JournalPoisoned => write!(
                f,
                "journal is poisoned by an unrollbackable failed append; checkpoint to recover"
            ),
            DbError::Io(err) => write!(f, "i/o failure: {err}"),
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DbError {
    fn from(err: std::io::Error) -> DbError {
        DbError::Io(err)
    }
}
