//! The top-level database: named collections + blob store + persistence.

use crate::blobstore::BlobStore;
use crate::collection::Collection;
use crate::error::DbError;
use crate::json;
use parking_lot::RwLock;
use simart_observe as observe;
use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// An embedded document database.
///
/// Mirrors how the paper's framework uses MongoDB: a handful of named
/// collections (`artifacts`, `runs`, …) plus a file store. Handles are
/// cheap clones sharing storage.
///
/// Persistence is directory-based: [`Database::save`] writes one
/// `.jsonl` file per collection (one document per line) and a `blobs/`
/// directory with one file per content hash; [`Database::load`] reads
/// the same layout back.
#[derive(Debug, Clone, Default)]
pub struct Database {
    collections: Arc<RwLock<BTreeMap<String, Collection>>>,
    blobs: BlobStore,
}

impl Database {
    /// Creates an empty in-memory database.
    pub fn in_memory() -> Database {
        Database::default()
    }

    /// Gets (creating on first use) the named collection.
    pub fn collection(&self, name: &str) -> Collection {
        let mut collections = self.collections.write();
        collections.entry(name.to_owned()).or_insert_with(|| Collection::new(name)).clone()
    }

    /// Whether a collection with this name exists already.
    pub fn has_collection(&self, name: &str) -> bool {
        self.collections.read().contains_key(name)
    }

    /// Names of all collections, sorted.
    pub fn collection_names(&self) -> Vec<String> {
        self.collections.read().keys().cloned().collect()
    }

    /// The database's blob store.
    pub fn blobs(&self) -> &BlobStore {
        &self.blobs
    }

    /// Drops a collection, returning whether it existed.
    pub fn drop_collection(&self, name: &str) -> bool {
        self.collections.write().remove(name).is_some()
    }

    /// Persists the database to a directory (created if needed).
    ///
    /// Layout: `<dir>/<collection>.jsonl` + `<dir>/blobs/<hash>`.
    ///
    /// The save is crash-safe per file: each collection is written to a
    /// `.jsonl.tmp` sibling, synced, and atomically renamed over the
    /// final name, so an interruption at any point leaves every
    /// `.jsonl` either the previous snapshot or the new one — never a
    /// torn mix. Blobs are content-addressed and written the same way.
    /// Leftover `.tmp` files from an earlier interrupted save are
    /// removed first and are ignored by [`Database::load`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures as [`DbError::Io`].
    pub fn save(&self, dir: impl AsRef<Path>) -> Result<(), DbError> {
        let _timer = observe::timer("db.save_us");
        let _span = observe::span(|| "db.save".to_owned());
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        remove_stale_tmp_files(dir)?;
        for name in self.collection_names() {
            let collection = self.collection(&name);
            let tmp = dir.join(format!("{name}.jsonl.tmp"));
            {
                let mut file = fs::File::create(&tmp)?;
                for doc in collection.all() {
                    writeln!(file, "{}", json::to_json(&doc))?;
                }
                file.sync_all()?;
            }
            fs::rename(&tmp, dir.join(format!("{name}.jsonl")))?;
        }
        let blob_dir = dir.join("blobs");
        fs::create_dir_all(&blob_dir)?;
        remove_stale_tmp_files(&blob_dir)?;
        for key in self.blobs.keys() {
            let path = blob_dir.join(key.to_hex());
            if !path.exists() {
                // The store is append-only, but don't let a racing
                // mutation turn a missing key into a panic mid-save.
                let Some(content) = self.blobs.get(key) else { continue };
                let tmp = blob_dir.join(format!("{}.tmp", key.to_hex()));
                {
                    let mut file = fs::File::create(&tmp)?;
                    file.write_all(&content)?;
                    file.sync_all()?;
                }
                fs::rename(&tmp, &path)?;
            }
        }
        Ok(())
    }

    /// Loads a database previously written by [`Database::save`].
    ///
    /// Recovery from interrupted saves is automatic: `.tmp` files
    /// (torn partial writes) are ignored, and blob files whose content
    /// does not hash to their filename are discarded rather than
    /// loaded, so a crashed save can never corrupt the loaded state —
    /// the previous snapshot wins.
    ///
    /// # Errors
    ///
    /// * [`DbError::Io`] — directory unreadable.
    /// * [`DbError::Parse`] — corrupted document line.
    /// * [`DbError::DuplicateId`] / [`DbError::InvalidDocument`] —
    ///   inconsistent persisted data.
    pub fn load(dir: impl AsRef<Path>) -> Result<Database, DbError> {
        let _timer = observe::timer("db.load_us");
        let _span = observe::span(|| "db.load".to_owned());
        let dir = dir.as_ref();
        let db = Database::in_memory();
        let mut entries: Vec<PathBuf> =
            fs::read_dir(dir)?.filter_map(|e| e.ok()).map(|e| e.path()).collect();
        entries.sort();
        for path in entries {
            if path.extension().map(|e| e == "jsonl").unwrap_or(false) {
                let name = path
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .ok_or_else(|| DbError::InvalidDocument {
                        reason: format!("bad collection filename {path:?}"),
                    })?
                    .to_owned();
                let collection = db.collection(&name);
                for line in fs::read_to_string(&path)?.lines() {
                    if line.trim().is_empty() {
                        continue;
                    }
                    collection.insert(json::from_json(line)?)?;
                }
            }
        }
        let blob_dir = dir.join("blobs");
        if blob_dir.is_dir() {
            for entry in fs::read_dir(&blob_dir)? {
                let entry = entry?;
                // Only files named by a valid content hash are blobs;
                // anything else (.tmp leftovers, strays) is a torn or
                // foreign write and is skipped.
                let Some(key) = entry
                    .file_name()
                    .to_str()
                    .and_then(crate::blobstore::BlobKey::from_hex)
                else {
                    continue;
                };
                let data = fs::read(entry.path())?;
                if crate::blobstore::BlobKey::for_content(&data) != key {
                    continue;
                }
                db.blobs.put(data);
            }
        }
        Ok(db)
    }
}

/// Removes `*.tmp` leftovers of an interrupted save from `dir`.
fn remove_stale_tmp_files(dir: &Path) -> Result<(), DbError> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_file() && path.extension().map(|e| e == "tmp").unwrap_or(false) {
            fs::remove_file(&path)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Filter;
    use crate::value::Value;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("simart-db-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn collections_are_created_on_demand_and_shared() {
        let db = Database::in_memory();
        assert!(!db.has_collection("runs"));
        let c1 = db.collection("runs");
        let c2 = db.collection("runs");
        c1.insert(Value::map([("_id", Value::from("r1"))])).unwrap();
        assert_eq!(c2.len(), 1);
        assert_eq!(db.collection_names(), vec!["runs".to_owned()]);
        assert!(db.drop_collection("runs"));
        assert!(!db.drop_collection("runs"));
    }

    #[test]
    fn save_load_round_trip() {
        let dir = temp_dir("roundtrip");
        let db = Database::in_memory();
        let runs = db.collection("runs");
        for i in 0..5i64 {
            runs.insert(Value::map([
                ("_id", Value::from(format!("run-{i}"))),
                ("ticks", Value::from(i * 1000)),
                ("nested", Value::map([("ok", Value::from(i % 2 == 0))])),
            ]))
            .unwrap();
        }
        let key = db.blobs().put(b"result archive".to_vec());
        db.save(&dir).unwrap();

        let restored = Database::load(&dir).unwrap();
        assert_eq!(restored.collection("runs").len(), 5);
        assert_eq!(
            restored.collection("runs").count(&Filter::eq("nested.ok", true)),
            3
        );
        assert_eq!(restored.blobs().get(key).unwrap().as_ref(), b"result archive");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_rejects_corrupt_lines() {
        let dir = temp_dir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("runs.jsonl"), "{\"_id\":\"a\"}\nnot json\n").unwrap();
        assert!(matches!(Database::load(&dir), Err(DbError::Parse { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_save_leaves_previous_snapshot_loadable() {
        let dir = temp_dir("interrupted");
        let db = Database::in_memory();
        db.collection("runs").insert(Value::map([("_id", Value::from("r1"))])).unwrap();
        let key = db.blobs().put(b"good blob".to_vec());
        db.save(&dir).unwrap();

        // Simulate a save that died mid-write: a torn collection tmp
        // file and a torn blob tmp file are left behind, but the real
        // files were never replaced.
        fs::write(dir.join("runs.jsonl.tmp"), "{\"_id\":\"r2\",\"truncat").unwrap();
        fs::write(dir.join("blobs").join(format!("{}.tmp", key.to_hex())), b"gar").unwrap();

        let restored = Database::load(&dir).unwrap();
        assert_eq!(restored.collection("runs").len(), 1);
        assert!(restored.collection("runs").get("r1").is_some());
        assert_eq!(restored.blobs().get(key).unwrap().as_ref(), b"good blob");

        // The next save clears the torn leftovers.
        restored.save(&dir).unwrap();
        assert!(!dir.join("runs.jsonl.tmp").exists());
        assert!(!dir.join("blobs").join(format!("{}.tmp", key.to_hex())).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_blobs_are_discarded_on_load() {
        let dir = temp_dir("torn-blob");
        let db = Database::in_memory();
        let key = db.blobs().put(b"intact".to_vec());
        db.save(&dir).unwrap();

        // A blob whose content no longer matches its filename (torn or
        // tampered) must not be loaded under that key.
        let fake = crate::blobstore::BlobKey::for_content(b"never stored");
        fs::write(dir.join("blobs").join(fake.to_hex()), b"mismatched content").unwrap();

        let restored = Database::load(&dir).unwrap();
        assert_eq!(restored.blobs().get(key).unwrap().as_ref(), b"intact");
        assert!(restored.blobs().get(fake).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_is_atomic_per_collection_file() {
        let dir = temp_dir("atomic");
        let db = Database::in_memory();
        db.collection("runs").insert(Value::map([("_id", Value::from("r1"))])).unwrap();
        db.save(&dir).unwrap();
        // After a completed save no tmp files remain.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().map(|x| x == "tmp").unwrap_or(false))
            .collect();
        assert!(leftovers.is_empty());
        // Overwriting saves replace content wholesale.
        db.collection("runs").insert(Value::map([("_id", Value::from("r2"))])).unwrap();
        db.save(&dir).unwrap();
        assert_eq!(Database::load(&dir).unwrap().collection("runs").len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_database_round_trips() {
        let dir = temp_dir("empty");
        let db = Database::in_memory();
        db.save(&dir).unwrap();
        let restored = Database::load(&dir).unwrap();
        assert!(restored.collection_names().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
