//! The top-level database: named collections + blob store + persistence.

use crate::blobstore::{BlobKey, BlobStore};
use crate::collection::{Collection, IndexKind, IndexSpec};
use crate::error::DbError;
use crate::journal::{self, Journal, JournalCell, JournalCursor, JournalOp};
use crate::json;
use crate::value::Value;
use parking_lot::RwLock;
use simart_observe as observe;
use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// How [`Database::load_with`] treats corrupt persisted records.
#[derive(Debug, Clone, Default)]
pub struct LoadOptions {
    /// When `true`, the first corrupt document line or mismatched blob
    /// aborts the load with [`DbError::CorruptRecord`]. When `false`
    /// (the default), corrupt records are skipped, counted in the
    /// [`LoadReport`], surfaced on the `load.skipped_records` metric,
    /// and announced with one warning line on stderr.
    pub strict: bool,
}

impl LoadOptions {
    /// Options that reject the first corrupt record instead of
    /// skipping it.
    pub fn strict() -> LoadOptions {
        LoadOptions { strict: true }
    }
}

/// What [`Database::load_with`] observed while reading a directory.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadReport {
    /// Document lines that failed to parse or insert (lenient mode).
    pub skipped_documents: usize,
    /// Blob files whose content did not hash to their filename.
    pub skipped_blobs: usize,
    /// Journal records replayed on top of the checkpoint.
    pub journal_records: usize,
    /// Bytes of journal covered by intact records (the prefix a
    /// re-attach continues from).
    pub journal_valid_bytes: u64,
    /// Torn trailing journal bytes discarded by replay (non-zero after
    /// a crash mid-append).
    pub journal_torn_bytes: u64,
    /// `collection/_id` subjects where a journal insert collided with a
    /// checkpoint document of *different* content — evidence the
    /// checkpoint and journal disagree. The journal version wins.
    /// Index declarations that could not be rebuilt (a unique index the
    /// loaded documents no longer satisfy) appear as
    /// `collection/#index:path` entries.
    pub divergent: Vec<String>,
    /// Secondary indexes rebuilt from the documents during the load
    /// (from the `indexes.json` manifest and journal `idx` records;
    /// re-declarations of an already-rebuilt index are not counted).
    pub indexes_rebuilt: usize,
}

impl LoadReport {
    /// Total records dropped by a lenient load.
    pub fn skipped(&self) -> usize {
        self.skipped_documents + self.skipped_blobs
    }
}

/// An embedded document database.
///
/// Mirrors how the paper's framework uses MongoDB: a handful of named
/// collections (`artifacts`, `runs`, …) plus a file store. Handles are
/// cheap clones sharing storage.
///
/// Two persistence modes share one on-disk layout:
///
/// * **Snapshot** — [`Database::save`] writes one `.jsonl` file per
///   collection (one document per line) and a `blobs/` directory with
///   one file per content hash; [`Database::load`] reads the same
///   layout back. Cost is O(whole database) per call.
/// * **Journaled** — [`Database::open`] attaches the database to its
///   directory: every subsequent mutation appends one record to
///   `journal.log` *as it happens* (cost O(delta)), and
///   [`Database::checkpoint`] periodically folds the journal into the
///   snapshot files. Killing the process at any instant loses at most
///   the record being written; `load`/`open` replay checkpoint +
///   journal. (Appends are not individually fsynced, so against an OS
///   crash or power loss durability is to the last checkpoint or save
///   — see the [`journal`] module docs for the exact scope.)
#[derive(Debug, Clone)]
pub struct Database {
    collections: Arc<RwLock<BTreeMap<String, Collection>>>,
    blobs: BlobStore,
    journal: JournalCell,
}

impl Default for Database {
    fn default() -> Database {
        let journal = JournalCell::default();
        Database {
            collections: Arc::default(),
            blobs: BlobStore::with_journal(Arc::clone(&journal)),
            journal,
        }
    }
}

impl Database {
    /// Creates an empty in-memory database.
    pub fn in_memory() -> Database {
        Database::default()
    }

    /// Gets (creating on first use) the named collection.
    pub fn collection(&self, name: &str) -> Collection {
        let mut collections = self.collections.write();
        collections
            .entry(name.to_owned())
            .or_insert_with(|| Collection::with_journal(name, Arc::clone(&self.journal)))
            .clone()
    }

    /// Whether a collection with this name exists already.
    pub fn has_collection(&self, name: &str) -> bool {
        self.collections.read().contains_key(name)
    }

    /// Names of all collections, sorted.
    pub fn collection_names(&self) -> Vec<String> {
        self.collections.read().keys().cloned().collect()
    }

    /// The database's blob store.
    pub fn blobs(&self) -> &BlobStore {
        &self.blobs
    }

    /// Whether this handle is attached to a directory (opened with
    /// [`Database::open`]) and journaling its mutations.
    pub fn is_attached(&self) -> bool {
        self.journal.read().is_some()
    }

    /// The directory this handle is attached to, or `None` for an
    /// in-memory database.
    pub fn attached_dir(&self) -> Option<PathBuf> {
        self.journal.read().as_ref().map(|j| j.dir().to_owned())
    }

    /// The attached journal's current cursor: the byte offset where
    /// the next record will land, plus the CRC-32 of everything before
    /// it. `None` for an in-memory database.
    ///
    /// Incremental consumers (the analysis engine) persist this cursor
    /// alongside their derived state; as long as
    /// [`JournalCursor::is_valid`] holds they can resume with
    /// [`read_journal_from`](crate::journal::read_journal_from) instead
    /// of rescanning the database.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures reading the journal file.
    pub fn journal_cursor(&self) -> Result<Option<JournalCursor>, DbError> {
        let guard = self.journal.read();
        let Some(journal) = guard.as_ref() else {
            return Ok(None);
        };
        let offset = journal.len()?;
        // The prefix is stable under the read guard: concurrent appends
        // only extend the file past `offset`, and compaction
        // (checkpoint/save) takes its own turn with the cell.
        let cursor = JournalCursor::capture(journal.dir(), offset)?;
        Ok(cursor)
    }

    /// Drops a collection, returning whether it existed.
    pub fn drop_collection(&self, name: &str) -> bool {
        let mut collections = self.collections.write();
        if !collections.contains_key(name) {
            return false;
        }
        journal::append_best_effort(
            &self.journal,
            &JournalOp::DropCollection {
                collection: name.to_owned(),
            },
        );
        collections.remove(name).is_some()
    }

    /// Persists the database to a directory (created if needed).
    ///
    /// Layout: `<dir>/<collection>.jsonl` + `<dir>/blobs/<hash>`.
    ///
    /// The save is crash-safe per file: each collection is written to a
    /// `.jsonl.tmp` sibling, synced, and atomically renamed over the
    /// final name, so an interruption at any point leaves every
    /// `.jsonl` either the previous snapshot or the new one — never a
    /// torn mix. Blobs are content-addressed and written the same way.
    /// Leftover `.tmp` files from an earlier interrupted save are
    /// removed first and are ignored by [`Database::load`].
    ///
    /// Because a completed save captures the whole current state, any
    /// `journal.log` records it covers are superseded and compacted
    /// away afterwards. On an attached database this uses the same
    /// capture-length-then-splice protocol as [`Database::checkpoint`]:
    /// records appended concurrently with the snapshot (from other
    /// threads) survive the splice instead of being truncated unseen.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures as [`DbError::Io`].
    pub fn save(&self, dir: impl AsRef<Path>) -> Result<(), DbError> {
        let dir = dir.as_ref();
        // Capture the journal length BEFORE the snapshot: only records
        // the snapshot can have seen are folded. Appends racing with
        // the snapshot land past `folded` and survive the splice.
        let folded = {
            let guard = self.journal.read();
            match guard.as_ref() {
                Some(journal) if journal.dir() == dir => Some(journal.len()?),
                _ => None,
            }
        };
        self.write_snapshot(dir)?;
        match folded {
            Some(folded) => {
                let guard = self.journal.read();
                if let Some(journal) = guard.as_ref().filter(|j| j.dir() == dir) {
                    journal.compact_prefix(folded)?;
                }
            }
            // Saving over a foreign journaled directory: this handle is
            // not appending there, so the snapshot supersedes the whole
            // file.
            None => {
                let journal_path = dir.join(journal::JOURNAL_FILE);
                if journal_path.exists() {
                    fs::OpenOptions::new()
                        .write(true)
                        .open(&journal_path)?
                        .set_len(0)?;
                }
            }
        }
        Ok(())
    }

    /// The snapshot body shared by [`Database::save`] and
    /// [`Database::checkpoint`] — writes `.jsonl` + blob files without
    /// touching the journal.
    fn write_snapshot(&self, dir: &Path) -> Result<(), DbError> {
        let _timer = observe::timer("db.save_us");
        let _span = observe::span(|| "db.save".to_owned());
        fs::create_dir_all(dir)?;
        remove_stale_tmp_files(dir)?;
        let names = self.collection_names();
        for name in &names {
            let collection = self.collection(name);
            let tmp = dir.join(format!("{name}.jsonl.tmp"));
            {
                let mut file = fs::File::create(&tmp)?;
                for doc in collection.all() {
                    writeln!(file, "{}", json::to_json(&doc))?;
                }
                file.sync_all()?;
            }
            fs::rename(&tmp, dir.join(format!("{name}.jsonl")))?;
        }
        // Delete snapshot files of collections that no longer exist —
        // otherwise a dropped collection would be resurrected on reload
        // once checkpoint compaction splices away the DropCollection
        // journal record that encoded the deletion.
        for path in snapshot_files(dir, "jsonl")? {
            let stale = path
                .file_stem()
                .and_then(|s| s.to_str())
                .map(|stem| !names.iter().any(|n| n == stem))
                .unwrap_or(false);
            if stale {
                fs::remove_file(&path)?;
            }
        }
        // Persist index *definitions* (plus their current rendered
        // entries, for `simart check`'s divergence lint) in one
        // manifest. Index contents are never load-bearing — loading
        // rebuilds every index from the documents — but without the
        // manifest a `save`d (journal-truncating) directory would
        // forget which indexes were declared.
        let manifest: BTreeMap<String, Value> = names
            .iter()
            .map(|name| self.collection(name))
            .filter(|collection| !collection.index_specs().is_empty())
            .map(|collection| (collection.name().to_owned(), collection.index_state()))
            .collect();
        let manifest_path = dir.join(INDEX_MANIFEST_FILE);
        if manifest.is_empty() {
            if manifest_path.exists() {
                fs::remove_file(&manifest_path)?;
            }
        } else {
            let body = json::to_json(&Value::map([(
                "collections".to_owned(),
                Value::Map(manifest),
            )]));
            let tmp = dir.join(format!("{INDEX_MANIFEST_FILE}.tmp"));
            {
                let mut file = fs::File::create(&tmp)?;
                writeln!(file, "{body}")?;
                file.sync_all()?;
            }
            fs::rename(&tmp, &manifest_path)?;
        }
        let blob_dir = dir.join("blobs");
        fs::create_dir_all(&blob_dir)?;
        remove_stale_tmp_files(&blob_dir)?;
        let keys = self.blobs.keys();
        for &key in &keys {
            let path = blob_dir.join(key.to_hex());
            if !path.exists() {
                // The store is append-only, but don't let a racing
                // mutation turn a missing key into a panic mid-save.
                let Some(content) = self.blobs.get(key) else {
                    continue;
                };
                let tmp = blob_dir.join(format!("{}.tmp", key.to_hex()));
                {
                    let mut file = fs::File::create(&tmp)?;
                    file.write_all(&content)?;
                    file.sync_all()?;
                }
                fs::rename(&tmp, &path)?;
            }
        }
        // Same reasoning as stale .jsonl files: a blob file whose key
        // left the store must not outlive the BlobRemove record.
        for entry in fs::read_dir(&blob_dir)? {
            let entry = entry?;
            let Some(key) = entry.file_name().to_str().and_then(BlobKey::from_hex) else {
                continue;
            };
            if keys.binary_search(&key).is_err() {
                fs::remove_file(entry.path())?;
            }
        }
        Ok(())
    }

    /// Opens a directory-attached database: loads any existing
    /// checkpoint + journal (leniently) and attaches the journal so
    /// every subsequent mutation appends as it happens. The directory
    /// is created if needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures as [`DbError::Io`].
    pub fn open(dir: impl AsRef<Path>) -> Result<Database, DbError> {
        Database::open_with(dir, &LoadOptions::default()).map(|(db, _)| db)
    }

    /// Like [`Database::open`], with explicit [`LoadOptions`] and the
    /// [`LoadReport`] of the initial load.
    ///
    /// # Errors
    ///
    /// As [`Database::load_with`], plus filesystem failures attaching
    /// the journal.
    pub fn open_with(
        dir: impl AsRef<Path>,
        options: &LoadOptions,
    ) -> Result<(Database, LoadReport), DbError> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let (db, report) = Database::load_with(dir, options)?;
        // Continue appending after the last intact record; a torn tail
        // (already discarded by replay) is truncated away so the next
        // append starts on a valid frame boundary.
        let journal = Journal::attach(dir, report.journal_valid_bytes)?;
        *db.journal.write() = Some(journal);
        Ok((db, report))
    }

    /// Folds the journal into the snapshot files and compacts it.
    ///
    /// Protocol: record the journal length, write a full snapshot
    /// (atomic per file), then splice off exactly the folded prefix.
    /// Records appended concurrently with the snapshot survive the
    /// splice; replay is idempotent, so a crash between snapshot and
    /// splice merely replays already-folded records to the same state.
    ///
    /// # Errors
    ///
    /// * [`DbError::NotAttached`] — this handle was not opened with
    ///   [`Database::open`].
    /// * [`DbError::Io`] — filesystem failure.
    pub fn checkpoint(&self) -> Result<(), DbError> {
        let _timer = observe::timer("db.checkpoint_us");
        let _span = observe::span(|| "db.checkpoint".to_owned());
        let (dir, folded) = {
            let guard = self.journal.read();
            let journal = guard.as_ref().ok_or(DbError::NotAttached)?;
            (journal.dir().to_owned(), journal.len()?)
        };
        self.write_snapshot(&dir)?;
        let guard = self.journal.read();
        let journal = guard.as_ref().ok_or(DbError::NotAttached)?;
        journal.compact_prefix(folded)?;
        Ok(())
    }

    /// Loads a database previously written by [`Database::save`] or a
    /// journaled directory produced by [`Database::open`], skipping
    /// corrupt records (see [`LoadOptions`] for the strict variant).
    ///
    /// Recovery from interrupted writes is automatic: `.tmp` files
    /// (torn partial writes) are ignored, blob files whose content does
    /// not hash to their filename are discarded rather than loaded, and
    /// a torn journal tail is dropped at the last intact record — so a
    /// crashed save or append can never corrupt the loaded state.
    ///
    /// # Errors
    ///
    /// * [`DbError::Io`] — directory unreadable.
    pub fn load(dir: impl AsRef<Path>) -> Result<Database, DbError> {
        Database::load_with(dir, &LoadOptions::default()).map(|(db, _)| db)
    }

    /// Like [`Database::load`], with explicit [`LoadOptions`], also
    /// returning a [`LoadReport`] describing skipped records and
    /// journal replay.
    ///
    /// # Errors
    ///
    /// * [`DbError::Io`] — directory unreadable.
    /// * [`DbError::CorruptRecord`] — corrupt document line or
    ///   mismatched blob, in strict mode only.
    pub fn load_with(
        dir: impl AsRef<Path>,
        options: &LoadOptions,
    ) -> Result<(Database, LoadReport), DbError> {
        let _timer = observe::timer("db.load_us");
        let _span = observe::span(|| "db.load".to_owned());
        let dir = dir.as_ref();
        let db = Database::in_memory();
        let mut report = LoadReport::default();
        let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            if path.extension().map(|e| e == "jsonl").unwrap_or(false) {
                let name = path
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .ok_or_else(|| DbError::InvalidDocument {
                        reason: format!("bad collection filename {path:?}"),
                    })?
                    .to_owned();
                let collection = db.collection(&name);
                for (lineno, line) in fs::read_to_string(&path)?.lines().enumerate() {
                    if line.trim().is_empty() {
                        continue;
                    }
                    let outcome = json::from_json(line).and_then(|doc| collection.insert(doc));
                    if let Err(err) = outcome {
                        if options.strict {
                            return Err(DbError::CorruptRecord {
                                path: path.display().to_string(),
                                detail: format!("line {}: {err}", lineno + 1),
                            });
                        }
                        report.skipped_documents += 1;
                    }
                }
            }
        }
        let blob_dir = dir.join("blobs");
        if blob_dir.is_dir() {
            for entry in fs::read_dir(&blob_dir)? {
                let entry = entry?;
                // Only files named by a valid content hash are blobs;
                // anything else (.tmp leftovers, strays) is a torn or
                // foreign write and is skipped silently.
                let Some(key) = entry.file_name().to_str().and_then(BlobKey::from_hex) else {
                    continue;
                };
                let data = fs::read(entry.path())?;
                if BlobKey::for_content(&data) != key {
                    if options.strict {
                        return Err(DbError::CorruptRecord {
                            path: entry.path().display().to_string(),
                            detail: "blob content does not hash to its filename".into(),
                        });
                    }
                    report.skipped_blobs += 1;
                    continue;
                }
                db.blobs.put(data);
            }
        }
        // Rebuild declared indexes from the manifest *before* journal
        // replay, so replayed mutations maintain them write-through.
        // Only the specs are consumed here; the recorded entries exist
        // for divergence checking, the indexes themselves are always
        // rebuilt from the loaded documents.
        let manifest_path = dir.join(INDEX_MANIFEST_FILE);
        if manifest_path.is_file() {
            match json::from_json(fs::read_to_string(&manifest_path)?.trim()) {
                Ok(manifest) => {
                    let collections = manifest
                        .at("collections")
                        .and_then(Value::as_map)
                        .cloned()
                        .unwrap_or_default();
                    for (name, state) in collections {
                        for entry in state.as_array().unwrap_or(&[]) {
                            let Some(spec) = index_spec_from_state(entry) else {
                                if options.strict {
                                    return Err(DbError::CorruptRecord {
                                        path: manifest_path.display().to_string(),
                                        detail: format!("bad index entry for collection {name}"),
                                    });
                                }
                                report.skipped_documents += 1;
                                continue;
                            };
                            let path = spec.path.clone();
                            match db.collection(&name).ensure_index(spec) {
                                Ok(()) => report.indexes_rebuilt += 1,
                                Err(err) if options.strict => return Err(err),
                                Err(_) => report.divergent.push(format!("{name}/#index:{path}")),
                            }
                        }
                    }
                }
                Err(err) => {
                    if options.strict {
                        return Err(DbError::CorruptRecord {
                            path: manifest_path.display().to_string(),
                            detail: err.to_string(),
                        });
                    }
                    report.skipped_documents += 1;
                }
            }
        }
        // Replay the journal on top of the checkpoint. The database is
        // not yet attached, so replay never re-journals itself.
        let replay = journal::read_journal(dir)?;
        report.journal_records = replay.ops.len();
        report.journal_valid_bytes = replay.valid_bytes;
        report.journal_torn_bytes = replay.torn_bytes;
        observe::count("db.journal_replay_records", replay.ops.len() as u64);
        for op in replay.ops {
            db.apply_journal_op(op, options, &mut report)?;
        }
        if report.skipped() > 0 {
            observe::count("load.skipped_records", report.skipped() as u64);
            eprintln!(
                "warning: {}: skipped {} corrupt document line(s) and {} mismatched blob(s) during load",
                dir.display(),
                report.skipped_documents,
                report.skipped_blobs
            );
        }
        Ok((db, report))
    }

    /// Applies one replayed journal record. Replay is idempotent so a
    /// journal whose prefix was already folded into the checkpoint (a
    /// crash mid-checkpoint) converges to the same state.
    fn apply_journal_op(
        &self,
        op: JournalOp,
        options: &LoadOptions,
        report: &mut LoadReport,
    ) -> Result<(), DbError> {
        match op {
            JournalOp::Insert { collection, doc } => {
                let target = self.collection(&collection);
                let id = doc
                    .at("_id")
                    .and_then(crate::value::Value::as_str)
                    .map(str::to_owned)
                    .unwrap_or_default();
                match target.get(&id) {
                    // Fresh insert: the common case.
                    None => {
                        if let Err(err) = target.insert(doc) {
                            if options.strict {
                                return Err(err);
                            }
                            report.skipped_documents += 1;
                        }
                    }
                    // Already folded into the checkpoint with identical
                    // content: a replayed suffix, nothing to do.
                    Some(existing) if json::to_json(&existing) == json::to_json(&doc) => {}
                    // Same id, different content: checkpoint and journal
                    // disagree. The journal (the write-ahead record of
                    // what actually happened) wins, but the divergence
                    // is reported for `simart check` to flag.
                    Some(_) => {
                        report.divergent.push(format!("{collection}/{id}"));
                        let _ = target.upsert(doc);
                    }
                }
            }
            JournalOp::Upsert { collection, doc } => {
                if let Err(err) = self.collection(&collection).upsert(doc) {
                    if options.strict {
                        return Err(err);
                    }
                    report.skipped_documents += 1;
                }
            }
            JournalOp::Delete { collection, id } => {
                if self.has_collection(&collection) {
                    self.collection(&collection).delete(&id);
                }
            }
            JournalOp::DropCollection { collection } => {
                self.drop_collection(&collection);
            }
            JournalOp::BlobPut { data } => {
                self.blobs.put(data);
            }
            JournalOp::BlobRemove { key } => {
                if let Some(key) = BlobKey::from_hex(&key) {
                    self.blobs.remove(key);
                }
            }
            JournalOp::EnsureIndex { collection, spec } => {
                let target = self.collection(&collection);
                // Replays over a manifest-rebuilt index are expected;
                // only genuinely new declarations count as rebuilds.
                if target.index_specs().contains(&spec) {
                    return Ok(());
                }
                let path = spec.path.clone();
                match target.ensure_index(spec) {
                    Ok(()) => report.indexes_rebuilt += 1,
                    Err(err) if options.strict => return Err(err),
                    Err(_) => report.divergent.push(format!("{collection}/#index:{path}")),
                }
            }
        }
        Ok(())
    }
}

/// File name of the secondary-index manifest inside a database
/// directory (index specs + their rendered entries at save time).
pub const INDEX_MANIFEST_FILE: &str = "indexes.json";

/// Decodes one manifest / [`Collection::index_state`] entry back into
/// its [`IndexSpec`]; `None` when fields are missing or malformed.
fn index_spec_from_state(entry: &Value) -> Option<IndexSpec> {
    Some(IndexSpec {
        path: entry.at("path")?.as_str()?.to_owned(),
        kind: IndexKind::parse(entry.at("kind")?.as_str()?)?,
        unique: entry.at("unique")?.as_bool()?,
    })
}

/// Files in `dir` (non-recursive) with the given extension.
fn snapshot_files(dir: &Path, ext: &str) -> Result<Vec<PathBuf>, DbError> {
    let mut files = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_file() && path.extension().map(|e| e == ext).unwrap_or(false) {
            files.push(path);
        }
    }
    Ok(files)
}

/// Removes `*.tmp` leftovers of an interrupted save from `dir`.
fn remove_stale_tmp_files(dir: &Path) -> Result<(), DbError> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_file() && path.extension().map(|e| e == "tmp").unwrap_or(false) {
            fs::remove_file(&path)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Filter;
    use crate::value::Value;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("simart-db-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn collections_are_created_on_demand_and_shared() {
        let db = Database::in_memory();
        assert!(!db.has_collection("runs"));
        let c1 = db.collection("runs");
        let c2 = db.collection("runs");
        c1.insert(Value::map([("_id", Value::from("r1"))])).unwrap();
        assert_eq!(c2.len(), 1);
        assert_eq!(db.collection_names(), vec!["runs".to_owned()]);
        assert!(db.drop_collection("runs"));
        assert!(!db.drop_collection("runs"));
    }

    #[test]
    fn save_load_round_trip() {
        let dir = temp_dir("roundtrip");
        let db = Database::in_memory();
        let runs = db.collection("runs");
        for i in 0..5i64 {
            runs.insert(Value::map([
                ("_id", Value::from(format!("run-{i}"))),
                ("ticks", Value::from(i * 1000)),
                ("nested", Value::map([("ok", Value::from(i % 2 == 0))])),
            ]))
            .unwrap();
        }
        let key = db.blobs().put(b"result archive".to_vec());
        db.save(&dir).unwrap();

        let restored = Database::load(&dir).unwrap();
        assert_eq!(restored.collection("runs").len(), 5);
        assert_eq!(
            restored
                .collection("runs")
                .count(&Filter::eq("nested.ok", true)),
            3
        );
        assert_eq!(
            restored.blobs().get(key).unwrap().as_ref(),
            b"result archive"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn strict_load_rejects_corrupt_lines_lenient_load_counts_them() {
        let dir = temp_dir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("runs.jsonl"), "{\"_id\":\"a\"}\nnot json\n").unwrap();
        assert!(matches!(
            Database::load_with(&dir, &LoadOptions::strict()),
            Err(DbError::CorruptRecord { .. })
        ));
        // The default load keeps the good line and counts the bad one.
        let (db, report) = Database::load_with(&dir, &LoadOptions::default()).unwrap();
        assert_eq!(db.collection("runs").len(), 1);
        assert!(db.collection("runs").get("a").is_some());
        assert_eq!(report.skipped_documents, 1);
        assert_eq!(report.skipped(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_journals_and_reload_replays() {
        let dir = temp_dir("open-journal");
        let key;
        {
            let db = Database::open(&dir).unwrap();
            assert!(db.is_attached());
            db.collection("runs")
                .insert(Value::map([
                    ("_id", Value::from("r1")),
                    ("n", Value::from(1i64)),
                ]))
                .unwrap();
            db.collection("runs")
                .insert(Value::map([
                    ("_id", Value::from("r2")),
                    ("n", Value::from(2i64)),
                ]))
                .unwrap();
            key = db.blobs().put(b"journaled blob".to_vec());
            db.collection("runs").delete("r2");
            // Dropped without save or checkpoint: the journal alone
            // carries the state.
        }
        assert!(dir.join(journal::JOURNAL_FILE).exists());
        assert!(!dir.join("runs.jsonl").exists());

        let (restored, report) = Database::load_with(&dir, &LoadOptions::default()).unwrap();
        assert_eq!(report.journal_records, 4);
        assert_eq!(restored.collection("runs").len(), 1);
        assert!(restored.collection("runs").get("r1").is_some());
        assert_eq!(
            restored.blobs().get(key).unwrap().as_ref(),
            b"journaled blob"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_folds_journal_and_keeps_state() {
        let dir = temp_dir("checkpoint");
        let db = Database::open(&dir).unwrap();
        for i in 0..3i64 {
            db.collection("runs")
                .insert(Value::map([("_id", Value::from(format!("r{i}")))]))
                .unwrap();
        }
        db.checkpoint().unwrap();
        assert!(dir.join("runs.jsonl").exists());
        assert_eq!(
            fs::metadata(dir.join(journal::JOURNAL_FILE)).unwrap().len(),
            0
        );
        // Post-checkpoint writes land in the journal again.
        db.collection("runs")
            .insert(Value::map([("_id", Value::from("r3"))]))
            .unwrap();
        assert!(fs::metadata(dir.join(journal::JOURNAL_FILE)).unwrap().len() > 0);

        let restored = Database::load(&dir).unwrap();
        assert_eq!(restored.collection("runs").len(), 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_does_not_resurrect_dropped_collections() {
        let dir = temp_dir("drop-checkpoint");
        let db = Database::open(&dir).unwrap();
        db.collection("runs")
            .insert(Value::map([("_id", Value::from("r1"))]))
            .unwrap();
        db.collection("keep")
            .insert(Value::map([("_id", Value::from("k1"))]))
            .unwrap();
        db.checkpoint().unwrap();
        assert!(dir.join("runs.jsonl").exists());
        // Drop after the checkpoint wrote runs.jsonl, then checkpoint
        // again: the snapshot must delete the stale file, because the
        // splice removes the DropCollection record that encoded the
        // deletion.
        assert!(db.drop_collection("runs"));
        db.checkpoint().unwrap();
        assert!(!dir.join("runs.jsonl").exists());
        let restored = Database::load(&dir).unwrap();
        assert!(!restored.has_collection("runs"));
        assert_eq!(restored.collection("keep").len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_does_not_resurrect_removed_blobs() {
        let dir = temp_dir("blobrm-checkpoint");
        let db = Database::open(&dir).unwrap();
        let doomed = db.blobs().put(b"doomed".to_vec());
        let kept = db.blobs().put(b"kept".to_vec());
        db.checkpoint().unwrap();
        assert!(dir.join("blobs").join(doomed.to_hex()).exists());
        assert!(db.blobs().remove(doomed).is_some());
        db.checkpoint().unwrap();
        assert!(!dir.join("blobs").join(doomed.to_hex()).exists());
        let restored = Database::load(&dir).unwrap();
        assert!(restored.blobs().get(doomed).is_none());
        assert_eq!(restored.blobs().get(kept).unwrap().as_ref(), b"kept");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_does_not_resurrect_dropped_state_either() {
        let dir = temp_dir("drop-save");
        let db = Database::in_memory();
        db.collection("runs")
            .insert(Value::map([("_id", Value::from("r1"))]))
            .unwrap();
        let key = db.blobs().put(b"bytes".to_vec());
        db.save(&dir).unwrap();
        db.drop_collection("runs");
        db.blobs().remove(key);
        db.save(&dir).unwrap();
        assert!(!dir.join("runs.jsonl").exists());
        assert!(!dir.join("blobs").join(key.to_hex()).exists());
        let restored = Database::load(&dir).unwrap();
        assert!(!restored.has_collection("runs"));
        assert!(restored.blobs().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_on_attached_database_keeps_concurrent_appends() {
        // save() must use the capture-length-then-splice protocol:
        // records appended by other threads while the snapshot is being
        // written land past the captured fold point and survive the
        // splice. The old truncate-everything behavior lost them, so a
        // reload here would come up short.
        let dir = temp_dir("save-concurrent");
        let db = Database::open(&dir).unwrap();
        let writer = db.clone();
        let inserts = std::thread::spawn(move || {
            for i in 0..200i64 {
                writer
                    .collection("runs")
                    .insert(Value::map([("_id", Value::from(format!("r{i}")))]))
                    .unwrap();
            }
        });
        for _ in 0..20 {
            db.save(&dir).unwrap();
        }
        inserts.join().unwrap();
        let restored = Database::load(&dir).unwrap();
        assert_eq!(restored.collection("runs").len(), 200);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_cursor_tracks_appends_and_survives_reload() {
        let dir = temp_dir("cursor");
        let db = Database::open(&dir).unwrap();
        assert_eq!(db.attached_dir(), Some(dir.clone()));
        let start = db.journal_cursor().unwrap().unwrap();
        assert_eq!(start.offset, 0);
        db.collection("runs")
            .insert(Value::map([("_id", Value::from("r1"))]))
            .unwrap();
        let after = db.journal_cursor().unwrap().unwrap();
        assert!(after.offset > start.offset);
        assert!(after.is_valid(&dir).unwrap());
        // Replay from the first cursor sees exactly the new record.
        let replay = crate::journal::read_journal_from(&dir, start.offset).unwrap();
        assert_eq!(replay.ops.len(), 1);
        assert_eq!(replay.valid_bytes, after.offset);
        // Checkpoint compacts: the old cursors no longer validate.
        db.checkpoint().unwrap();
        assert!(!after.is_valid(&dir).unwrap());
        // In-memory databases have no cursor.
        assert!(Database::in_memory().journal_cursor().unwrap().is_none());
        assert!(Database::in_memory().attached_dir().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_requires_attachment() {
        let db = Database::in_memory();
        assert!(matches!(db.checkpoint(), Err(DbError::NotAttached)));
    }

    #[test]
    fn reopen_continues_journaling_after_crashless_exit() {
        let dir = temp_dir("reopen");
        {
            let db = Database::open(&dir).unwrap();
            db.collection("runs")
                .insert(Value::map([("_id", Value::from("r1"))]))
                .unwrap();
        }
        {
            let (db, report) = Database::open_with(&dir, &LoadOptions::default()).unwrap();
            assert_eq!(report.journal_records, 1);
            db.collection("runs")
                .insert(Value::map([("_id", Value::from("r2"))]))
                .unwrap();
        }
        let restored = Database::load(&dir).unwrap();
        assert_eq!(restored.collection("runs").len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_journal_tail_is_discarded_and_truncated_on_open() {
        let dir = temp_dir("torn-journal");
        {
            let db = Database::open(&dir).unwrap();
            db.collection("runs")
                .insert(Value::map([("_id", Value::from("r1"))]))
                .unwrap();
        }
        // Simulate a crash mid-append: garbage trailing bytes.
        let journal_path = dir.join(journal::JOURNAL_FILE);
        let mut bytes = fs::read(&journal_path).unwrap();
        let intact = bytes.len() as u64;
        bytes.extend_from_slice(&[0x17, 0x99, 0x02]);
        fs::write(&journal_path, &bytes).unwrap();

        let (db, report) = Database::open_with(&dir, &LoadOptions::default()).unwrap();
        assert_eq!(report.journal_records, 1);
        assert_eq!(report.journal_torn_bytes, 3);
        assert_eq!(report.journal_valid_bytes, intact);
        // The torn tail was truncated, so new appends stay readable.
        db.collection("runs")
            .insert(Value::map([("_id", Value::from("r2"))]))
            .unwrap();
        drop(db);
        let restored = Database::load(&dir).unwrap();
        assert_eq!(restored.collection("runs").len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_divergence_is_reported_and_journal_wins() {
        let dir = temp_dir("divergence");
        {
            let db = Database::open(&dir).unwrap();
            db.collection("runs")
                .insert(Value::map([
                    ("_id", Value::from("r1")),
                    ("n", Value::from(1i64)),
                ]))
                .unwrap();
        }
        // Hand-write a checkpoint that disagrees with the journal.
        fs::write(dir.join("runs.jsonl"), "{\"_id\":\"r1\",\"n\":99}\n").unwrap();
        let (db, report) = Database::load_with(&dir, &LoadOptions::default()).unwrap();
        assert_eq!(report.divergent, vec!["runs/r1".to_owned()]);
        assert_eq!(
            db.collection("runs")
                .get("r1")
                .unwrap()
                .at("n")
                .and_then(Value::as_int),
            Some(1),
            "the journal record wins"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_empties_the_journal_it_supersedes() {
        let dir = temp_dir("save-supersedes");
        let db = Database::open(&dir).unwrap();
        db.collection("runs")
            .insert(Value::map([("_id", Value::from("r1"))]))
            .unwrap();
        assert!(fs::metadata(dir.join(journal::JOURNAL_FILE)).unwrap().len() > 0);
        db.save(&dir).unwrap();
        assert_eq!(
            fs::metadata(dir.join(journal::JOURNAL_FILE)).unwrap().len(),
            0
        );
        let restored = Database::load(&dir).unwrap();
        assert_eq!(restored.collection("runs").len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_save_leaves_previous_snapshot_loadable() {
        let dir = temp_dir("interrupted");
        let db = Database::in_memory();
        db.collection("runs")
            .insert(Value::map([("_id", Value::from("r1"))]))
            .unwrap();
        let key = db.blobs().put(b"good blob".to_vec());
        db.save(&dir).unwrap();

        // Simulate a save that died mid-write: a torn collection tmp
        // file and a torn blob tmp file are left behind, but the real
        // files were never replaced.
        fs::write(dir.join("runs.jsonl.tmp"), "{\"_id\":\"r2\",\"truncat").unwrap();
        fs::write(
            dir.join("blobs").join(format!("{}.tmp", key.to_hex())),
            b"gar",
        )
        .unwrap();

        let restored = Database::load(&dir).unwrap();
        assert_eq!(restored.collection("runs").len(), 1);
        assert!(restored.collection("runs").get("r1").is_some());
        assert_eq!(restored.blobs().get(key).unwrap().as_ref(), b"good blob");

        // The next save clears the torn leftovers.
        restored.save(&dir).unwrap();
        assert!(!dir.join("runs.jsonl.tmp").exists());
        assert!(!dir
            .join("blobs")
            .join(format!("{}.tmp", key.to_hex()))
            .exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_blobs_are_discarded_on_load() {
        let dir = temp_dir("torn-blob");
        let db = Database::in_memory();
        let key = db.blobs().put(b"intact".to_vec());
        db.save(&dir).unwrap();

        // A blob whose content no longer matches its filename (torn or
        // tampered) must not be loaded under that key.
        let fake = BlobKey::for_content(b"never stored");
        fs::write(dir.join("blobs").join(fake.to_hex()), b"mismatched content").unwrap();

        let (restored, report) = Database::load_with(&dir, &LoadOptions::default()).unwrap();
        assert_eq!(restored.blobs().get(key).unwrap().as_ref(), b"intact");
        assert!(restored.blobs().get(fake).is_none());
        assert_eq!(report.skipped_blobs, 1);
        // Strict mode refuses the mismatched blob outright.
        assert!(matches!(
            Database::load_with(&dir, &LoadOptions::strict()),
            Err(DbError::CorruptRecord { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_is_atomic_per_collection_file() {
        let dir = temp_dir("atomic");
        let db = Database::in_memory();
        db.collection("runs")
            .insert(Value::map([("_id", Value::from("r1"))]))
            .unwrap();
        db.save(&dir).unwrap();
        // After a completed save no tmp files remain.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().map(|x| x == "tmp").unwrap_or(false))
            .collect();
        assert!(leftovers.is_empty());
        // Overwriting saves replace content wholesale.
        db.collection("runs")
            .insert(Value::map([("_id", Value::from("r2"))]))
            .unwrap();
        db.save(&dir).unwrap();
        assert_eq!(Database::load(&dir).unwrap().collection("runs").len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_database_round_trips() {
        let dir = temp_dir("empty");
        let db = Database::in_memory();
        db.save(&dir).unwrap();
        let restored = Database::load(&dir).unwrap();
        assert!(restored.collection_names().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn indexes_survive_save_and_load_via_manifest() {
        let dir = temp_dir("index-manifest");
        let db = Database::in_memory();
        let runs = db.collection("runs");
        runs.ensure_index(IndexSpec::hash("status")).unwrap();
        runs.ensure_index(IndexSpec::ordered("ticks")).unwrap();
        for i in 0..6i64 {
            runs.insert(Value::map([
                ("_id", Value::from(format!("r{i}"))),
                (
                    "status",
                    Value::from(if i % 2 == 0 { "done" } else { "new" }),
                ),
                ("ticks", Value::from(i * 10)),
            ]))
            .unwrap();
        }
        db.save(&dir).unwrap();
        assert!(dir.join(INDEX_MANIFEST_FILE).is_file());

        let (restored, report) = Database::load_with(&dir, &LoadOptions::default()).unwrap();
        assert_eq!(report.indexes_rebuilt, 2);
        let rruns = restored.collection("runs");
        assert_eq!(rruns.index_specs().len(), 2);
        assert_eq!(rruns.index_state(), runs.index_state());
        assert!(rruns.verify_indexes().is_empty());
        // Dropping every index removes the manifest again.
        fs::remove_dir_all(&dir).unwrap();
        Database::in_memory().save(&dir).unwrap();
        assert!(!dir.join(INDEX_MANIFEST_FILE).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_replays_index_declarations_without_a_manifest() {
        let dir = temp_dir("index-journal");
        {
            let db = Database::open(&dir).unwrap();
            let runs = db.collection("runs");
            runs.insert(Value::map([
                ("_id", Value::from("r1")),
                ("status", Value::from("done")),
            ]))
            .unwrap();
            runs.ensure_index(IndexSpec::hash("status")).unwrap();
            runs.insert(Value::map([
                ("_id", Value::from("r2")),
                ("status", Value::from("new")),
            ]))
            .unwrap();
            // No save: only the journal carries the declaration.
        }
        assert!(!dir.join(INDEX_MANIFEST_FILE).exists());
        let (restored, report) = Database::load_with(&dir, &LoadOptions::default()).unwrap();
        assert_eq!(report.indexes_rebuilt, 1);
        let runs = restored.collection("runs");
        assert_eq!(runs.index_specs(), vec![IndexSpec::hash("status")]);
        assert!(runs.verify_indexes().is_empty());
        assert_eq!(runs.count(&Filter::eq("status", "new")), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_folds_index_declarations_into_the_manifest() {
        let dir = temp_dir("index-checkpoint");
        let db = Database::open(&dir).unwrap();
        let runs = db.collection("runs");
        runs.ensure_unique("hash").unwrap();
        runs.insert(Value::map([
            ("_id", Value::from("r1")),
            ("hash", Value::from("h1")),
        ]))
        .unwrap();
        db.checkpoint().unwrap();
        assert!(dir.join(INDEX_MANIFEST_FILE).is_file());
        drop(db);

        let (restored, report) = Database::load_with(&dir, &LoadOptions::default()).unwrap();
        // The manifest installs it once; the (already folded) journal
        // adds nothing on top.
        assert_eq!(report.indexes_rebuilt, 1);
        let runs = restored.collection("runs");
        assert_eq!(runs.index_specs(), vec![IndexSpec::hash("hash").unique()]);
        assert!(matches!(
            runs.insert(Value::map([
                ("_id", Value::from("r2")),
                ("hash", Value::from("h1")),
            ])),
            Err(DbError::UniqueViolation { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }
}
