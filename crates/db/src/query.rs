//! The query engine: composable document filters.

use crate::value::Value;

/// Sort direction for query results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SortOrder {
    /// Smallest value first.
    #[default]
    Ascending,
    /// Largest value first.
    Descending,
}

/// A composable predicate over documents.
///
/// Paths are dotted field paths evaluated with [`Value::at`]. A missing
/// path behaves like `Value::Null` for equality and fails ordered
/// comparisons, matching typical document-store semantics.
///
/// ```
/// use simart_db::{Filter, Value};
///
/// let doc = Value::map([
///     ("status", Value::from("success")),
///     ("ticks", Value::from(500i64)),
/// ]);
/// let filter = Filter::eq("status", "success").and(Filter::gt("ticks", 100i64));
/// assert!(filter.matches(&doc));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// Matches every document.
    All,
    /// Field equals value (missing field equals `Null`).
    Eq(String, Value),
    /// Field differs from value.
    Ne(String, Value),
    /// Field is strictly greater than value (field must exist).
    Gt(String, Value),
    /// Field is greater than or equal to value (field must exist).
    Gte(String, Value),
    /// Field is strictly less than value (field must exist).
    Lt(String, Value),
    /// Field is less than or equal to value (field must exist).
    Lte(String, Value),
    /// String field contains the given substring.
    Contains(String, String),
    /// Field exists (is present, even if `Null`).
    Exists(String),
    /// Array field contains an element equal to the value.
    ElemMatch(String, Value),
    /// Field value is one of the listed values.
    In(String, Vec<Value>),
    /// Both sub-filters match.
    And(Box<Filter>, Box<Filter>),
    /// Either sub-filter matches.
    Or(Box<Filter>, Box<Filter>),
    /// Sub-filter does not match.
    Not(Box<Filter>),
}

impl Filter {
    /// Equality filter.
    pub fn eq(path: impl Into<String>, value: impl Into<Value>) -> Filter {
        Filter::Eq(path.into(), value.into())
    }

    /// Inequality filter.
    pub fn ne(path: impl Into<String>, value: impl Into<Value>) -> Filter {
        Filter::Ne(path.into(), value.into())
    }

    /// Greater-than filter.
    pub fn gt(path: impl Into<String>, value: impl Into<Value>) -> Filter {
        Filter::Gt(path.into(), value.into())
    }

    /// Greater-or-equal filter.
    pub fn gte(path: impl Into<String>, value: impl Into<Value>) -> Filter {
        Filter::Gte(path.into(), value.into())
    }

    /// Less-than filter.
    pub fn lt(path: impl Into<String>, value: impl Into<Value>) -> Filter {
        Filter::Lt(path.into(), value.into())
    }

    /// Less-or-equal filter.
    pub fn lte(path: impl Into<String>, value: impl Into<Value>) -> Filter {
        Filter::Lte(path.into(), value.into())
    }

    /// Substring filter over string fields.
    pub fn contains(path: impl Into<String>, needle: impl Into<String>) -> Filter {
        Filter::Contains(path.into(), needle.into())
    }

    /// Presence filter.
    pub fn exists(path: impl Into<String>) -> Filter {
        Filter::Exists(path.into())
    }

    /// Array-membership filter.
    pub fn elem_match(path: impl Into<String>, value: impl Into<Value>) -> Filter {
        Filter::ElemMatch(path.into(), value.into())
    }

    /// Set-membership filter.
    pub fn any_of(
        path: impl Into<String>,
        values: impl IntoIterator<Item = impl Into<Value>>,
    ) -> Filter {
        Filter::In(path.into(), values.into_iter().map(Into::into).collect())
    }

    /// Conjunction with another filter.
    pub fn and(self, other: Filter) -> Filter {
        Filter::And(Box::new(self), Box::new(other))
    }

    /// Disjunction with another filter.
    pub fn or(self, other: Filter) -> Filter {
        Filter::Or(Box::new(self), Box::new(other))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Filter {
        Filter::Not(Box::new(self))
    }

    /// The query planner: decomposes this filter into index-answerable
    /// probes, best-first (`_id` lookups, then equality, membership,
    /// and finally ranges). The caller executes the first probe an
    /// index can serve and re-applies the *full* filter to the
    /// candidates, so probes only ever need to over-approximate —
    /// `Or`/`Not` subtrees and residual conjuncts simply contribute no
    /// probes. Range conjuncts on one path are merged to their tightest
    /// bounds. Probes against `Null` are never emitted (a missing field
    /// equals `Null`, and indexes are sparse).
    pub(crate) fn probes(&self) -> Vec<Probe<'_>> {
        let mut out = Vec::new();
        self.collect_probes(&mut out);
        // Merge every range conjunct on the same path into one probe.
        let mut merged: Vec<Probe<'_>> = Vec::new();
        for probe in out {
            if let Probe::Range { path, lower, upper } = &probe {
                if let Some(Probe::Range {
                    lower: mlower,
                    upper: mupper,
                    ..
                }) = merged
                    .iter_mut()
                    .find(|p| matches!(p, Probe::Range { path: mpath, .. } if mpath == path))
                {
                    *mlower = tighter_bound(*mlower, *lower, true);
                    *mupper = tighter_bound(*mupper, *upper, false);
                    continue;
                }
            }
            merged.push(probe);
        }
        merged.sort_by_key(Probe::priority);
        merged
    }

    fn collect_probes<'a>(&'a self, out: &mut Vec<Probe<'a>>) {
        match self {
            Filter::Eq(path, value) if path == "_id" => {
                // A string matches exactly that id; any other value can
                // never equal a (string) `_id`, so the candidate set is
                // exactly empty — which is still a valid probe.
                out.push(Probe::Ids(match value {
                    Value::Str(id) => vec![id.as_str()],
                    _ => Vec::new(),
                }));
            }
            Filter::Eq(path, value) if !value.is_null() => out.push(Probe::Eq { path, value }),
            Filter::ElemMatch(path, value) if !value.is_null() => {
                out.push(Probe::Elem { path, value });
            }
            Filter::In(path, values) if path == "_id" => {
                // Non-string members can never match an `_id`.
                out.push(Probe::Ids(
                    values.iter().filter_map(Value::as_str).collect(),
                ));
            }
            Filter::In(path, values) if !values.iter().any(Value::is_null) => {
                out.push(Probe::In { path, values });
            }
            Filter::Gt(path, value) => out.push(Probe::Range {
                path,
                lower: Some((value, false)),
                upper: None,
            }),
            Filter::Gte(path, value) => out.push(Probe::Range {
                path,
                lower: Some((value, true)),
                upper: None,
            }),
            Filter::Lt(path, value) => out.push(Probe::Range {
                path,
                lower: None,
                upper: Some((value, false)),
            }),
            Filter::Lte(path, value) => out.push(Probe::Range {
                path,
                lower: None,
                upper: Some((value, true)),
            }),
            Filter::And(a, b) => {
                a.collect_probes(out);
                b.collect_probes(out);
            }
            _ => {}
        }
    }

    /// Evaluates the filter against a document.
    pub fn matches(&self, doc: &Value) -> bool {
        use std::cmp::Ordering;
        let field = |path: &str| doc.at(path);
        let cmp = |path: &str, value: &Value| field(path).map(|f| f.compare(value));
        match self {
            Filter::All => true,
            Filter::Eq(path, value) => field(path).unwrap_or(&Value::Null) == value,
            Filter::Ne(path, value) => field(path).unwrap_or(&Value::Null) != value,
            Filter::Gt(path, value) => cmp(path, value) == Some(Ordering::Greater),
            Filter::Gte(path, value) => {
                matches!(cmp(path, value), Some(Ordering::Greater | Ordering::Equal))
            }
            Filter::Lt(path, value) => cmp(path, value) == Some(Ordering::Less),
            Filter::Lte(path, value) => {
                matches!(cmp(path, value), Some(Ordering::Less | Ordering::Equal))
            }
            Filter::Contains(path, needle) => field(path)
                .and_then(Value::as_str)
                .map(|s| s.contains(needle.as_str()))
                .unwrap_or(false),
            Filter::Exists(path) => field(path).is_some(),
            Filter::ElemMatch(path, value) => field(path)
                .and_then(Value::as_array)
                .map(|items| items.contains(value))
                .unwrap_or(false),
            Filter::In(path, values) => {
                let actual = field(path).unwrap_or(&Value::Null);
                values.contains(actual)
            }
            Filter::And(a, b) => a.matches(doc) && b.matches(doc),
            Filter::Or(a, b) => a.matches(doc) || b.matches(doc),
            Filter::Not(inner) => !inner.matches(doc),
        }
    }
}

/// One index-answerable constraint extracted by [`Filter::probes`].
/// Borrowed from the filter; bounds are `(value, inclusive)`.
#[derive(Debug)]
pub(crate) enum Probe<'a> {
    /// Direct primary-key candidates (needs no declared index).
    Ids(Vec<&'a str>),
    /// Equality on a non-null value.
    Eq {
        /// Constrained field path.
        path: &'a str,
        /// The value the field must equal.
        value: &'a Value,
    },
    /// Array membership of a non-null element.
    Elem {
        /// Constrained field path.
        path: &'a str,
        /// The element the array must contain.
        value: &'a Value,
    },
    /// Membership in a null-free value list.
    In {
        /// Constrained field path.
        path: &'a str,
        /// The allowed values.
        values: &'a [Value],
    },
    /// An ordered range with optional bounds.
    Range {
        /// Constrained field path.
        path: &'a str,
        /// Lower bound, if any.
        lower: Option<(&'a Value, bool)>,
        /// Upper bound, if any.
        upper: Option<(&'a Value, bool)>,
    },
}

impl Probe<'_> {
    /// Selectivity rank; the planner tries lower ranks first.
    fn priority(&self) -> u8 {
        match self {
            Probe::Ids(_) => 0,
            Probe::Eq { .. } => 1,
            Probe::Elem { .. } => 2,
            Probe::In { .. } => 3,
            Probe::Range { .. } => 4,
        }
    }
}

/// Keeps the tighter of two optional range bounds. For a lower bound
/// the larger value is tighter; for an upper bound the smaller. On
/// compare-equal values the exclusive bound wins (the conjunction of
/// both constraints is the exclusive one).
fn tighter_bound<'a>(
    a: Option<(&'a Value, bool)>,
    b: Option<(&'a Value, bool)>,
    lower: bool,
) -> Option<(&'a Value, bool)> {
    use std::cmp::Ordering;
    match (a, b) {
        (None, other) | (other, None) => other,
        (Some((va, ia)), Some((vb, ib))) => {
            let keep_a = match va.compare(vb) {
                Ordering::Equal => return Some((va, ia && ib)),
                Ordering::Greater => lower,
                Ordering::Less => !lower,
            };
            Some(if keep_a { (va, ia) } else { (vb, ib) })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Value {
        Value::map([
            ("name", Value::from("blackscholes")),
            ("cores", Value::from(8i64)),
            ("time", Value::from(1.25)),
            (
                "tags",
                Value::array([Value::from("parsec"), Value::from("fp")]),
            ),
            ("meta", Value::map([("os", Value::from("ubuntu-20.04"))])),
            ("missing_is_null", Value::Null),
        ])
    }

    #[test]
    fn equality_and_missing_fields() {
        assert!(Filter::eq("name", "blackscholes").matches(&doc()));
        assert!(!Filter::eq("name", "ferret").matches(&doc()));
        // Missing field behaves as Null for equality.
        assert!(Filter::eq("nonexistent", Value::Null).matches(&doc()));
        assert!(Filter::ne("nonexistent", 3i64).matches(&doc()));
    }

    #[test]
    fn ordered_comparisons() {
        assert!(Filter::gt("cores", 4i64).matches(&doc()));
        assert!(!Filter::gt("cores", 8i64).matches(&doc()));
        assert!(Filter::gte("cores", 8i64).matches(&doc()));
        assert!(Filter::lt("time", 2.0).matches(&doc()));
        assert!(Filter::lte("time", 1.25).matches(&doc()));
        // Ordered comparison on a missing field never matches.
        assert!(!Filter::gt("ghost", 0i64).matches(&doc()));
        // Int field vs float bound compares numerically.
        assert!(Filter::gt("cores", 7.5).matches(&doc()));
    }

    #[test]
    fn string_array_and_nested_operators() {
        assert!(Filter::contains("meta.os", "20.04").matches(&doc()));
        assert!(!Filter::contains("meta.os", "18.04").matches(&doc()));
        assert!(Filter::elem_match("tags", "parsec").matches(&doc()));
        assert!(!Filter::elem_match("tags", "gpu").matches(&doc()));
        assert!(Filter::exists("missing_is_null").matches(&doc()));
        assert!(!Filter::exists("really_missing").matches(&doc()));
        assert!(Filter::any_of("cores", [1i64, 2, 8]).matches(&doc()));
        assert!(!Filter::any_of("cores", [1i64, 2, 4]).matches(&doc()));
    }

    #[test]
    fn boolean_composition() {
        let f = Filter::eq("name", "blackscholes")
            .and(Filter::gt("cores", 2i64))
            .or(Filter::eq("name", "ferret"));
        assert!(f.matches(&doc()));
        assert!(Filter::eq("name", "x").not().matches(&doc()));
        assert!(Filter::All.matches(&doc()));
        assert!(!Filter::All.not().matches(&doc()));
    }
}
