//! Content-addressed blob storage — the GridFS analogue.
//!
//! The paper stores every artifact's file bytes in the database "unless
//! it already exists there": content addressing gives that dedup for
//! free. Keys are MD5 fingerprints of the content.

use crate::journal::{self, JournalCell, JournalOp};
use bytes::Bytes;
use parking_lot::RwLock;
use simart_artifact::hash::{Digest, Md5};
use simart_observe as observe;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Key identifying a stored blob (its content hash).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlobKey(Digest);

impl BlobKey {
    /// The key for the given content (without storing it).
    pub fn for_content(data: &[u8]) -> BlobKey {
        BlobKey(Md5::digest(data))
    }

    /// Hex form of the key.
    pub fn to_hex(self) -> String {
        self.0.to_hex()
    }

    /// Parses a hex key.
    pub fn from_hex(hex: &str) -> Option<BlobKey> {
        Digest::from_hex(hex).map(BlobKey)
    }
}

impl fmt::Display for BlobKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Deduplicating, content-addressed byte store.
///
/// Cheap to clone (handles share storage); thread-safe.
///
/// ```
/// use simart_db::BlobStore;
///
/// let store = BlobStore::new();
/// let key = store.put(b"kernel image bytes".to_vec());
/// assert_eq!(store.get(key).unwrap().as_ref(), b"kernel image bytes");
/// // Identical content stores once.
/// let again = store.put(b"kernel image bytes".to_vec());
/// assert_eq!(key, again);
/// assert_eq!(store.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BlobStore {
    inner: Arc<RwLock<HashMap<BlobKey, Bytes>>>,
    journal: JournalCell,
}

impl BlobStore {
    /// Creates an empty store.
    pub fn new() -> BlobStore {
        BlobStore::default()
    }

    /// An empty store sharing the owning database's journal slot, so
    /// blob puts on an attached database append as they happen.
    pub(crate) fn with_journal(journal: JournalCell) -> BlobStore {
        BlobStore {
            inner: Arc::default(),
            journal,
        }
    }

    /// Stores content, returning its key. Identical content is stored
    /// only once; only first-time content is journaled (dedup hits
    /// change nothing).
    pub fn put(&self, data: impl Into<Bytes>) -> BlobKey {
        let data = data.into();
        let key = BlobKey::for_content(&data);
        observe::count("db.blob_puts", 1);
        match self.inner.write().entry(key) {
            std::collections::hash_map::Entry::Occupied(_) => {
                observe::count("db.blob_dedup_hits", 1);
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                journal::append_best_effort(
                    &self.journal,
                    &JournalOp::BlobPut {
                        data: data.to_vec(),
                    },
                );
                slot.insert(data);
            }
        }
        key
    }

    /// Fetches content by key.
    pub fn get(&self, key: BlobKey) -> Option<Bytes> {
        self.inner.read().get(&key).cloned()
    }

    /// Whether the store holds content for `key`.
    pub fn contains(&self, key: BlobKey) -> bool {
        self.inner.read().contains_key(&key)
    }

    /// Removes content by key, returning it.
    pub fn remove(&self, key: BlobKey) -> Option<Bytes> {
        let mut inner = self.inner.write();
        if inner.contains_key(&key) {
            journal::append_best_effort(
                &self.journal,
                &JournalOp::BlobRemove { key: key.to_hex() },
            );
        }
        inner.remove(&key)
    }

    /// Number of distinct blobs.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Total stored bytes across all blobs.
    pub fn total_bytes(&self) -> usize {
        self.inner.read().values().map(Bytes::len).sum()
    }

    /// Snapshot of all keys, sorted for determinism.
    pub fn keys(&self) -> Vec<BlobKey> {
        let mut keys: Vec<BlobKey> = self.inner.read().keys().copied().collect();
        keys.sort();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let store = BlobStore::new();
        let key = store.put(b"hello".to_vec());
        assert_eq!(store.get(key).unwrap().as_ref(), b"hello");
        assert!(store.contains(key));
        assert_eq!(store.total_bytes(), 5);
    }

    #[test]
    fn content_addressing_dedupes() {
        let store = BlobStore::new();
        let k1 = store.put(b"same".to_vec());
        let k2 = store.put(b"same".to_vec());
        let k3 = store.put(b"different".to_vec());
        assert_eq!(k1, k2);
        assert_ne!(k1, k3);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn key_matches_precomputed_hash() {
        let store = BlobStore::new();
        let precomputed = BlobKey::for_content(b"abc");
        let stored = store.put(b"abc".to_vec());
        assert_eq!(precomputed, stored);
        assert_eq!(stored.to_hex(), "900150983cd24fb0d6963f7d28e17f72");
        assert_eq!(BlobKey::from_hex(&stored.to_hex()), Some(stored));
    }

    #[test]
    fn remove_frees_key() {
        let store = BlobStore::new();
        let key = store.put(b"x".to_vec());
        assert!(store.remove(key).is_some());
        assert!(!store.contains(key));
        assert!(store.is_empty());
    }

    #[test]
    fn keys_are_sorted() {
        let store = BlobStore::new();
        for i in 0..20u8 {
            store.put(vec![i]);
        }
        let keys = store.keys();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(keys.len(), 20);
    }
}
