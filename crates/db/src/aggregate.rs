//! Aggregation over query results: the analysis layer the paper feeds
//! into Jupyter/matplotlib, reproduced as group-by statistics.
//!
//! Aggregations read from a [`Snapshot`] rather than a live
//! [`Collection`](crate::Collection): take the snapshot once with
//! [`Collection::snapshot`](crate::Collection::snapshot) and every
//! stage sees the same isolated state, without re-locking the
//! collection per stage and without tearing across concurrent writers.

use crate::collection::Snapshot;
use crate::query::Filter;
use crate::value::Value;
use std::collections::BTreeMap;

/// A numeric reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reduce {
    /// Number of documents carrying the value.
    Count,
    /// Sum of the values.
    Sum,
    /// Arithmetic mean.
    Mean,
    /// Smallest value.
    Min,
    /// Largest value.
    Max,
}

impl Reduce {
    fn apply(self, values: &[f64]) -> Option<f64> {
        if values.is_empty() {
            return if self == Reduce::Count {
                Some(0.0)
            } else {
                None
            };
        }
        Some(match self {
            Reduce::Count => values.len() as f64,
            Reduce::Sum => values.iter().sum(),
            Reduce::Mean => values.iter().sum::<f64>() / values.len() as f64,
            Reduce::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
            Reduce::Max => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        })
    }
}

/// Groups matching documents by the (stringified) value at
/// `group_path` and reduces the numbers found at `value_path`.
///
/// Documents lacking either path are skipped, as are non-numeric
/// values at `value_path`. Groups come back sorted by key.
pub fn group_reduce(
    snapshot: &Snapshot,
    filter: &Filter,
    group_path: &str,
    value_path: &str,
    reduce: Reduce,
) -> BTreeMap<String, f64> {
    let mut buckets: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for doc in snapshot.find(filter) {
        let Some(key) = doc.at(group_path) else {
            continue;
        };
        let key = match key {
            Value::Str(s) => s.clone(),
            other => crate::json::to_json(other),
        };
        if let Some(value) = doc.at(value_path).and_then(Value::as_float) {
            buckets.entry(key).or_default().push(value);
        }
    }
    buckets
        .into_iter()
        .filter_map(|(key, values)| reduce.apply(&values).map(|v| (key, v)))
        .collect()
}

/// Reduces the numbers at `value_path` across all matching documents.
pub fn reduce(
    snapshot: &Snapshot,
    filter: &Filter,
    value_path: &str,
    reduce: Reduce,
) -> Option<f64> {
    let values: Vec<f64> = snapshot
        .find(filter)
        .iter()
        .filter_map(|doc| doc.at(value_path).and_then(Value::as_float))
        .collect();
    reduce.apply(&values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::Collection;
    use crate::database::Database;

    fn populated() -> Collection {
        let collection = Database::in_memory().collection("agg");
        let rows = [
            ("r1", "dedup", 1, 100.0),
            ("r2", "dedup", 2, 60.0),
            ("r3", "dedup", 8, 20.0),
            ("r4", "vips", 1, 80.0),
            ("r5", "vips", 2, 45.0),
            ("r6", "vips", 8, 15.0),
        ];
        for (id, app, cores, time) in rows {
            collection
                .insert(Value::map([
                    ("_id", Value::from(id)),
                    ("app", Value::from(app)),
                    ("cores", Value::from(cores as i64)),
                    ("time", Value::from(time)),
                ]))
                .unwrap();
        }
        collection
    }

    #[test]
    fn group_means_per_app() {
        let c = populated().snapshot();
        let means = group_reduce(&c, &Filter::All, "app", "time", Reduce::Mean);
        assert_eq!(means.len(), 2);
        assert!((means["dedup"] - 60.0).abs() < 1e-9);
        assert!((means["vips"] - 140.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn group_by_numeric_key_stringifies() {
        let c = populated().snapshot();
        let sums = group_reduce(&c, &Filter::All, "cores", "time", Reduce::Sum);
        assert_eq!(sums["1"], 180.0);
        assert_eq!(sums["8"], 35.0);
    }

    #[test]
    fn filters_apply_before_grouping() {
        let c = populated().snapshot();
        let maxima = group_reduce(
            &c,
            &Filter::eq("app", "dedup"),
            "cores",
            "time",
            Reduce::Max,
        );
        assert_eq!(maxima.len(), 3);
        assert_eq!(maxima["1"], 100.0);
    }

    #[test]
    fn whole_collection_reductions() {
        let c = populated().snapshot();
        assert_eq!(reduce(&c, &Filter::All, "time", Reduce::Count), Some(6.0));
        assert_eq!(reduce(&c, &Filter::All, "time", Reduce::Min), Some(15.0));
        assert_eq!(reduce(&c, &Filter::All, "time", Reduce::Max), Some(100.0));
        assert_eq!(
            reduce(&c, &Filter::eq("app", "nope"), "time", Reduce::Mean),
            None
        );
        assert_eq!(
            reduce(&c, &Filter::eq("app", "nope"), "time", Reduce::Count),
            Some(0.0)
        );
    }

    #[test]
    fn missing_and_non_numeric_values_are_skipped() {
        let c = populated();
        c.insert(Value::map([
            ("_id", Value::from("weird")),
            ("app", Value::from("dedup")),
            ("time", Value::from("not a number")),
        ]))
        .unwrap();
        c.insert(Value::map([("_id", Value::from("empty"))]))
            .unwrap();
        let snap = c.snapshot();
        let means = group_reduce(&snap, &Filter::All, "app", "time", Reduce::Mean);
        assert!((means["dedup"] - 60.0).abs() < 1e-9, "bad rows ignored");
    }
}
