//! # simart-db
//!
//! An embedded document database: the reproduction's stand-in for the
//! MongoDB instance the paper uses to store artifacts, run records, and
//! result files.
//!
//! The framework uses its database as a *provenance log*: insert
//! documents keyed by UUID, deduplicate file content, and query records
//! back by field values. This crate provides exactly those capabilities
//! with zero external services:
//!
//! * [`Value`] — a JSON-like document model with its own text
//!   serialization (used for on-disk persistence);
//! * [`Collection`] — sharded, ordered document storage with declared
//!   secondary indexes ([`IndexSpec`]), copy-on-write [`Snapshot`]
//!   reads, and a [`Filter`] query engine with an index-aware planner;
//! * [`BlobStore`] — content-addressed byte storage (the GridFS
//!   analogue) that deduplicates identical uploads;
//! * [`Database`] — a named set of collections plus a blob store, with
//!   optional directory-backed persistence;
//! * [`journal`] — the append-only write-ahead journal behind
//!   [`Database::open`]: attached databases persist every mutation as
//!   it happens (O(delta) per write) and fold the journal into snapshot
//!   files with [`Database::checkpoint`];
//! * [`ArtifactStore`] — typed artifact ↔ document mapping so
//!   `simart-artifact` records round-trip through the database.
//!
//! ```
//! use simart_db::{Database, Value, Filter};
//!
//! # fn main() -> Result<(), simart_db::DbError> {
//! let db = Database::in_memory();
//! let runs = db.collection("runs");
//! runs.insert(Value::map([
//!     ("_id", Value::from("run-1")),
//!     ("status", Value::from("success")),
//!     ("sim_ticks", Value::from(91_000_000i64)),
//! ]))?;
//! let done = runs.find(&Filter::eq("status", "success"));
//! assert_eq!(done.len(), 1);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod aggregate;
mod artifact_store;
mod blobstore;
mod collection;
mod database;
mod error;
pub mod journal;
pub mod json;
mod query;
mod value;

pub use aggregate::{group_reduce, reduce, Reduce};
pub use artifact_store::ArtifactStore;
pub use blobstore::{BlobKey, BlobStore};
pub use collection::{Collection, IndexDivergence, IndexKind, IndexSpec, Snapshot};
pub use database::{Database, LoadOptions, LoadReport, INDEX_MANIFEST_FILE};
pub use error::DbError;
pub use journal::{
    prefix_crc, read_journal, read_journal_from, JournalCursor, JournalOp, JournalReplay,
    JOURNAL_FILE,
};
pub use query::{Filter, SortOrder};
pub use value::Value;
