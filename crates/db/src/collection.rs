//! Document collections.

use crate::error::DbError;
use crate::journal::{self, JournalCell, JournalOp};
use crate::query::{Filter, SortOrder};
use crate::value::Value;
use parking_lot::RwLock;
use simart_observe as observe;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// A named set of documents with unique `_id`s.
///
/// Collections are cheap `Arc` handles; clones share storage, and all
/// operations are thread-safe (the paper's framework writes results from
/// many concurrent simulation tasks into one database).
///
/// Collections obtained from a directory-attached database
/// ([`Database::open`](crate::Database::open)) write every mutation
/// through the database's append-only journal before applying it in
/// memory, so killing the process at any instant is recoverable by
/// replay (see the [`journal`](crate::journal) module docs for the
/// durability scope against OS crashes).
#[derive(Debug, Clone)]
pub struct Collection {
    name: String,
    inner: Arc<RwLock<Inner>>,
    journal: JournalCell,
}

/// How a mutation inside [`Collection::insert_inner`] is journaled.
enum JournalAs {
    Insert,
    Upsert,
}

#[derive(Debug, Default)]
struct Inner {
    /// Documents ordered by `_id` for deterministic iteration.
    docs: BTreeMap<String, Value>,
    /// Field paths with a unique constraint, each mapping rendered value
    /// -> owning id.
    unique: HashMap<String, HashMap<String, String>>,
}

impl Collection {
    /// A detached collection (tests only — production collections come
    /// from a [`Database`](crate::Database) and share its journal).
    #[cfg(test)]
    pub(crate) fn new(name: impl Into<String>) -> Collection {
        Collection::with_journal(name, JournalCell::default())
    }

    pub(crate) fn with_journal(name: impl Into<String>, journal: JournalCell) -> Collection {
        Collection {
            name: name.into(),
            inner: Arc::new(RwLock::new(Inner::default())),
            journal,
        }
    }

    /// The collection's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares a unique constraint on `path`. Existing documents are
    /// checked immediately.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UniqueViolation`] when two existing documents
    /// already collide on `path`; the constraint is not installed then.
    pub fn ensure_unique(&self, path: impl Into<String>) -> Result<(), DbError> {
        let path = path.into();
        let mut inner = self.inner.write();
        let mut index: HashMap<String, String> = HashMap::new();
        for (id, doc) in &inner.docs {
            if let Some(value) = doc.at(&path) {
                if value.is_null() {
                    continue;
                }
                let key = crate::json::to_json(value);
                if let Some(existing) = index.insert(key.clone(), id.clone()) {
                    let _ = existing;
                    return Err(DbError::UniqueViolation {
                        collection: self.name.clone(),
                        field: path,
                        value: key,
                    });
                }
            }
        }
        inner.unique.insert(path, index);
        Ok(())
    }

    /// Inserts a document.
    ///
    /// The document must be a map carrying a string `_id` field.
    ///
    /// # Errors
    ///
    /// * [`DbError::InvalidDocument`] — not a map / missing `_id`.
    /// * [`DbError::DuplicateId`] — `_id` already present.
    /// * [`DbError::UniqueViolation`] — a unique index would be violated.
    pub fn insert(&self, doc: Value) -> Result<(), DbError> {
        self.insert_inner(doc, JournalAs::Insert)
    }

    /// Shared body of `insert` and `upsert`: validates, journals the
    /// mutation write-ahead (under the collection lock, so journal order
    /// matches in-memory order), then applies it.
    fn insert_inner(&self, doc: Value, mode: JournalAs) -> Result<(), DbError> {
        let _timer = observe::timer("db.insert_us");
        let id = id_of(&doc)?;
        let mut inner = self.inner.write();
        if inner.docs.contains_key(&id) {
            return Err(DbError::DuplicateId {
                collection: self.name.clone(),
                id,
            });
        }
        // Validate unique constraints before mutating anything.
        let mut staged: Vec<(String, String)> = Vec::new();
        for (path, index) in &inner.unique {
            if let Some(value) = doc.at(path) {
                if value.is_null() {
                    continue;
                }
                let key = crate::json::to_json(value);
                if index.contains_key(&key) {
                    return Err(DbError::UniqueViolation {
                        collection: self.name.clone(),
                        field: path.clone(),
                        value: key,
                    });
                }
                staged.push((path.clone(), key));
            }
        }
        // Write-ahead: the journal record lands before the in-memory
        // mutation, so a failed append leaves memory untouched and a
        // crash right after it replays to the same state.
        let op = match mode {
            JournalAs::Insert => JournalOp::Insert {
                collection: self.name.clone(),
                doc: doc.clone(),
            },
            JournalAs::Upsert => JournalOp::Upsert {
                collection: self.name.clone(),
                doc: doc.clone(),
            },
        };
        journal::append_if_attached(&self.journal, &op)?;
        for (path, key) in staged {
            inner
                .unique
                .get_mut(&path)
                .expect("staged from unique map")
                .insert(key, id.clone());
        }
        inner.docs.insert(id, doc);
        Ok(())
    }

    /// Inserts the document, or replaces any existing document with the
    /// same `_id` (upsert). Returns the replaced document, if any.
    pub fn upsert(&self, doc: Value) -> Result<Option<Value>, DbError> {
        let id = id_of(&doc)?;
        let previous = {
            let mut inner = self.inner.write();
            let previous = inner.docs.remove(&id);
            if let Some(prev) = &previous {
                deindex(&mut inner, &id, prev);
            }
            previous
        };
        match self.insert_inner(doc, JournalAs::Upsert) {
            Ok(()) => Ok(previous),
            Err(err) => {
                // Restore the previous document on constraint failure so
                // upsert is atomic from the caller's perspective.
                if let Some(prev) = previous {
                    let mut inner = self.inner.write();
                    reindex(&mut inner, &id, &prev);
                    inner.docs.insert(id, prev);
                }
                Err(err)
            }
        }
    }

    /// Fetches a document by `_id`.
    pub fn get(&self, id: &str) -> Option<Value> {
        self.inner.read().docs.get(id).cloned()
    }

    /// Returns all documents matching `filter`, ordered by `_id`.
    pub fn find(&self, filter: &Filter) -> Vec<Value> {
        let _timer = observe::timer("db.query_us");
        self.inner
            .read()
            .docs
            .values()
            .filter(|d| filter.matches(d))
            .cloned()
            .collect()
    }

    /// Returns the first matching document.
    pub fn find_one(&self, filter: &Filter) -> Option<Value> {
        let _timer = observe::timer("db.query_us");
        self.inner
            .read()
            .docs
            .values()
            .find(|d| filter.matches(d))
            .cloned()
    }

    /// Returns matching documents sorted by a field path.
    pub fn find_sorted(&self, filter: &Filter, sort_path: &str, order: SortOrder) -> Vec<Value> {
        let mut results = self.find(filter);
        results.sort_by(|a, b| {
            let va = a.at(sort_path).unwrap_or(&Value::Null);
            let vb = b.at(sort_path).unwrap_or(&Value::Null);
            let ord = va.compare(vb);
            match order {
                SortOrder::Ascending => ord,
                SortOrder::Descending => ord.reverse(),
            }
        });
        results
    }

    /// Counts documents matching `filter`.
    pub fn count(&self, filter: &Filter) -> usize {
        let _timer = observe::timer("db.query_us");
        self.inner
            .read()
            .docs
            .values()
            .filter(|d| filter.matches(d))
            .count()
    }

    /// Deletes the document with the given `_id`, returning it.
    ///
    /// On an attached database the deletion is journaled; an append
    /// failure (counted on `db.journal_append_errors`) does not abort
    /// the in-memory delete — durability of that record then waits for
    /// the next checkpoint.
    pub fn delete(&self, id: &str) -> Option<Value> {
        let mut inner = self.inner.write();
        if !inner.docs.contains_key(id) {
            return None;
        }
        journal::append_best_effort(
            &self.journal,
            &JournalOp::Delete {
                collection: self.name.clone(),
                id: id.to_owned(),
            },
        );
        let doc = inner.docs.remove(id)?;
        deindex(&mut inner, id, &doc);
        Some(doc)
    }

    /// Deletes every matching document, returning how many were removed.
    pub fn delete_many(&self, filter: &Filter) -> usize {
        let ids: Vec<String> = {
            let inner = self.inner.read();
            inner
                .docs
                .iter()
                .filter(|(_, d)| filter.matches(d))
                .map(|(id, _)| id.clone())
                .collect()
        };
        let mut removed = 0;
        for id in ids {
            if self.delete(&id).is_some() {
                removed += 1;
            }
        }
        removed
    }

    /// Applies `update` to every matching document (the `_id` field is
    /// protected). Returns how many documents changed.
    pub fn update_many(&self, filter: &Filter, update: impl Fn(&mut Value)) -> usize {
        let mut inner = self.inner.write();
        let ids: Vec<String> = inner
            .docs
            .iter()
            .filter(|(_, d)| filter.matches(d))
            .map(|(id, _)| id.clone())
            .collect();
        for id in &ids {
            let mut doc = inner.docs.get(id).cloned().expect("id listed above");
            deindex(&mut inner, id, &doc);
            update(&mut doc);
            doc.set_at("_id", Value::Str(id.clone()));
            reindex(&mut inner, id, &doc);
            journal::append_best_effort(
                &self.journal,
                &JournalOp::Upsert {
                    collection: self.name.clone(),
                    doc: doc.clone(),
                },
            );
            inner.docs.insert(id.clone(), doc);
        }
        ids.len()
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.inner.read().docs.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().docs.is_empty()
    }

    /// Snapshot of all documents (ordered by `_id`).
    pub fn all(&self) -> Vec<Value> {
        self.inner.read().docs.values().cloned().collect()
    }

    /// Projects one field from every matching document.
    pub fn distinct(&self, filter: &Filter, path: &str) -> Vec<Value> {
        let mut seen: HashSet<String> = HashSet::new();
        let mut out = Vec::new();
        for doc in self
            .inner
            .read()
            .docs
            .values()
            .filter(|d| filter.matches(d))
        {
            if let Some(v) = doc.at(path) {
                let key = crate::json::to_json(v);
                if seen.insert(key) {
                    out.push(v.clone());
                }
            }
        }
        out
    }
}

fn id_of(doc: &Value) -> Result<String, DbError> {
    let map = doc.as_map().ok_or_else(|| DbError::InvalidDocument {
        reason: "document must be a map".into(),
    })?;
    map.get("_id")
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| DbError::InvalidDocument {
            reason: "document must carry a string `_id`".into(),
        })
}

fn deindex(inner: &mut Inner, id: &str, doc: &Value) {
    for (path, index) in inner.unique.iter_mut() {
        if let Some(value) = doc.at(path) {
            if !value.is_null() {
                let key = crate::json::to_json(value);
                if index.get(&key).map(String::as_str) == Some(id) {
                    index.remove(&key);
                }
            }
        }
    }
}

fn reindex(inner: &mut Inner, id: &str, doc: &Value) {
    for (path, index) in inner.unique.iter_mut() {
        if let Some(value) = doc.at(path) {
            if !value.is_null() {
                index.insert(crate::json::to_json(value), id.to_owned());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(id: &str, extra: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        let mut map: Vec<(String, Value)> = vec![("_id".into(), Value::from(id))];
        map.extend(extra.into_iter().map(|(k, v)| (k.to_owned(), v)));
        map.into_iter().collect()
    }

    #[test]
    fn insert_get_delete_round_trip() {
        let c = Collection::new("runs");
        c.insert(doc("a", [("n", Value::from(1i64))])).unwrap();
        assert_eq!(c.get("a").unwrap().at("n").and_then(Value::as_int), Some(1));
        assert_eq!(c.len(), 1);
        assert!(c.delete("a").is_some());
        assert!(c.get("a").is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn rejects_duplicate_ids_and_bad_documents() {
        let c = Collection::new("runs");
        c.insert(doc("a", [])).unwrap();
        assert!(matches!(
            c.insert(doc("a", [])),
            Err(DbError::DuplicateId { .. })
        ));
        assert!(matches!(
            c.insert(Value::from(3i64)),
            Err(DbError::InvalidDocument { .. })
        ));
        assert!(matches!(
            c.insert(Value::map([("x", Value::from(1i64))])),
            Err(DbError::InvalidDocument { .. })
        ));
    }

    #[test]
    fn unique_constraint_enforced() {
        let c = Collection::new("artifacts");
        c.ensure_unique("hash").unwrap();
        c.insert(doc("a", [("hash", Value::from("h1"))])).unwrap();
        let err = c
            .insert(doc("b", [("hash", Value::from("h1"))]))
            .unwrap_err();
        assert!(matches!(err, DbError::UniqueViolation { .. }));
        // Null / missing values are exempt.
        c.insert(doc("c", [("hash", Value::Null)])).unwrap();
        c.insert(doc("d", [])).unwrap();
        // Deleting frees the key.
        c.delete("a");
        c.insert(doc("e", [("hash", Value::from("h1"))])).unwrap();
    }

    #[test]
    fn ensure_unique_rejects_preexisting_collisions() {
        let c = Collection::new("x");
        c.insert(doc("a", [("k", Value::from(1i64))])).unwrap();
        c.insert(doc("b", [("k", Value::from(1i64))])).unwrap();
        assert!(c.ensure_unique("k").is_err());
        // Constraint was not installed.
        c.insert(doc("c", [("k", Value::from(1i64))])).unwrap();
    }

    #[test]
    fn upsert_replaces_and_restores_on_conflict() {
        let c = Collection::new("x");
        c.ensure_unique("k").unwrap();
        c.insert(doc("a", [("k", Value::from("ka"))])).unwrap();
        c.insert(doc("b", [("k", Value::from("kb"))])).unwrap();
        // Plain replace.
        let old = c.upsert(doc("a", [("k", Value::from("ka2"))])).unwrap();
        assert_eq!(old.unwrap().at("k").and_then(Value::as_str), Some("ka"));
        // Conflicting upsert fails and leaves the old doc in place.
        let err = c.upsert(doc("a", [("k", Value::from("kb"))])).unwrap_err();
        assert!(matches!(err, DbError::UniqueViolation { .. }));
        assert_eq!(
            c.get("a").unwrap().at("k").and_then(Value::as_str),
            Some("ka2")
        );
    }

    #[test]
    fn find_sort_count_distinct() {
        let c = Collection::new("x");
        for (id, app, t) in [("1", "dedup", 5i64), ("2", "vips", 3), ("3", "dedup", 9)] {
            c.insert(doc(id, [("app", Value::from(app)), ("t", Value::from(t))]))
                .unwrap();
        }
        assert_eq!(c.count(&Filter::eq("app", "dedup")), 2);
        let sorted = c.find_sorted(&Filter::All, "t", SortOrder::Descending);
        let ts: Vec<i64> = sorted
            .iter()
            .filter_map(|d| d.at("t").and_then(Value::as_int))
            .collect();
        assert_eq!(ts, vec![9, 5, 3]);
        let apps = c.distinct(&Filter::All, "app");
        assert_eq!(apps.len(), 2);
        assert!(c.find_one(&Filter::eq("app", "vips")).is_some());
    }

    #[test]
    fn update_many_reindexes_and_protects_id() {
        let c = Collection::new("x");
        c.ensure_unique("k").unwrap();
        c.insert(doc(
            "a",
            [("k", Value::from("v1")), ("status", Value::from("running"))],
        ))
        .unwrap();
        let n = c.update_many(&Filter::eq("status", "running"), |d| {
            d.set_at("status", Value::from("done"));
            d.set_at("k", Value::from("v2"));
            d.set_at("_id", Value::from("hacked"));
        });
        assert_eq!(n, 1);
        let got = c.get("a").expect("_id update must be ignored");
        assert_eq!(got.at("status").and_then(Value::as_str), Some("done"));
        // Old key freed, new key owned.
        c.insert(doc("b", [("k", Value::from("v1"))])).unwrap();
        assert!(c.insert(doc("c", [("k", Value::from("v2"))])).is_err());
    }

    #[test]
    fn delete_many_by_filter() {
        let c = Collection::new("x");
        for i in 0..10i64 {
            c.insert(doc(&i.to_string(), [("even", Value::from(i % 2 == 0))]))
                .unwrap();
        }
        assert_eq!(c.delete_many(&Filter::eq("even", true)), 5);
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn clones_share_storage() {
        let c = Collection::new("x");
        let c2 = c.clone();
        c.insert(doc("a", [])).unwrap();
        assert_eq!(c2.len(), 1);
    }
}
