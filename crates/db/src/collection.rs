//! Document collections: hash-sharded storage, declared secondary
//! indexes, and copy-on-write snapshots.
//!
//! A collection's documents are split across [`SHARD_COUNT`] hash
//! shards (by `_id`), each behind its own lock, so point reads on
//! different documents never contend. Every shard holds its map behind
//! an [`Arc`]; [`Collection::snapshot`] clones those `Arc`s to freeze a
//! consistent view, and writers use copy-on-write
//! ([`Arc::make_mut`]) so they proceed while snapshots are held.
//!
//! Secondary indexes are declared with [`Collection::ensure_index`]
//! ([`IndexSpec`]) and maintained write-through at the same commit
//! point as the journal append. Index state is never load-bearing:
//! it is rebuilt deterministically from the documents on every load,
//! and [`Collection::verify_indexes`] can cross-check it at any time.

use crate::error::DbError;
use crate::journal::{self, JournalCell, JournalOp};
use crate::query::{Filter, Probe, SortOrder};
use crate::value::Value;
use parking_lot::RwLock;
use simart_observe as observe;
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::ops::Bound;
use std::ops::ControlFlow;
use std::sync::Arc;

/// Number of hash shards per collection. A fixed power of two keeps
/// `_id -> shard` assignment stable across processes (shard layout is
/// an in-memory detail, but determinism keeps iteration reproducible).
const SHARD_COUNT: usize = 16;

/// FNV-1a over the document id selects its shard.
fn shard_of(id: &str) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in id.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % SHARD_COUNT as u64) as usize
}

/// How a secondary index organizes its keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Rendered-value hash index: serves equality and array-membership
    /// probes. Array fields are multikey — the whole array and each
    /// non-null element are indexed.
    Hash,
    /// Value-ordered index: serves equality, range (`Gt`/`Gte`/`Lt`/
    /// `Lte`), and `find_sorted` traversal in [`Value::compare`] order.
    Ordered,
}

impl IndexKind {
    /// Stable on-disk / journal name of the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            IndexKind::Hash => "hash",
            IndexKind::Ordered => "ordered",
        }
    }

    /// Parses the stable name back; `None` for unknown text.
    pub fn parse(text: &str) -> Option<IndexKind> {
        match text {
            "hash" => Some(IndexKind::Hash),
            "ordered" => Some(IndexKind::Ordered),
            _ => None,
        }
    }
}

/// A declared secondary index on one dotted field path.
///
/// At most one index may exist per path; redeclaring an identical spec
/// is a no-op, a different spec on the same path is an error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexSpec {
    /// Dotted field path the index covers.
    pub path: String,
    /// Hash or ordered organization.
    pub kind: IndexKind,
    /// Whether two documents may share a non-null rendered key.
    pub unique: bool,
}

impl IndexSpec {
    /// A non-unique hash index on `path`.
    pub fn hash(path: impl Into<String>) -> IndexSpec {
        IndexSpec {
            path: path.into(),
            kind: IndexKind::Hash,
            unique: false,
        }
    }

    /// A non-unique ordered index on `path`.
    pub fn ordered(path: impl Into<String>) -> IndexSpec {
        IndexSpec {
            path: path.into(),
            kind: IndexKind::Ordered,
            unique: false,
        }
    }

    /// Marks the index unique (null / missing values stay exempt).
    pub fn unique(mut self) -> IndexSpec {
        self.unique = true;
        self
    }
}

/// One discrepancy found by [`Collection::verify_indexes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDivergence {
    /// The indexed field path.
    pub path: String,
    /// Human-readable description of the mismatch.
    pub detail: String,
}

/// Ordered-index key: sorts primarily by [`Value::compare`], with the
/// rendered JSON as a total tie-break so distinct-but-compare-equal
/// values (`1` vs `1.0`) occupy deterministic adjacent slots.
#[derive(Debug, Clone)]
struct OrdKey {
    value: Value,
    rendered: String,
}

impl OrdKey {
    fn for_value(value: &Value) -> OrdKey {
        OrdKey {
            value: value.clone(),
            rendered: crate::json::to_json(value),
        }
    }
}

impl PartialEq for OrdKey {
    fn eq(&self, other: &OrdKey) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for OrdKey {}
impl PartialOrd for OrdKey {
    fn partial_cmp(&self, other: &OrdKey) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdKey {
    fn cmp(&self, other: &OrdKey) -> std::cmp::Ordering {
        self.value
            .compare(&other.value)
            .then_with(|| self.rendered.cmp(&other.rendered))
    }
}

/// Sentinel rendered strings strictly below / above every real rendered
/// key (all rendered JSON is non-empty and starts with an ASCII
/// character), used to aim range bounds at whole compare-equal classes.
const RENDERED_MIN: &str = "";
const RENDERED_MAX: &str = "\u{10FFFF}";

fn class_bound(value: &Value, top: bool) -> OrdKey {
    OrdKey {
        value: value.clone(),
        rendered: if top { RENDERED_MAX } else { RENDERED_MIN }.to_owned(),
    }
}

#[derive(Debug)]
enum IndexData {
    Hash(BTreeMap<String, BTreeSet<String>>),
    Ordered(BTreeMap<OrdKey, BTreeSet<String>>),
}

#[derive(Debug)]
struct Index {
    spec: IndexSpec,
    data: IndexData,
}

/// Rendered keys a document contributes to a hash index: the whole
/// value, plus each non-null element when the value is an array
/// (multikey). Null / missing values contribute nothing (sparse).
fn hash_keys(doc: &Value, path: &str) -> Vec<String> {
    let Some(value) = doc.at(path) else {
        return Vec::new();
    };
    if value.is_null() {
        return Vec::new();
    }
    let mut keys = vec![crate::json::to_json(value)];
    if let Value::Array(items) = value {
        for item in items {
            if item.is_null() {
                continue;
            }
            let key = crate::json::to_json(item);
            if !keys.contains(&key) {
                keys.push(key);
            }
        }
    }
    keys
}

impl Index {
    fn new(spec: IndexSpec) -> Index {
        let data = match spec.kind {
            IndexKind::Hash => IndexData::Hash(BTreeMap::new()),
            IndexKind::Ordered => IndexData::Ordered(BTreeMap::new()),
        };
        Index { spec, data }
    }

    /// Unique-constraint check for `doc` arriving as `id`; an existing
    /// occupant other than `id` itself is a violation.
    fn check_unique(&self, collection: &str, id: &str, doc: &Value) -> Result<(), DbError> {
        if !self.spec.unique {
            return Ok(());
        }
        let violation = |key: &str| DbError::UniqueViolation {
            collection: collection.to_owned(),
            field: self.spec.path.clone(),
            value: key.to_owned(),
        };
        match &self.data {
            IndexData::Hash(map) => {
                for key in hash_keys(doc, &self.spec.path) {
                    if let Some(ids) = map.get(&key) {
                        if ids.iter().any(|other| other != id) {
                            return Err(violation(&key));
                        }
                    }
                }
            }
            IndexData::Ordered(map) => {
                if let Some(value) = doc.at(&self.spec.path) {
                    if !value.is_null() {
                        let key = OrdKey::for_value(value);
                        if let Some(ids) = map.get(&key) {
                            if ids.iter().any(|other| other != id) {
                                return Err(violation(&key.rendered));
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn add(&mut self, id: &str, doc: &Value) {
        match &mut self.data {
            IndexData::Hash(map) => {
                for key in hash_keys(doc, &self.spec.path) {
                    map.entry(key).or_default().insert(id.to_owned());
                }
            }
            IndexData::Ordered(map) => {
                if let Some(value) = doc.at(&self.spec.path) {
                    map.entry(OrdKey::for_value(value))
                        .or_default()
                        .insert(id.to_owned());
                }
            }
        }
    }

    fn remove(&mut self, id: &str, doc: &Value) {
        match &mut self.data {
            IndexData::Hash(map) => {
                for key in hash_keys(doc, &self.spec.path) {
                    if let Some(ids) = map.get_mut(&key) {
                        ids.remove(id);
                        if ids.is_empty() {
                            map.remove(&key);
                        }
                    }
                }
            }
            IndexData::Ordered(map) => {
                if let Some(value) = doc.at(&self.spec.path) {
                    let key = OrdKey::for_value(value);
                    if let Some(ids) = map.get_mut(&key) {
                        ids.remove(id);
                        if ids.is_empty() {
                            map.remove(&key);
                        }
                    }
                }
            }
        }
    }

    /// Candidate ids for an equality probe (superset of exact matches:
    /// an ordered index returns the whole compare-equal class).
    fn probe_eq(&self, value: &Value) -> Vec<String> {
        match &self.data {
            IndexData::Hash(map) => map
                .get(&crate::json::to_json(value))
                .map(|ids| ids.iter().cloned().collect())
                .unwrap_or_default(),
            IndexData::Ordered(map) => map
                .range((
                    Bound::Included(class_bound(value, false)),
                    Bound::Included(class_bound(value, true)),
                ))
                .flat_map(|(_, ids)| ids.iter().cloned())
                .collect(),
        }
    }

    /// Candidate ids for an array-membership probe (hash multikey only).
    fn probe_elem(&self, value: &Value) -> Option<Vec<String>> {
        match &self.data {
            IndexData::Hash(map) => Some(
                map.get(&crate::json::to_json(value))
                    .map(|ids| ids.iter().cloned().collect())
                    .unwrap_or_default(),
            ),
            IndexData::Ordered(_) => None,
        }
    }

    /// Candidate ids for a range probe (ordered only). Bounds are
    /// `(value, inclusive)`; `None` is unbounded on that side.
    fn probe_range(
        &self,
        lower: Option<(&Value, bool)>,
        upper: Option<(&Value, bool)>,
    ) -> Option<Vec<String>> {
        let IndexData::Ordered(map) = &self.data else {
            return None;
        };
        // Bounds aim at whole compare-equal classes: inclusive bounds
        // take the class, exclusive bounds skip it.
        let start = match lower {
            None => Bound::Unbounded,
            Some((value, true)) => Bound::Included(class_bound(value, false)),
            Some((value, false)) => Bound::Excluded(class_bound(value, true)),
        };
        let end = match upper {
            None => Bound::Unbounded,
            Some((value, true)) => Bound::Included(class_bound(value, true)),
            Some((value, false)) => Bound::Excluded(class_bound(value, false)),
        };
        // An inverted range would panic inside BTreeMap::range; it can
        // only arise from a contradictory filter, which matches nothing.
        if let (Bound::Included(s) | Bound::Excluded(s), Bound::Included(e) | Bound::Excluded(e)) =
            (&start, &end)
        {
            if s > e {
                return Some(Vec::new());
            }
        }
        Some(
            map.range((start, end))
                .flat_map(|(_, ids)| ids.iter().cloned())
                .collect(),
        )
    }

    /// Rendered key -> sorted ids view, shared by the persistence
    /// manifest, [`Collection::index_state`], and divergence checks.
    fn rendered_entries(&self) -> BTreeMap<String, BTreeSet<String>> {
        match &self.data {
            IndexData::Hash(map) => map.clone(),
            IndexData::Ordered(map) => {
                let mut out: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
                for (key, ids) in map {
                    out.entry(key.rendered.clone())
                        .or_default()
                        .extend(ids.iter().cloned());
                }
                out
            }
        }
    }

    /// The keys `doc` is expected to occupy, rendered.
    fn expected_keys(&self, doc: &Value) -> Vec<String> {
        match self.spec.kind {
            IndexKind::Hash => hash_keys(doc, &self.spec.path),
            IndexKind::Ordered => doc
                .at(&self.spec.path)
                .map(|v| vec![crate::json::to_json(v)])
                .unwrap_or_default(),
        }
    }
}

#[derive(Debug, Default)]
struct IndexSet {
    indexes: Vec<Index>,
}

impl IndexSet {
    fn get(&self, path: &str) -> Option<&Index> {
        self.indexes.iter().find(|ix| ix.spec.path == path)
    }

    /// Validates every unique constraint before anything is mutated.
    fn check_unique(&self, collection: &str, id: &str, doc: &Value) -> Result<(), DbError> {
        for index in &self.indexes {
            index.check_unique(collection, id, doc)?;
        }
        Ok(())
    }

    fn add_doc(&mut self, id: &str, doc: &Value) {
        for index in &mut self.indexes {
            index.add(id, doc);
        }
    }

    fn remove_doc(&mut self, id: &str, doc: &Value) {
        for index in &mut self.indexes {
            index.remove(id, doc);
        }
    }
}

/// A consistent, immutable view of a collection's documents.
///
/// Obtained from [`Collection::snapshot`]; cheap to create (clones one
/// `Arc` per shard under a brief lock) and never blocks or observes
/// subsequent writers, which copy-on-write their shard maps instead.
/// Reads on a snapshot record no query metrics.
#[derive(Debug, Clone)]
pub struct Snapshot {
    name: String,
    shards: Vec<Arc<BTreeMap<String, Value>>>,
}

impl Snapshot {
    /// The collection's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of documents in the snapshot.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Whether the snapshot holds no documents.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Fetches a document by `_id`.
    pub fn get(&self, id: &str) -> Option<Value> {
        self.shards[shard_of(id)].get(id).cloned()
    }

    /// All documents, ordered by `_id`.
    pub fn all(&self) -> Vec<Value> {
        self.find(&Filter::All)
    }

    /// Documents matching `filter`, ordered by `_id`.
    pub fn find(&self, filter: &Filter) -> Vec<Value> {
        let mut matches: Vec<(&String, &Value)> = self
            .shards
            .iter()
            .flat_map(|shard| shard.iter())
            .filter(|(_, doc)| filter.matches(doc))
            .collect();
        matches.sort_by(|a, b| a.0.cmp(b.0));
        matches.into_iter().map(|(_, doc)| doc.clone()).collect()
    }

    /// The first matching document in `_id` order.
    pub fn find_one(&self, filter: &Filter) -> Option<Value> {
        let mut best: Option<(&String, &Value)> = None;
        for entry in self
            .shards
            .iter()
            .flat_map(|shard| shard.iter())
            .filter(|(_, doc)| filter.matches(doc))
        {
            match &best {
                Some((id, _)) if *id <= entry.0 => {}
                _ => best = Some(entry),
            }
        }
        best.map(|(_, doc)| doc.clone())
    }

    /// Counts matching documents.
    pub fn count(&self, filter: &Filter) -> usize {
        self.shards
            .iter()
            .flat_map(|shard| shard.iter())
            .filter(|(_, doc)| filter.matches(doc))
            .count()
    }

    /// Matching documents sorted by a field path (missing fields sort
    /// as `Null`; ties keep `_id` order).
    pub fn find_sorted(&self, filter: &Filter, sort_path: &str, order: SortOrder) -> Vec<Value> {
        let mut results = self.find(filter);
        sort_docs(&mut results, sort_path, order);
        results
    }
}

fn sort_docs(docs: &mut [Value], sort_path: &str, order: SortOrder) {
    docs.sort_by(|a, b| {
        let va = a.at(sort_path).unwrap_or(&Value::Null);
        let vb = b.at(sort_path).unwrap_or(&Value::Null);
        let ord = va.compare(vb);
        match order {
            SortOrder::Ascending => ord,
            SortOrder::Descending => ord.reverse(),
        }
    });
}

/// A named set of documents with unique `_id`s.
///
/// Collections are cheap `Arc` handles; clones share storage, and all
/// operations are thread-safe (the paper's framework writes results from
/// many concurrent simulation tasks into one database). Documents live
/// in hash shards behind per-shard locks; declared indexes live behind
/// one collection-wide lock that serializes writers against each other
/// (and against index readers) while leaving point reads and held
/// [`Snapshot`]s contention-free.
///
/// Collections obtained from a directory-attached database
/// ([`Database::open`](crate::Database::open)) write every mutation
/// through the database's append-only journal before applying it in
/// memory, so killing the process at any instant is recoverable by
/// replay (see the [`journal`](crate::journal) module docs for the
/// durability scope against OS crashes). Index definitions are
/// journaled the same way (`idx` records), so they survive checkpoint
/// compaction and crash replay.
#[derive(Debug, Clone)]
pub struct Collection {
    name: String,
    inner: Arc<Inner>,
    journal: JournalCell,
}

#[derive(Debug)]
struct Inner {
    /// Hash shards; `shard_of(_id)` picks the slot. Each shard's map is
    /// `Arc`-wrapped for copy-on-write snapshot isolation.
    shards: Vec<RwLock<Shard>>,
    /// Declared secondary indexes. Writers take this lock in write mode
    /// for the whole journal-append + apply sequence, so any holder of
    /// the read lock sees documents and indexes mutually consistent.
    indexes: RwLock<IndexSet>,
}

#[derive(Debug, Default)]
struct Shard {
    docs: Arc<BTreeMap<String, Value>>,
}

impl Collection {
    /// A detached collection (tests only — production collections come
    /// from a [`Database`](crate::Database) and share its journal).
    #[cfg(test)]
    pub(crate) fn new(name: impl Into<String>) -> Collection {
        Collection::with_journal(name, JournalCell::default())
    }

    pub(crate) fn with_journal(name: impl Into<String>, journal: JournalCell) -> Collection {
        Collection {
            name: name.into(),
            inner: Arc::new(Inner {
                shards: (0..SHARD_COUNT)
                    .map(|_| RwLock::new(Shard::default()))
                    .collect(),
                indexes: RwLock::new(IndexSet::default()),
            }),
            journal,
        }
    }

    /// The collection's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Captures one `Arc` per shard. Callers hold the index lock (read
    /// or write) across the captures so the view is a consistent cut.
    fn capture_shards(&self) -> Vec<Arc<BTreeMap<String, Value>>> {
        self.inner
            .shards
            .iter()
            .map(|shard| Arc::clone(&shard.read().docs))
            .collect()
    }

    /// A consistent copy-on-write snapshot of the collection.
    pub fn snapshot(&self) -> Snapshot {
        let _indexes = self.inner.indexes.read();
        Snapshot {
            name: self.name.clone(),
            shards: self.capture_shards(),
        }
    }

    /// Declares a secondary index. Existing documents are indexed
    /// immediately; on an attached database the definition is journaled
    /// (an `idx` record) so it survives checkpoint compaction.
    /// Redeclaring an identical spec is a no-op (and appends nothing).
    ///
    /// # Errors
    ///
    /// * [`DbError::UniqueViolation`] — `spec.unique` and two existing
    ///   documents collide on `spec.path`; the index is not installed.
    /// * [`DbError::IndexConflict`] — a different index already covers
    ///   `spec.path`.
    pub fn ensure_index(&self, spec: IndexSpec) -> Result<(), DbError> {
        let mut indexes = self.inner.indexes.write();
        if let Some(existing) = indexes.get(&spec.path) {
            if existing.spec == spec {
                return Ok(());
            }
            return Err(DbError::IndexConflict {
                collection: self.name.clone(),
                path: spec.path,
            });
        }
        let mut index = Index::new(spec.clone());
        for shard in &self.inner.shards {
            for (id, doc) in shard.read().docs.iter() {
                index.check_unique(&self.name, id, doc)?;
                index.add(id, doc);
            }
        }
        journal::append_if_attached(
            &self.journal,
            &JournalOp::EnsureIndex {
                collection: self.name.clone(),
                spec,
            },
        )?;
        indexes.indexes.push(index);
        Ok(())
    }

    /// Declares a unique constraint on `path` — sugar for a unique
    /// [`IndexKind::Hash`] index. Existing documents are checked
    /// immediately.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UniqueViolation`] when two existing documents
    /// already collide on `path`; the constraint is not installed then.
    pub fn ensure_unique(&self, path: impl Into<String>) -> Result<(), DbError> {
        self.ensure_index(IndexSpec::hash(path).unique())
    }

    /// The declared index specs, in declaration order.
    pub fn index_specs(&self) -> Vec<IndexSpec> {
        self.inner
            .indexes
            .read()
            .indexes
            .iter()
            .map(|ix| ix.spec.clone())
            .collect()
    }

    /// The entries of the index on `path` as `(key value, sorted ids)`
    /// pairs in key order, or `None` when no index covers `path`.
    /// Hash-index keys are decoded from their rendered form; multikey
    /// array entries appear both whole and per element.
    pub fn index_entries(&self, path: &str) -> Option<Vec<(Value, Vec<String>)>> {
        let indexes = self.inner.indexes.read();
        let index = indexes.get(path)?;
        Some(match &index.data {
            IndexData::Hash(map) => map
                .iter()
                .map(|(key, ids)| {
                    (
                        crate::json::from_json(key).unwrap_or(Value::Null),
                        ids.iter().cloned().collect(),
                    )
                })
                .collect(),
            IndexData::Ordered(map) => map
                .iter()
                .map(|(key, ids)| (key.value.clone(), ids.iter().cloned().collect()))
                .collect(),
        })
    }

    /// Canonical, deterministic rendering of every index: an array
    /// (sorted by path) of `{path, kind, unique, keys}` maps, where
    /// `keys` maps each rendered key to its sorted ids. Byte-identical
    /// across a rebuild from the same documents; used by the
    /// persistence manifest, divergence lints, and property tests.
    pub fn index_state(&self) -> Value {
        let indexes = self.inner.indexes.read();
        let mut states: Vec<(String, Value)> = indexes
            .indexes
            .iter()
            .map(|index| {
                let keys: BTreeMap<String, Value> = index
                    .rendered_entries()
                    .into_iter()
                    .map(|(key, ids)| {
                        (key, Value::Array(ids.into_iter().map(Value::Str).collect()))
                    })
                    .collect();
                (
                    index.spec.path.clone(),
                    Value::map([
                        ("path", Value::from(index.spec.path.as_str())),
                        ("kind", Value::from(index.spec.kind.as_str())),
                        ("unique", Value::from(index.spec.unique)),
                        ("keys", Value::Map(keys)),
                    ]),
                )
            })
            .collect();
        states.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Array(states.into_iter().map(|(_, v)| v).collect())
    }

    /// Cross-checks every index against the documents, both directions:
    /// entries pointing at missing documents or stale rendered keys, and
    /// documents absent from an index that should cover them. An empty
    /// result means indexes and documents agree exactly.
    pub fn verify_indexes(&self) -> Vec<IndexDivergence> {
        let indexes = self.inner.indexes.read();
        let shards = self.capture_shards();
        let mut out = Vec::new();
        for index in &indexes.indexes {
            let path = &index.spec.path;
            let actual = index.rendered_entries();
            let mut expected: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
            for shard in &shards {
                for (id, doc) in shard.iter() {
                    for key in index.expected_keys(doc) {
                        expected.entry(key).or_default().insert(id.clone());
                    }
                }
            }
            for (key, ids) in &actual {
                for id in ids {
                    if expected.get(key).is_none_or(|set| !set.contains(id)) {
                        let detail = if shards[shard_of(id)].contains_key(id) {
                            format!(
                                "index entry {key} -> {id} does not match the document's rendered key"
                            )
                        } else {
                            format!("index entry {key} -> {id} points at a missing document")
                        };
                        out.push(IndexDivergence {
                            path: path.clone(),
                            detail,
                        });
                    }
                }
            }
            for (key, ids) in &expected {
                for id in ids {
                    if actual.get(key).is_none_or(|set| !set.contains(id)) {
                        out.push(IndexDivergence {
                            path: path.clone(),
                            detail: format!("document {id} is missing from the index under {key}"),
                        });
                    }
                }
            }
        }
        out.sort_by(|a, b| (&a.path, &a.detail).cmp(&(&b.path, &b.detail)));
        out
    }

    /// Test hook: plants a raw entry in the index on `path` (no-op when
    /// no such index exists). Exists so divergence detection can be
    /// exercised; never call this outside tests.
    #[doc(hidden)]
    pub fn inject_index_entry(&self, path: &str, rendered_key: &str, id: &str) {
        let mut indexes = self.inner.indexes.write();
        let Some(index) = indexes.indexes.iter_mut().find(|ix| ix.spec.path == path) else {
            return;
        };
        match &mut index.data {
            IndexData::Hash(map) => {
                map.entry(rendered_key.to_owned())
                    .or_default()
                    .insert(id.to_owned());
            }
            IndexData::Ordered(map) => {
                let value = crate::json::from_json(rendered_key).unwrap_or(Value::Null);
                map.entry(OrdKey {
                    value,
                    rendered: rendered_key.to_owned(),
                })
                .or_default()
                .insert(id.to_owned());
            }
        }
    }

    /// Inserts a document.
    ///
    /// The document must be a map carrying a string `_id` field.
    ///
    /// # Errors
    ///
    /// * [`DbError::InvalidDocument`] — not a map / missing `_id`.
    /// * [`DbError::DuplicateId`] — `_id` already present.
    /// * [`DbError::UniqueViolation`] — a unique index would be violated.
    pub fn insert(&self, doc: Value) -> Result<(), DbError> {
        let _timer = observe::timer("db.insert_us");
        let id = id_of(&doc)?;
        let mut indexes = self.inner.indexes.write();
        let mut shard = self.inner.shards[shard_of(&id)].write();
        if shard.docs.contains_key(&id) {
            return Err(DbError::DuplicateId {
                collection: self.name.clone(),
                id,
            });
        }
        // Validate unique constraints before mutating anything.
        indexes.check_unique(&self.name, &id, &doc)?;
        // Write-ahead: the journal record lands before the in-memory
        // mutation, so a failed append leaves memory untouched and a
        // crash right after it replays to the same state.
        journal::append_if_attached(
            &self.journal,
            &JournalOp::Insert {
                collection: self.name.clone(),
                doc: doc.clone(),
            },
        )?;
        indexes.add_doc(&id, &doc);
        Arc::make_mut(&mut shard.docs).insert(id, doc);
        Ok(())
    }

    /// Inserts the document, or replaces any existing document with the
    /// same `_id` (upsert). Returns the replaced document, if any.
    /// Atomic: on a constraint failure the previous document (and its
    /// index entries) stay in place.
    pub fn upsert(&self, doc: Value) -> Result<Option<Value>, DbError> {
        let _timer = observe::timer("db.insert_us");
        let id = id_of(&doc)?;
        let mut indexes = self.inner.indexes.write();
        let mut shard = self.inner.shards[shard_of(&id)].write();
        let previous = shard.docs.get(&id).cloned();
        // The occupant being replaced is exempt from unique checks.
        indexes.check_unique(&self.name, &id, &doc)?;
        journal::append_if_attached(
            &self.journal,
            &JournalOp::Upsert {
                collection: self.name.clone(),
                doc: doc.clone(),
            },
        )?;
        if let Some(prev) = &previous {
            indexes.remove_doc(&id, prev);
        }
        indexes.add_doc(&id, &doc);
        Arc::make_mut(&mut shard.docs).insert(id, doc);
        Ok(previous)
    }

    /// Fetches a document by `_id`. Touches only the owning shard's
    /// lock — never contends with queries or writers on other shards.
    pub fn get(&self, id: &str) -> Option<Value> {
        self.inner.shards[shard_of(id)].read().docs.get(id).cloned()
    }

    /// Walks matching documents in `_id` order, planner-first: an
    /// applicable index probe yields candidate ids (counted on
    /// `db.query_planned_index`), a scan freezes the shard maps and
    /// merges them (counted on `db.query_scans`). The full filter is
    /// re-applied either way, so probes only need to over-approximate.
    fn for_each_matching(
        &self,
        filter: &Filter,
        f: &mut dyn FnMut(&str, &Value) -> ControlFlow<()>,
    ) {
        let indexes = self.inner.indexes.read();
        if let Some(ids) = planned_ids(&indexes, filter) {
            observe::count("db.query_planned_index", 1);
            for id in ids {
                let shard = self.inner.shards[shard_of(&id)].read();
                if let Some(doc) = shard.docs.get(&id) {
                    if filter.matches(doc) {
                        if let ControlFlow::Break(()) = f(&id, doc) {
                            return;
                        }
                    }
                }
            }
        } else {
            observe::count("db.query_scans", 1);
            let shards = self.capture_shards();
            drop(indexes);
            let mut entries: Vec<(&String, &Value)> =
                shards.iter().flat_map(|shard| shard.iter()).collect();
            entries.sort_by(|a, b| a.0.cmp(b.0));
            for (id, doc) in entries {
                if filter.matches(doc) {
                    if let ControlFlow::Break(()) = f(id, doc) {
                        return;
                    }
                }
            }
        }
    }

    /// Returns all documents matching `filter`, ordered by `_id`.
    pub fn find(&self, filter: &Filter) -> Vec<Value> {
        let _span = observe::span(|| "db.query".to_owned());
        let _timer = observe::timer("db.query_us");
        let mut out = Vec::new();
        self.for_each_matching(filter, &mut |_, doc| {
            out.push(doc.clone());
            ControlFlow::Continue(())
        });
        out
    }

    /// Returns the first matching document (in `_id` order).
    pub fn find_one(&self, filter: &Filter) -> Option<Value> {
        let _span = observe::span(|| "db.query".to_owned());
        let _timer = observe::timer("db.query_us");
        let mut out = None;
        self.for_each_matching(filter, &mut |_, doc| {
            out = Some(doc.clone());
            ControlFlow::Break(())
        });
        out
    }

    /// Returns matching documents sorted by a field path.
    ///
    /// With an [`IndexKind::Ordered`] index on `sort_path` the result
    /// is read off the index (documents without the field join the
    /// `Null` block); ties between compare-equal keys order by rendered
    /// key, then `_id`. Without one, this scans and sorts (missing
    /// fields sort as `Null`, ties keep `_id` order).
    pub fn find_sorted(&self, filter: &Filter, sort_path: &str, order: SortOrder) -> Vec<Value> {
        let indexes = self.inner.indexes.read();
        let ordered = indexes
            .get(sort_path)
            .filter(|ix| ix.spec.kind == IndexKind::Ordered)
            .is_some();
        if !ordered {
            drop(indexes);
            let mut results = self.find(filter);
            sort_docs(&mut results, sort_path, order);
            return results;
        }
        let _span = observe::span(|| "db.query".to_owned());
        let _timer = observe::timer("db.query_us");
        observe::count("db.query_planned_index", 1);
        let shards = self.capture_shards();
        let index = indexes.get(sort_path).expect("checked above");
        let IndexData::Ordered(map) = &index.data else {
            unreachable!("ordered index carries ordered data");
        };
        // The Null block merges explicitly-null entries (indexed) with
        // documents missing the field entirely (not indexed), in `_id`
        // order — matching the scan path's sort semantics.
        let mut null_block: Vec<String> = shards
            .iter()
            .flat_map(|shard| shard.iter())
            .filter(|(_, doc)| doc.at(sort_path).is_none())
            .map(|(id, _)| id.clone())
            .collect();
        let mut rest: Vec<String> = Vec::new();
        let keys: Box<dyn Iterator<Item = (&OrdKey, &BTreeSet<String>)>> = match order {
            SortOrder::Ascending => Box::new(map.iter()),
            SortOrder::Descending => Box::new(map.iter().rev()),
        };
        for (key, ids) in keys {
            if key.value.is_null() {
                null_block.extend(ids.iter().cloned());
            } else {
                rest.extend(ids.iter().cloned());
            }
        }
        null_block.sort();
        let sequence = match order {
            SortOrder::Ascending => null_block.into_iter().chain(rest),
            SortOrder::Descending => rest.into_iter().chain(null_block),
        };
        let mut out = Vec::new();
        for id in sequence {
            if let Some(doc) = shards[shard_of(&id)].get(&id) {
                if filter.matches(doc) {
                    out.push(doc.clone());
                }
            }
        }
        out
    }

    /// Counts documents matching `filter`.
    pub fn count(&self, filter: &Filter) -> usize {
        let _span = observe::span(|| "db.query".to_owned());
        let _timer = observe::timer("db.query_us");
        let mut n = 0;
        self.for_each_matching(filter, &mut |_, _| {
            n += 1;
            ControlFlow::Continue(())
        });
        n
    }

    /// Deletes the document with the given `_id`, returning it.
    ///
    /// On an attached database the deletion is journaled; an append
    /// failure (counted on `db.journal_append_errors`) does not abort
    /// the in-memory delete — durability of that record then waits for
    /// the next checkpoint.
    pub fn delete(&self, id: &str) -> Option<Value> {
        let mut indexes = self.inner.indexes.write();
        let mut shard = self.inner.shards[shard_of(id)].write();
        if !shard.docs.contains_key(id) {
            return None;
        }
        journal::append_best_effort(
            &self.journal,
            &JournalOp::Delete {
                collection: self.name.clone(),
                id: id.to_owned(),
            },
        );
        let doc = Arc::make_mut(&mut shard.docs).remove(id)?;
        indexes.remove_doc(id, &doc);
        Some(doc)
    }

    /// Deletes every matching document, returning how many were removed.
    pub fn delete_many(&self, filter: &Filter) -> usize {
        let ids: Vec<String> = {
            let mut ids = Vec::new();
            self.for_each_matching(filter, &mut |id, _| {
                ids.push(id.to_owned());
                ControlFlow::Continue(())
            });
            ids
        };
        let mut removed = 0;
        for id in ids {
            if self.delete(&id).is_some() {
                removed += 1;
            }
        }
        removed
    }

    /// Applies `update` to every matching document (the `_id` field is
    /// protected). Returns how many documents changed. The whole batch
    /// runs under the index lock, so no writer interleaves, and unique
    /// indexes are re-enforced at commit: every rewritten document is
    /// checked (including against the other rewrites in the batch)
    /// before anything is journaled or stored, so a rejected batch
    /// leaves the collection exactly as it was.
    ///
    /// # Errors
    ///
    /// [`DbError::UniqueViolation`] when any rewritten document would
    /// collide with an existing document or another rewrite on a
    /// declared unique index; the whole batch is rejected and no state
    /// changes.
    pub fn update_many(
        &self,
        filter: &Filter,
        update: impl Fn(&mut Value),
    ) -> Result<usize, DbError> {
        let mut indexes = self.inner.indexes.write();
        let ids = {
            let mut ids = Vec::new();
            match planned_ids(&indexes, filter) {
                Some(candidates) => {
                    observe::count("db.query_planned_index", 1);
                    for id in candidates {
                        let shard = self.inner.shards[shard_of(&id)].read();
                        if shard.docs.get(&id).is_some_and(|doc| filter.matches(doc)) {
                            ids.push(id);
                        }
                    }
                }
                None => {
                    observe::count("db.query_scans", 1);
                    let mut entries: Vec<(String, bool)> = Vec::new();
                    for shard in &self.inner.shards {
                        for (id, doc) in shard.read().docs.iter() {
                            entries.push((id.clone(), filter.matches(doc)));
                        }
                    }
                    entries.sort();
                    ids.extend(
                        entries
                            .into_iter()
                            .filter(|(_, matched)| *matched)
                            .map(|(id, _)| id),
                    );
                }
            }
            ids
        };
        // Stage every rewrite first — nothing is journaled or stored
        // until the whole batch validates.
        let mut staged: Vec<(String, Value, Value)> = Vec::with_capacity(ids.len());
        for id in &ids {
            let shard = self.inner.shards[shard_of(id)].read();
            let Some(old) = shard.docs.get(id).cloned() else {
                continue;
            };
            let mut new = old.clone();
            update(&mut new);
            new.set_at("_id", Value::Str(id.clone()));
            staged.push((id.clone(), old, new));
        }
        // Trial-apply against the index state we hold exclusively:
        // retract every old document, then admit the rewrites one by
        // one so batch-internal collisions are caught too. On a
        // violation, undo the trial — the caller sees unchanged state.
        for (id, old, _) in &staged {
            indexes.remove_doc(id, old);
        }
        for (admitted, (id, _, new)) in staged.iter().enumerate() {
            if let Err(err) = indexes.check_unique(&self.name, id, new) {
                for (id, _, new) in &staged[..admitted] {
                    indexes.remove_doc(id, new);
                }
                for (id, old, _) in &staged {
                    indexes.add_doc(id, old);
                }
                return Err(err);
            }
            indexes.add_doc(id, new);
        }
        let changed = staged.len();
        for (id, _, new) in staged {
            let mut shard = self.inner.shards[shard_of(&id)].write();
            journal::append_best_effort(
                &self.journal,
                &JournalOp::Upsert {
                    collection: self.name.clone(),
                    doc: new.clone(),
                },
            );
            Arc::make_mut(&mut shard.docs).insert(id, new);
        }
        Ok(changed)
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|shard| shard.read().docs.len())
            .sum()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.inner
            .shards
            .iter()
            .all(|shard| shard.read().docs.is_empty())
    }

    /// Snapshot of all documents (ordered by `_id`).
    pub fn all(&self) -> Vec<Value> {
        self.snapshot().all()
    }

    /// Projects one field from every matching document.
    pub fn distinct(&self, filter: &Filter, path: &str) -> Vec<Value> {
        let mut seen: HashSet<String> = HashSet::new();
        let mut out = Vec::new();
        self.for_each_matching(filter, &mut |_, doc| {
            if let Some(v) = doc.at(path) {
                let key = crate::json::to_json(v);
                if seen.insert(key) {
                    out.push(v.clone());
                }
            }
            ControlFlow::Continue(())
        });
        out
    }
}

/// Resolves the best applicable probe into sorted, deduplicated
/// candidate ids. `None` means no probe applies and the caller scans.
fn planned_ids(indexes: &IndexSet, filter: &Filter) -> Option<Vec<String>> {
    for probe in filter.probes() {
        let ids: Option<Vec<String>> = match &probe {
            Probe::Ids(ids) => Some(ids.iter().map(|id| (*id).to_owned()).collect()),
            Probe::Eq { path, value } => indexes.get(path).map(|ix| ix.probe_eq(value)),
            Probe::Elem { path, value } => indexes.get(path).and_then(|ix| ix.probe_elem(value)),
            Probe::In { path, values } => indexes.get(path).map(|ix| {
                let mut ids: Vec<String> = Vec::new();
                for value in *values {
                    ids.extend(ix.probe_eq(value));
                }
                ids
            }),
            Probe::Range { path, lower, upper } => indexes
                .get(path)
                .and_then(|ix| ix.probe_range(*lower, *upper)),
        };
        if let Some(mut ids) = ids {
            ids.sort();
            ids.dedup();
            return Some(ids);
        }
    }
    None
}

fn id_of(doc: &Value) -> Result<String, DbError> {
    let map = doc.as_map().ok_or_else(|| DbError::InvalidDocument {
        reason: "document must be a map".into(),
    })?;
    map.get("_id")
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| DbError::InvalidDocument {
            reason: "document must carry a string `_id`".into(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(id: &str, extra: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        let mut map: Vec<(String, Value)> = vec![("_id".into(), Value::from(id))];
        map.extend(extra.into_iter().map(|(k, v)| (k.to_owned(), v)));
        map.into_iter().collect()
    }

    #[test]
    fn insert_get_delete_round_trip() {
        let c = Collection::new("runs");
        c.insert(doc("a", [("n", Value::from(1i64))])).unwrap();
        assert_eq!(c.get("a").unwrap().at("n").and_then(Value::as_int), Some(1));
        assert_eq!(c.len(), 1);
        assert!(c.delete("a").is_some());
        assert!(c.get("a").is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn rejects_duplicate_ids_and_bad_documents() {
        let c = Collection::new("runs");
        c.insert(doc("a", [])).unwrap();
        assert!(matches!(
            c.insert(doc("a", [])),
            Err(DbError::DuplicateId { .. })
        ));
        assert!(matches!(
            c.insert(Value::from(3i64)),
            Err(DbError::InvalidDocument { .. })
        ));
        assert!(matches!(
            c.insert(Value::map([("x", Value::from(1i64))])),
            Err(DbError::InvalidDocument { .. })
        ));
    }

    #[test]
    fn unique_constraint_enforced() {
        let c = Collection::new("artifacts");
        c.ensure_unique("hash").unwrap();
        c.insert(doc("a", [("hash", Value::from("h1"))])).unwrap();
        let err = c
            .insert(doc("b", [("hash", Value::from("h1"))]))
            .unwrap_err();
        assert!(matches!(err, DbError::UniqueViolation { .. }));
        // Null / missing values are exempt.
        c.insert(doc("c", [("hash", Value::Null)])).unwrap();
        c.insert(doc("d", [])).unwrap();
        // Deleting frees the key.
        c.delete("a");
        c.insert(doc("e", [("hash", Value::from("h1"))])).unwrap();
    }

    #[test]
    fn ensure_unique_rejects_preexisting_collisions() {
        let c = Collection::new("x");
        c.insert(doc("a", [("k", Value::from(1i64))])).unwrap();
        c.insert(doc("b", [("k", Value::from(1i64))])).unwrap();
        assert!(c.ensure_unique("k").is_err());
        // Constraint was not installed.
        c.insert(doc("c", [("k", Value::from(1i64))])).unwrap();
    }

    #[test]
    fn upsert_replaces_and_restores_on_conflict() {
        let c = Collection::new("x");
        c.ensure_unique("k").unwrap();
        c.insert(doc("a", [("k", Value::from("ka"))])).unwrap();
        c.insert(doc("b", [("k", Value::from("kb"))])).unwrap();
        // Plain replace.
        let old = c.upsert(doc("a", [("k", Value::from("ka2"))])).unwrap();
        assert_eq!(old.unwrap().at("k").and_then(Value::as_str), Some("ka"));
        // Conflicting upsert fails and leaves the old doc in place.
        let err = c.upsert(doc("a", [("k", Value::from("kb"))])).unwrap_err();
        assert!(matches!(err, DbError::UniqueViolation { .. }));
        assert_eq!(
            c.get("a").unwrap().at("k").and_then(Value::as_str),
            Some("ka2")
        );
        assert!(c.verify_indexes().is_empty());
    }

    #[test]
    fn find_sort_count_distinct() {
        let c = Collection::new("x");
        for (id, app, t) in [("1", "dedup", 5i64), ("2", "vips", 3), ("3", "dedup", 9)] {
            c.insert(doc(id, [("app", Value::from(app)), ("t", Value::from(t))]))
                .unwrap();
        }
        assert_eq!(c.count(&Filter::eq("app", "dedup")), 2);
        let sorted = c.find_sorted(&Filter::All, "t", SortOrder::Descending);
        let ts: Vec<i64> = sorted
            .iter()
            .filter_map(|d| d.at("t").and_then(Value::as_int))
            .collect();
        assert_eq!(ts, vec![9, 5, 3]);
        let apps = c.distinct(&Filter::All, "app");
        assert_eq!(apps.len(), 2);
        assert!(c.find_one(&Filter::eq("app", "vips")).is_some());
    }

    #[test]
    fn update_many_reindexes_and_protects_id() {
        let c = Collection::new("x");
        c.ensure_unique("k").unwrap();
        c.insert(doc(
            "a",
            [("k", Value::from("v1")), ("status", Value::from("running"))],
        ))
        .unwrap();
        let n = c
            .update_many(&Filter::eq("status", "running"), |d| {
                d.set_at("status", Value::from("done"));
                d.set_at("k", Value::from("v2"));
                d.set_at("_id", Value::from("hacked"));
            })
            .unwrap();
        assert_eq!(n, 1);
        let got = c.get("a").expect("_id update must be ignored");
        assert_eq!(got.at("status").and_then(Value::as_str), Some("done"));
        // Old key freed, new key owned.
        c.insert(doc("b", [("k", Value::from("v1"))])).unwrap();
        assert!(c.insert(doc("c", [("k", Value::from("v2"))])).is_err());
    }

    #[test]
    fn update_many_rejects_unique_violations_leaving_state_unchanged() {
        let c = Collection::new("x");
        c.ensure_unique("k").unwrap();
        c.insert(doc(
            "a",
            [("k", Value::from("v1")), ("g", Value::from(1i64))],
        ))
        .unwrap();
        c.insert(doc(
            "b",
            [("k", Value::from("v2")), ("g", Value::from(1i64))],
        ))
        .unwrap();
        c.insert(doc(
            "c",
            [("k", Value::from("v3")), ("g", Value::from(2i64))],
        ))
        .unwrap();
        // Collision with a document outside the batch: rejected whole.
        let err = c
            .update_many(&Filter::eq("g", 1i64), |d| {
                d.set_at("k", Value::from("v3"));
                d.set_at("touched", Value::from(true));
            })
            .unwrap_err();
        assert!(matches!(err, DbError::UniqueViolation { .. }));
        // Batch-internal collision: both rewrites target the same key.
        let err = c
            .update_many(&Filter::eq("g", 1i64), |d| {
                d.set_at("k", Value::from("fresh"));
                d.set_at("touched", Value::from(true));
            })
            .unwrap_err();
        assert!(matches!(err, DbError::UniqueViolation { .. }));
        // Nothing changed: no document was touched, every original key
        // is still owned, and the index still serves the old keys.
        for (id, key) in [("a", "v1"), ("b", "v2"), ("c", "v3")] {
            let got = c.get(id).unwrap();
            assert!(got.at("touched").is_none(), "{id} was rewritten");
            assert_eq!(got.at("k").and_then(Value::as_str), Some(key));
            assert!(c.insert(doc("dup", [("k", Value::from(key))])).is_err());
        }
        // Swapping values within the batch is legal: the trial retracts
        // the old keys before admitting the rewrites.
        let n = c
            .update_many(&Filter::eq("g", 1i64), |d| {
                let next = match d.at("k").and_then(Value::as_str) {
                    Some("v1") => "v2",
                    _ => "v1",
                };
                d.set_at("k", Value::from(next));
            })
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(
            c.get("a").unwrap().at("k").and_then(Value::as_str),
            Some("v2")
        );
        assert_eq!(
            c.get("b").unwrap().at("k").and_then(Value::as_str),
            Some("v1")
        );
    }

    #[test]
    fn delete_many_by_filter() {
        let c = Collection::new("x");
        for i in 0..10i64 {
            c.insert(doc(&i.to_string(), [("even", Value::from(i % 2 == 0))]))
                .unwrap();
        }
        assert_eq!(c.delete_many(&Filter::eq("even", true)), 5);
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn clones_share_storage() {
        let c = Collection::new("x");
        let c2 = c.clone();
        c.insert(doc("a", [])).unwrap();
        assert_eq!(c2.len(), 1);
    }

    #[test]
    fn snapshot_is_isolated_from_writers() {
        let c = Collection::new("x");
        for i in 0..20i64 {
            c.insert(doc(&format!("d{i}"), [("n", Value::from(i))]))
                .unwrap();
        }
        let snap = c.snapshot();
        c.insert(doc("later", [])).unwrap();
        c.delete("d3");
        c.update_many(&Filter::All, |d| {
            d.set_at("n", Value::from(-1i64));
        })
        .unwrap();
        assert_eq!(snap.len(), 20);
        assert!(snap.get("later").is_none());
        assert_eq!(
            snap.get("d3").unwrap().at("n").and_then(Value::as_int),
            Some(3)
        );
        assert_eq!(snap.count(&Filter::eq("n", -1i64)), 0);
        assert_eq!(c.len(), 20);
        // Snapshot iteration stays in _id order.
        let ids: Vec<String> = snap
            .all()
            .iter()
            .map(|d| d.at("_id").and_then(Value::as_str).unwrap().to_owned())
            .collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn ensure_index_is_idempotent_and_rejects_conflicts() {
        let c = Collection::new("x");
        c.ensure_index(IndexSpec::hash("k")).unwrap();
        c.ensure_index(IndexSpec::hash("k")).unwrap();
        assert!(matches!(
            c.ensure_index(IndexSpec::ordered("k")),
            Err(DbError::IndexConflict { .. })
        ));
        assert!(matches!(
            c.ensure_index(IndexSpec::hash("k").unique()),
            Err(DbError::IndexConflict { .. })
        ));
        assert_eq!(c.index_specs(), vec![IndexSpec::hash("k")]);
    }

    /// Every filter shape must return identical results through the
    /// planner (indexed collection) and the scan (no indexes).
    #[test]
    fn planner_and_scan_agree() {
        let indexed = Collection::new("i");
        let plain = Collection::new("p");
        indexed.ensure_index(IndexSpec::hash("app")).unwrap();
        indexed.ensure_index(IndexSpec::ordered("t")).unwrap();
        indexed.ensure_index(IndexSpec::hash("tags")).unwrap();
        let docs: Vec<Value> = (0..40i64)
            .map(|i| {
                let mut d = doc(
                    &format!("d{i:02}"),
                    [
                        (
                            "app",
                            Value::from(["dedup", "vips", "x264"][i as usize % 3]),
                        ),
                        ("tags", Value::array([Value::from(format!("g{}", i % 4))])),
                    ],
                );
                // A few docs with null / missing / odd-typed sort fields.
                match i % 5 {
                    0 => (),
                    1 => {
                        d.set_at("t", Value::Null);
                    }
                    2 => {
                        d.set_at("t", Value::from(i));
                    }
                    3 => {
                        d.set_at("t", Value::from(i as f64 + 0.5));
                    }
                    _ => {
                        d.set_at("t", Value::from(format!("s{i}")));
                    }
                }
                d
            })
            .collect();
        for d in &docs {
            indexed.insert(d.clone()).unwrap();
            plain.insert(d.clone()).unwrap();
        }
        let filters = [
            Filter::All,
            Filter::eq("app", "dedup"),
            Filter::eq("app", "nope"),
            Filter::eq("_id", "d07"),
            Filter::eq("t", Value::Null),
            Filter::gt("t", 10i64),
            Filter::gte("t", 12.5).and(Filter::lt("t", 30i64)),
            Filter::lte("t", 20i64),
            Filter::lt("t", 0i64),
            Filter::elem_match("tags", "g2"),
            Filter::any_of("app", ["vips", "x264"]),
            Filter::any_of("_id", ["d01", "d02", "zzz"]),
            Filter::eq("app", "dedup").and(Filter::gt("t", 5i64)),
            Filter::eq("app", "dedup").or(Filter::eq("app", "vips")),
            Filter::eq("app", "dedup").not(),
            Filter::gt("t", "a"),
        ];
        for filter in &filters {
            assert_eq!(
                indexed.find(filter),
                plain.find(filter),
                "filter {filter:?} diverged"
            );
            assert_eq!(indexed.count(filter), plain.count(filter));
            assert_eq!(indexed.find_one(filter), plain.find_one(filter));
        }
        assert!(indexed.verify_indexes().is_empty());
    }

    #[test]
    fn ordered_index_drives_find_sorted() {
        let c = Collection::new("x");
        c.ensure_index(IndexSpec::ordered("t")).unwrap();
        c.insert(doc("a", [("t", Value::from(5i64))])).unwrap();
        c.insert(doc("b", [("t", Value::from(3i64))])).unwrap();
        c.insert(doc("c", [("t", Value::Null)])).unwrap();
        c.insert(doc("d", [])).unwrap();
        c.insert(doc("e", [("t", Value::from(9i64))])).unwrap();
        let ids = |docs: Vec<Value>| -> Vec<String> {
            docs.iter()
                .map(|d| d.at("_id").and_then(Value::as_str).unwrap().to_owned())
                .collect()
        };
        assert_eq!(
            ids(c.find_sorted(&Filter::All, "t", SortOrder::Ascending)),
            vec!["c", "d", "b", "a", "e"]
        );
        assert_eq!(
            ids(c.find_sorted(&Filter::All, "t", SortOrder::Descending)),
            vec!["e", "a", "b", "c", "d"]
        );
        assert_eq!(
            ids(c.find_sorted(&Filter::gt("t", 3i64), "t", SortOrder::Ascending)),
            vec!["a", "e"]
        );
    }

    #[test]
    fn index_entries_expose_multikey_arrays() {
        let c = Collection::new("runs");
        c.ensure_index(IndexSpec::hash("inputs")).unwrap();
        c.insert(doc(
            "r1",
            [(
                "inputs",
                Value::array([Value::from("art-a"), Value::from("art-b")]),
            )],
        ))
        .unwrap();
        c.insert(doc(
            "r2",
            [("inputs", Value::array([Value::from("art-b")]))],
        ))
        .unwrap();
        let entries = c.index_entries("inputs").unwrap();
        let by_key: BTreeMap<String, Vec<String>> = entries
            .into_iter()
            .map(|(k, ids)| (crate::json::to_json(&k), ids))
            .collect();
        assert_eq!(by_key["\"art-a\""], vec!["r1"]);
        assert_eq!(by_key["\"art-b\""], vec!["r1", "r2"]);
        assert!(by_key.contains_key("[\"art-a\",\"art-b\"]"));
        assert!(c.index_entries("nope").is_none());
        // The multikey index serves elem_match probes.
        assert_eq!(c.find(&Filter::elem_match("inputs", "art-b")).len(), 2);
    }

    #[test]
    fn verify_indexes_detects_injected_divergence() {
        let c = Collection::new("x");
        c.ensure_index(IndexSpec::hash("hash")).unwrap();
        c.insert(doc("a", [("hash", Value::from("h1"))])).unwrap();
        assert!(c.verify_indexes().is_empty());
        c.inject_index_entry("hash", "\"ghost\"", "no-such-doc");
        let problems = c.verify_indexes();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].detail.contains("missing document"));
        c.inject_index_entry("hash", "\"wrong\"", "a");
        let problems = c.verify_indexes();
        assert_eq!(problems.len(), 2);
        assert!(problems.iter().any(|p| p
            .detail
            .contains("does not match the document's rendered key")));
    }

    #[test]
    fn index_state_matches_scratch_rebuild() {
        let c = Collection::new("x");
        c.ensure_index(IndexSpec::hash("app")).unwrap();
        c.ensure_index(IndexSpec::ordered("t")).unwrap();
        for i in 0..25i64 {
            c.insert(doc(
                &format!("d{i}"),
                [
                    ("app", Value::from(["a", "b"][i as usize % 2])),
                    ("t", Value::from(i % 7)),
                ],
            ))
            .unwrap();
        }
        c.delete("d3");
        c.update_many(&Filter::eq("app", "a"), |d| {
            d.set_at("t", Value::from(99i64));
        })
        .unwrap();
        let rebuilt = Collection::new("x");
        // Declare in reverse order: index_state sorts by path.
        rebuilt.ensure_index(IndexSpec::ordered("t")).unwrap();
        rebuilt.ensure_index(IndexSpec::hash("app")).unwrap();
        for d in c.all() {
            rebuilt.insert(d).unwrap();
        }
        assert_eq!(
            crate::json::to_json(&c.index_state()),
            crate::json::to_json(&rebuilt.index_state())
        );
    }
}
