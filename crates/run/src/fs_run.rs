//! Full-system run objects (the paper's `createFSRun`).

use crate::error::RunError;
use crate::status::RunStatus;
use simart_artifact::hash::Md5;
use simart_artifact::{ArtifactId, ArtifactKind, ArtifactRegistry, Uuid};
use std::time::Duration;

/// A provenance-complete full-system run description.
///
/// Mirrors the parameters of the paper's `createFSRun` (Figure 4): the
/// simulator binary and repository, the run script, the Linux kernel,
/// the disk image — each as both a host location and a registered
/// artifact — plus free-form run-script parameters and a timeout.
#[derive(Debug, Clone, PartialEq)]
pub struct FsRun {
    id: Uuid,
    hash: String,
    simulator: ArtifactId,
    simulator_path: String,
    simulator_repo: ArtifactId,
    run_script: ArtifactId,
    run_script_path: String,
    kernel: ArtifactId,
    kernel_path: String,
    disk_image: ArtifactId,
    disk_image_path: String,
    output_dir: String,
    params: Vec<String>,
    timeout: Duration,
    status: RunStatus,
}

impl FsRun {
    /// Starts building a full-system run, validating against `registry`.
    pub fn create(registry: &ArtifactRegistry) -> FsRunBuilder<'_> {
        FsRunBuilder {
            registry,
            simulator: None,
            simulator_path: String::new(),
            simulator_repo: None,
            run_script: None,
            run_script_path: String::new(),
            kernel: None,
            kernel_path: String::new(),
            disk_image: None,
            disk_image_path: String::new(),
            output_dir: "results".to_owned(),
            params: Vec::new(),
            timeout: Duration::from_secs(15 * 60),
        }
    }

    /// The run's unique id (derived from its content hash).
    pub fn id(&self) -> Uuid {
        self.id
    }

    /// The run hash: fingerprint of every input artifact hash plus the
    /// parameters. Identical experiments produce identical hashes.
    pub fn run_hash(&self) -> &str {
        &self.hash
    }

    /// Simulator binary artifact.
    pub fn simulator(&self) -> ArtifactId {
        self.simulator
    }

    /// Simulator repository artifact.
    pub fn simulator_repo(&self) -> ArtifactId {
        self.simulator_repo
    }

    /// Run-script artifact.
    pub fn run_script(&self) -> ArtifactId {
        self.run_script
    }

    /// Kernel artifact.
    pub fn kernel(&self) -> ArtifactId {
        self.kernel
    }

    /// Disk-image artifact.
    pub fn disk_image(&self) -> ArtifactId {
        self.disk_image
    }

    /// Host output directory.
    pub fn output_dir(&self) -> &str {
        &self.output_dir
    }

    /// Run-script parameters.
    pub fn params(&self) -> &[String] {
        &self.params
    }

    /// Timeout after which the job is terminated.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// Current lifecycle status.
    pub fn status(&self) -> RunStatus {
        self.status
    }

    /// Every input artifact id, in a fixed order.
    pub fn input_artifacts(&self) -> [ArtifactId; 5] {
        [
            self.simulator,
            self.simulator_repo,
            self.run_script,
            self.kernel,
            self.disk_image,
        ]
    }

    /// Advances the lifecycle.
    ///
    /// # Errors
    ///
    /// Returns the run unchanged as `Err` when the transition is
    /// illegal (e.g. `Done -> Running`).
    pub fn transition(&mut self, next: RunStatus) -> Result<(), RunStatus> {
        if self.status.can_transition_to(next) {
            self.status = next;
            Ok(())
        } else {
            Err(self.status)
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_stored_parts(
        id: Uuid,
        hash: String,
        components: [ArtifactId; 5],
        paths: [String; 4],
        output_dir: String,
        params: Vec<String>,
        timeout: Duration,
        status: RunStatus,
    ) -> FsRun {
        let [simulator, simulator_repo, run_script, kernel, disk_image] = components;
        let [simulator_path, run_script_path, kernel_path, disk_image_path] = paths;
        FsRun {
            id,
            hash,
            simulator,
            simulator_path,
            simulator_repo,
            run_script,
            run_script_path,
            kernel,
            kernel_path,
            disk_image,
            disk_image_path,
            output_dir,
            params,
            timeout,
            status,
        }
    }

    pub(crate) fn paths(&self) -> [&str; 4] {
        [
            &self.simulator_path,
            &self.run_script_path,
            &self.kernel_path,
            &self.disk_image_path,
        ]
    }
}

/// Builder for [`FsRun`], validating artifact references as they are
/// supplied.
#[derive(Debug)]
pub struct FsRunBuilder<'a> {
    registry: &'a ArtifactRegistry,
    simulator: Option<ArtifactId>,
    simulator_path: String,
    simulator_repo: Option<ArtifactId>,
    run_script: Option<ArtifactId>,
    run_script_path: String,
    kernel: Option<ArtifactId>,
    kernel_path: String,
    disk_image: Option<ArtifactId>,
    disk_image_path: String,
    output_dir: String,
    params: Vec<String>,
    timeout: Duration,
}

impl<'a> FsRunBuilder<'a> {
    /// Sets the simulator binary artifact and its host path.
    pub fn simulator(mut self, id: ArtifactId, path: impl Into<String>) -> Self {
        self.simulator = Some(id);
        self.simulator_path = path.into();
        self
    }

    /// Sets the simulator source-repository artifact.
    pub fn simulator_repo(mut self, id: ArtifactId) -> Self {
        self.simulator_repo = Some(id);
        self
    }

    /// Sets the run-script artifact and its host path.
    pub fn run_script(mut self, id: ArtifactId, path: impl Into<String>) -> Self {
        self.run_script = Some(id);
        self.run_script_path = path.into();
        self
    }

    /// Sets the kernel artifact and its host path.
    pub fn kernel(mut self, id: ArtifactId, path: impl Into<String>) -> Self {
        self.kernel = Some(id);
        self.kernel_path = path.into();
        self
    }

    /// Sets the disk-image artifact and its host path.
    pub fn disk_image(mut self, id: ArtifactId, path: impl Into<String>) -> Self {
        self.disk_image = Some(id);
        self.disk_image_path = path.into();
        self
    }

    /// Sets the output directory.
    pub fn output_dir(mut self, dir: impl Into<String>) -> Self {
        self.output_dir = dir.into();
        self
    }

    /// Appends one run-script parameter.
    pub fn param(mut self, param: impl Into<String>) -> Self {
        self.params.push(param.into());
        self
    }

    /// Appends several run-script parameters.
    pub fn params(mut self, params: impl IntoIterator<Item = impl Into<String>>) -> Self {
        self.params.extend(params.into_iter().map(Into::into));
        self
    }

    /// Sets the timeout in seconds (default 15 minutes, as in Figure 4).
    pub fn timeout_seconds(mut self, seconds: u64) -> Self {
        self.timeout = Duration::from_secs(seconds);
        self
    }

    /// Finalizes the run, computing its identity hash.
    ///
    /// # Errors
    ///
    /// * [`RunError::MissingComponent`] — a required artifact was not
    ///   supplied;
    /// * [`RunError::UnknownArtifact`] — an id is not in the registry;
    /// * [`RunError::WrongKind`] — an artifact has an unexpected kind.
    pub fn build(self) -> Result<FsRun, RunError> {
        let resolve = |id: Option<ArtifactId>,
                       component: &'static str,
                       accepted: &[ArtifactKind]|
         -> Result<ArtifactId, RunError> {
            let id = id.ok_or(RunError::MissingComponent { component })?;
            let artifact = self
                .registry
                .get(id)
                .ok_or(RunError::UnknownArtifact { id, component })?;
            if !accepted.contains(artifact.kind()) {
                return Err(RunError::WrongKind {
                    component,
                    found: artifact.kind().to_string(),
                });
            }
            Ok(id)
        };

        let simulator = resolve(self.simulator, "simulator", &[ArtifactKind::Binary])?;
        let simulator_repo = resolve(
            self.simulator_repo,
            "simulator_repo",
            &[ArtifactKind::GitRepo],
        )?;
        let run_script = resolve(
            self.run_script,
            "run_script",
            &[ArtifactKind::RunScript, ArtifactKind::GitRepo],
        )?;
        let kernel = resolve(self.kernel, "kernel", &[ArtifactKind::Kernel])?;
        let disk_image = resolve(self.disk_image, "disk_image", &[ArtifactKind::DiskImage])?;

        // Run hash: input artifact hashes + parameters. Host paths and
        // output directory are deliberately excluded — they do not
        // change the experiment, only where it lives.
        let mut hasher = Md5::new();
        for id in [simulator, simulator_repo, run_script, kernel, disk_image] {
            let artifact = self.registry.get(id).expect("resolved above");
            hasher.update(artifact.hash().as_bytes());
            hasher.update(b"/");
        }
        for param in &self.params {
            hasher.update(param.as_bytes());
            hasher.update(b"\x1f");
        }
        let hash = hasher.finalize().to_hex();
        let id = Uuid::new_v3("simart-run", &hash);

        Ok(FsRun {
            id,
            hash,
            simulator,
            simulator_path: self.simulator_path,
            simulator_repo,
            run_script,
            run_script_path: self.run_script_path,
            kernel,
            kernel_path: self.kernel_path,
            disk_image,
            disk_image_path: self.disk_image_path,
            output_dir: self.output_dir,
            params: self.params,
            timeout: self.timeout,
            status: RunStatus::Created,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simart_artifact::{Artifact, ContentSource};

    pub(crate) fn registry_with_components() -> (ArtifactRegistry, [ArtifactId; 5]) {
        let mut registry = ArtifactRegistry::new();
        let repo = registry
            .register(
                Artifact::builder("sim-repo", ArtifactKind::GitRepo)
                    .documentation("src")
                    .content(ContentSource::git("https://x", "rev1")),
            )
            .unwrap();
        let binary = registry
            .register(
                Artifact::builder("sim", ArtifactKind::Binary)
                    .documentation("bin")
                    .content(ContentSource::bytes(b"elf".to_vec()))
                    .input(repo.id()),
            )
            .unwrap();
        let script = registry
            .register(
                Artifact::builder("script", ArtifactKind::RunScript)
                    .documentation("cfg")
                    .content(ContentSource::bytes(b"py".to_vec())),
            )
            .unwrap();
        let kernel = registry
            .register(
                Artifact::builder("vmlinux", ArtifactKind::Kernel)
                    .documentation("kernel")
                    .content(ContentSource::bytes(b"krn".to_vec())),
            )
            .unwrap();
        let disk = registry
            .register(
                Artifact::builder("disk", ArtifactKind::DiskImage)
                    .documentation("img")
                    .content(ContentSource::bytes(b"img".to_vec())),
            )
            .unwrap();
        let ids = [binary.id(), repo.id(), script.id(), kernel.id(), disk.id()];
        (registry, ids)
    }

    pub(crate) fn sample_run(registry: &ArtifactRegistry, ids: [ArtifactId; 5]) -> FsRun {
        let [binary, repo, script, kernel, disk] = ids;
        FsRun::create(registry)
            .simulator(binary, "build/sim.opt")
            .simulator_repo(repo)
            .run_script(script, "configs/run.py")
            .kernel(kernel, "vmlinux")
            .disk_image(disk, "disk.img")
            .param("blackscholes")
            .param("8")
            .build()
            .unwrap()
    }

    #[test]
    fn identical_inputs_produce_identical_identity() {
        let (registry, ids) = registry_with_components();
        let a = sample_run(&registry, ids);
        let b = sample_run(&registry, ids);
        assert_eq!(a.run_hash(), b.run_hash());
        assert_eq!(a.id(), b.id());
    }

    #[test]
    fn parameters_change_identity_but_paths_do_not() {
        let (registry, ids) = registry_with_components();
        let [binary, repo, script, kernel, disk] = ids;
        let base = sample_run(&registry, ids);

        let different_param = FsRun::create(&registry)
            .simulator(binary, "build/sim.opt")
            .simulator_repo(repo)
            .run_script(script, "configs/run.py")
            .kernel(kernel, "vmlinux")
            .disk_image(disk, "disk.img")
            .param("blackscholes")
            .param("2")
            .build()
            .unwrap();
        assert_ne!(base.run_hash(), different_param.run_hash());

        let different_path = FsRun::create(&registry)
            .simulator(binary, "elsewhere/sim.opt")
            .simulator_repo(repo)
            .run_script(script, "other/run.py")
            .kernel(kernel, "boot/vmlinux")
            .disk_image(disk, "images/disk.img")
            .output_dir("scratch")
            .param("blackscholes")
            .param("8")
            .build()
            .unwrap();
        assert_eq!(base.run_hash(), different_path.run_hash());
    }

    #[test]
    fn missing_components_are_rejected() {
        let (registry, ids) = registry_with_components();
        let [binary, repo, ..] = ids;
        let err = FsRun::create(&registry)
            .simulator(binary, "sim")
            .simulator_repo(repo)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            RunError::MissingComponent {
                component: "run_script"
            }
        ));
    }

    #[test]
    fn wrong_kinds_are_rejected() {
        let (registry, ids) = registry_with_components();
        let [binary, repo, script, kernel, disk] = ids;
        let err = FsRun::create(&registry)
            .simulator(kernel, "oops") // a kernel is not a simulator binary
            .simulator_repo(repo)
            .run_script(script, "run.py")
            .kernel(binary, "oops")
            .disk_image(disk, "disk.img")
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            RunError::WrongKind {
                component: "simulator",
                ..
            }
        ));
    }

    #[test]
    fn unknown_artifacts_are_rejected() {
        let (registry, ids) = registry_with_components();
        let [_, repo, script, kernel, disk] = ids;
        let ghost = Uuid::new_v3("test", "ghost");
        let err = FsRun::create(&registry)
            .simulator(ghost, "sim")
            .simulator_repo(repo)
            .run_script(script, "run.py")
            .kernel(kernel, "vmlinux")
            .disk_image(disk, "disk.img")
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            RunError::UnknownArtifact {
                component: "simulator",
                ..
            }
        ));
    }

    #[test]
    fn lifecycle_transitions_enforced() {
        let (registry, ids) = registry_with_components();
        let mut run = sample_run(&registry, ids);
        assert_eq!(run.status(), RunStatus::Created);
        run.transition(RunStatus::Queued).unwrap();
        run.transition(RunStatus::Running).unwrap();
        run.transition(RunStatus::Done).unwrap();
        assert_eq!(run.transition(RunStatus::Running), Err(RunStatus::Done));
    }

    #[test]
    fn default_timeout_matches_figure_4() {
        let (registry, ids) = registry_with_components();
        let run = sample_run(&registry, ids);
        assert_eq!(run.timeout(), Duration::from_secs(900), "60*15 seconds");
    }
}
