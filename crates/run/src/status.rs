//! Run lifecycle states.

use std::fmt;
use std::str::FromStr;

/// Lifecycle of a run record, as stored in the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunStatus {
    /// Created, not yet handed to a scheduler.
    Created,
    /// Queued at a scheduler.
    Queued,
    /// Executing.
    Running,
    /// Finished successfully; results attached.
    Done,
    /// Finished unsuccessfully (simulation-level failure).
    Failed,
    /// Killed after exceeding its timeout.
    TimedOut,
}

impl RunStatus {
    /// Whether the run has reached a terminal state.
    pub fn is_terminal(self) -> bool {
        matches!(self, RunStatus::Done | RunStatus::Failed | RunStatus::TimedOut)
    }

    /// Whether the transition `self -> next` is legal.
    pub fn can_transition_to(self, next: RunStatus) -> bool {
        use RunStatus::*;
        matches!(
            (self, next),
            (Created, Queued)
                | (Created, Running)
                | (Queued, Running)
                | (Running, Done)
                | (Running, Failed)
                | (Running, TimedOut)
        )
    }
}

impl fmt::Display for RunStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RunStatus::Created => "created",
            RunStatus::Queued => "queued",
            RunStatus::Running => "running",
            RunStatus::Done => "done",
            RunStatus::Failed => "failed",
            RunStatus::TimedOut => "timed-out",
        };
        f.write_str(s)
    }
}

/// Error parsing a [`RunStatus`] from its stored string form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRunStatusError(pub(crate) String);

impl fmt::Display for ParseRunStatusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown run status {:?}", self.0)
    }
}

impl std::error::Error for ParseRunStatusError {}

impl FromStr for RunStatus {
    type Err = ParseRunStatusError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "created" => RunStatus::Created,
            "queued" => RunStatus::Queued,
            "running" => RunStatus::Running,
            "done" => RunStatus::Done,
            "failed" => RunStatus::Failed,
            "timed-out" => RunStatus::TimedOut,
            other => return Err(ParseRunStatusError(other.to_owned())),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legal_lifecycle_transitions() {
        assert!(RunStatus::Created.can_transition_to(RunStatus::Queued));
        assert!(RunStatus::Queued.can_transition_to(RunStatus::Running));
        assert!(RunStatus::Running.can_transition_to(RunStatus::Done));
        assert!(RunStatus::Running.can_transition_to(RunStatus::TimedOut));
        // Terminal states are sinks.
        assert!(!RunStatus::Done.can_transition_to(RunStatus::Running));
        assert!(!RunStatus::Failed.can_transition_to(RunStatus::Queued));
        // No skipping backwards.
        assert!(!RunStatus::Running.can_transition_to(RunStatus::Created));
    }

    #[test]
    fn terminal_classification() {
        assert!(!RunStatus::Created.is_terminal());
        assert!(!RunStatus::Running.is_terminal());
        assert!(RunStatus::Done.is_terminal());
        assert!(RunStatus::TimedOut.is_terminal());
    }

    #[test]
    fn round_trips_through_strings() {
        for status in [
            RunStatus::Created,
            RunStatus::Queued,
            RunStatus::Running,
            RunStatus::Done,
            RunStatus::Failed,
            RunStatus::TimedOut,
        ] {
            assert_eq!(status.to_string().parse::<RunStatus>().unwrap(), status);
        }
        assert!("bogus".parse::<RunStatus>().is_err());
    }
}
