//! Run lifecycle states.

use std::fmt;
use std::str::FromStr;

/// Lifecycle of a run record, as stored in the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunStatus {
    /// Created, not yet handed to a scheduler.
    Created,
    /// Queued at a scheduler.
    Queued,
    /// Executing.
    Running,
    /// An attempt failed; the run is waiting out its backoff before
    /// the next attempt.
    Retrying,
    /// Finished successfully; results attached.
    Done,
    /// Finished unsuccessfully (simulation-level failure).
    Failed,
    /// Killed after exceeding its timeout.
    TimedOut,
    /// Dead-lettered by the scheduler's supervisor after exhausting
    /// redeliveries. Terminal, and never auto-resumed: a quarantined
    /// run must be explicitly released (`Quarantined -> Queued`) before
    /// it runs again.
    Quarantined,
}

impl RunStatus {
    /// Whether the run has reached a terminal state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            RunStatus::Done | RunStatus::Failed | RunStatus::TimedOut | RunStatus::Quarantined
        )
    }

    /// Whether the run was interrupted mid-flight (a non-terminal,
    /// non-fresh state) — what a crashed session leaves behind.
    pub fn is_stranded(self) -> bool {
        matches!(
            self,
            RunStatus::Queued | RunStatus::Running | RunStatus::Retrying
        )
    }

    /// Whether the transition `self -> next` is legal.
    ///
    /// Forward progress is `Created -> Queued -> Running -> Done`.
    /// Fault tolerance adds the retry loop (`Running -> Retrying ->
    /// Running`) and the rerun edges back to `Queued`: failed and
    /// timed-out runs can be re-queued explicitly, and stranded
    /// `Running`/`Retrying` runs are re-queued when a crashed session
    /// resumes. `Done` stays a sink — finished results are never
    /// silently redone. Supervised schedulers add the quarantine
    /// edges: any in-flight state can be dead-lettered to
    /// `Quarantined`, which only an explicit release
    /// (`Quarantined -> Queued`) leaves — resume never takes that edge
    /// on its own.
    pub fn can_transition_to(self, next: RunStatus) -> bool {
        use RunStatus::*;
        matches!(
            (self, next),
            (Created, Queued)
                | (Created, Running)
                | (Queued, Running)
                | (Running, Done)
                | (Running, Failed)
                | (Running, TimedOut)
                // Retry loop within one session.
                | (Running, Retrying)
                | (Retrying, Running)
                | (Retrying, Failed)
                | (Retrying, TimedOut)
                // Rerun/resume edges back into the queue.
                | (Failed, Queued)
                | (TimedOut, Queued)
                | (Running, Queued)
                | (Retrying, Queued)
                // Dead-letter edges into quarantine, and the explicit
                // release edge out of it.
                | (Queued, Quarantined)
                | (Running, Quarantined)
                | (Retrying, Quarantined)
                | (Quarantined, Queued)
        )
    }
}

impl fmt::Display for RunStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RunStatus::Created => "created",
            RunStatus::Queued => "queued",
            RunStatus::Running => "running",
            RunStatus::Retrying => "retrying",
            RunStatus::Done => "done",
            RunStatus::Failed => "failed",
            RunStatus::TimedOut => "timed-out",
            RunStatus::Quarantined => "quarantined",
        };
        f.write_str(s)
    }
}

/// Error parsing a [`RunStatus`] from its stored string form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRunStatusError(pub(crate) String);

impl fmt::Display for ParseRunStatusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown run status {:?}", self.0)
    }
}

impl std::error::Error for ParseRunStatusError {}

impl FromStr for RunStatus {
    type Err = ParseRunStatusError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "created" => RunStatus::Created,
            "queued" => RunStatus::Queued,
            "running" => RunStatus::Running,
            "retrying" => RunStatus::Retrying,
            "done" => RunStatus::Done,
            "failed" => RunStatus::Failed,
            "timed-out" => RunStatus::TimedOut,
            "quarantined" => RunStatus::Quarantined,
            other => return Err(ParseRunStatusError(other.to_owned())),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legal_lifecycle_transitions() {
        assert!(RunStatus::Created.can_transition_to(RunStatus::Queued));
        assert!(RunStatus::Queued.can_transition_to(RunStatus::Running));
        assert!(RunStatus::Running.can_transition_to(RunStatus::Done));
        assert!(RunStatus::Running.can_transition_to(RunStatus::TimedOut));
        // Done is a sink: finished results are never silently redone.
        assert!(!RunStatus::Done.can_transition_to(RunStatus::Running));
        assert!(!RunStatus::Done.can_transition_to(RunStatus::Queued));
        // No skipping backwards.
        assert!(!RunStatus::Running.can_transition_to(RunStatus::Created));
        assert!(!RunStatus::Queued.can_transition_to(RunStatus::Created));
    }

    #[test]
    fn retry_and_rerun_transitions() {
        // In-session retry loop.
        assert!(RunStatus::Running.can_transition_to(RunStatus::Retrying));
        assert!(RunStatus::Retrying.can_transition_to(RunStatus::Running));
        assert!(RunStatus::Retrying.can_transition_to(RunStatus::Failed));
        assert!(RunStatus::Retrying.can_transition_to(RunStatus::TimedOut));
        // Failed/timed-out runs can be re-queued for another go.
        assert!(RunStatus::Failed.can_transition_to(RunStatus::Queued));
        assert!(RunStatus::TimedOut.can_transition_to(RunStatus::Queued));
        // Stranded in-flight runs are re-queued on resume.
        assert!(RunStatus::Running.can_transition_to(RunStatus::Queued));
        assert!(RunStatus::Retrying.can_transition_to(RunStatus::Queued));
        // Retrying cannot leap straight to Done.
        assert!(!RunStatus::Retrying.can_transition_to(RunStatus::Done));
    }

    #[test]
    fn quarantine_transitions() {
        // Any in-flight state can be dead-lettered.
        assert!(RunStatus::Queued.can_transition_to(RunStatus::Quarantined));
        assert!(RunStatus::Running.can_transition_to(RunStatus::Quarantined));
        assert!(RunStatus::Retrying.can_transition_to(RunStatus::Quarantined));
        // Only an explicit release leaves quarantine.
        assert!(RunStatus::Quarantined.can_transition_to(RunStatus::Queued));
        assert!(!RunStatus::Quarantined.can_transition_to(RunStatus::Running));
        assert!(!RunStatus::Quarantined.can_transition_to(RunStatus::Done));
        // Terminal states cannot be quarantined after the fact.
        assert!(!RunStatus::Done.can_transition_to(RunStatus::Quarantined));
        assert!(!RunStatus::Failed.can_transition_to(RunStatus::Quarantined));
        // Quarantined is terminal but not stranded (resume skips it).
        assert!(RunStatus::Quarantined.is_terminal());
        assert!(!RunStatus::Quarantined.is_stranded());
    }

    #[test]
    fn terminal_classification() {
        assert!(!RunStatus::Created.is_terminal());
        assert!(!RunStatus::Running.is_terminal());
        assert!(!RunStatus::Retrying.is_terminal());
        assert!(RunStatus::Done.is_terminal());
        assert!(RunStatus::TimedOut.is_terminal());
    }

    #[test]
    fn stranded_classification() {
        assert!(RunStatus::Queued.is_stranded());
        assert!(RunStatus::Running.is_stranded());
        assert!(RunStatus::Retrying.is_stranded());
        assert!(!RunStatus::Created.is_stranded());
        assert!(!RunStatus::Done.is_stranded());
        assert!(!RunStatus::Failed.is_stranded());
    }

    #[test]
    fn round_trips_through_strings() {
        for status in [
            RunStatus::Created,
            RunStatus::Queued,
            RunStatus::Running,
            RunStatus::Retrying,
            RunStatus::Done,
            RunStatus::Failed,
            RunStatus::TimedOut,
            RunStatus::Quarantined,
        ] {
            assert_eq!(status.to_string().parse::<RunStatus>().unwrap(), status);
        }
        assert!("bogus".parse::<RunStatus>().is_err());
    }
}
