//! Error type for run construction and persistence.

use simart_artifact::ArtifactId;
use std::fmt;

/// Errors building or storing run objects.
#[derive(Debug)]
#[non_exhaustive]
pub enum RunError {
    /// A required component was not supplied to the builder.
    MissingComponent {
        /// Which component.
        component: &'static str,
    },
    /// A referenced artifact is not registered.
    UnknownArtifact {
        /// The dangling id.
        id: ArtifactId,
        /// Which component referenced it.
        component: &'static str,
    },
    /// A referenced artifact has the wrong kind (e.g. a disk image
    /// where a kernel is expected).
    WrongKind {
        /// Which component.
        component: &'static str,
        /// Kind actually found.
        found: String,
    },
    /// Database failure while persisting or loading runs.
    Db(simart_db::DbError),
    /// The same run (identical hash) was already recorded.
    DuplicateRun {
        /// The run hash that collided.
        hash: String,
    },
    /// A stored run document is malformed.
    Corrupt {
        /// Why it could not be decoded.
        reason: String,
    },
    /// A requested status change violates the run lifecycle.
    IllegalTransition {
        /// Current status.
        from: crate::status::RunStatus,
        /// Requested status.
        to: crate::status::RunStatus,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::MissingComponent { component } => {
                write!(f, "run is missing required component `{component}`")
            }
            RunError::UnknownArtifact { id, component } => {
                write!(
                    f,
                    "component `{component}` references unregistered artifact {id}"
                )
            }
            RunError::WrongKind { component, found } => {
                write!(f, "component `{component}` has wrong artifact kind {found}")
            }
            RunError::Db(err) => write!(f, "database failure: {err}"),
            RunError::DuplicateRun { hash } => {
                write!(f, "run with hash {hash} is already recorded")
            }
            RunError::Corrupt { reason } => write!(f, "corrupt run record: {reason}"),
            RunError::IllegalTransition { from, to } => {
                write!(f, "illegal run status transition {from} -> {to}")
            }
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Db(err) => Some(err),
            _ => None,
        }
    }
}

impl From<simart_db::DbError> for RunError {
    fn from(err: simart_db::DbError) -> RunError {
        RunError::Db(err)
    }
}
