//! Persistence of run records in the document database.

use crate::error::RunError;
use crate::fs_run::FsRun;
use crate::status::RunStatus;
use simart_artifact::{ArtifactId, Uuid};
use simart_db::{BlobKey, Database, Filter, Value};
use std::str::FromStr;
use std::time::Duration;

/// Stores run records (and their result payloads) in a [`Database`].
///
/// Uniqueness: the run *hash* is unique — recording the same experiment
/// twice is refused, which is how the paper's framework prevents
/// accidental duplicate data points.
#[derive(Debug, Clone)]
pub struct RunStore {
    db: Database,
}

impl RunStore {
    /// Collection used for run documents.
    pub const COLLECTION: &'static str = "runs";

    /// Wraps a database, installing the run-hash uniqueness constraint.
    ///
    /// # Errors
    ///
    /// Fails if existing documents already violate uniqueness.
    pub fn new(db: &Database) -> Result<RunStore, RunError> {
        db.collection(Self::COLLECTION).ensure_unique("hash")?;
        Ok(RunStore { db: db.clone() })
    }

    /// Records a new run.
    ///
    /// # Errors
    ///
    /// [`RunError::DuplicateRun`] when a run with the same hash exists.
    pub fn record(&self, run: &FsRun) -> Result<(), RunError> {
        let doc = run_to_doc(run);
        match self.db.collection(Self::COLLECTION).insert(doc) {
            Ok(()) => Ok(()),
            Err(simart_db::DbError::UniqueViolation { .. })
            | Err(simart_db::DbError::DuplicateId { .. }) => {
                Err(RunError::DuplicateRun { hash: run.run_hash().to_owned() })
            }
            Err(other) => Err(other.into()),
        }
    }

    /// Loads a run by id.
    ///
    /// # Errors
    ///
    /// [`simart_db::DbError::NotFound`] via [`RunError::Db`] when
    /// absent; [`RunError::Corrupt`] when undecodable.
    pub fn load(&self, id: Uuid) -> Result<FsRun, RunError> {
        let doc = self
            .db
            .collection(Self::COLLECTION)
            .get(&id.to_string())
            .ok_or_else(|| RunError::Db(simart_db::DbError::NotFound { query: id.to_string() }))?;
        doc_to_run(&doc)
    }

    /// Updates a run's status in the database.
    ///
    /// # Errors
    ///
    /// Propagates lookup failures.
    pub fn set_status(&self, id: Uuid, status: RunStatus) -> Result<(), RunError> {
        let n = self
            .db
            .collection(Self::COLLECTION)
            .update_many(&Filter::eq("_id", id.to_string()), |doc| {
                doc.set_at("status", Value::from(status.to_string()));
            });
        if n == 0 {
            return Err(RunError::Db(simart_db::DbError::NotFound { query: id.to_string() }));
        }
        Ok(())
    }

    /// Attaches results: summary statistics fields plus an archived
    /// payload (e.g. the stats dump) stored in the blob store.
    ///
    /// # Errors
    ///
    /// Propagates lookup failures.
    pub fn attach_results(
        &self,
        id: Uuid,
        sim_ticks: u64,
        outcome: &str,
        payload: &[u8],
    ) -> Result<BlobKey, RunError> {
        let key = self.db.blobs().put(payload.to_vec());
        let n = self
            .db
            .collection(Self::COLLECTION)
            .update_many(&Filter::eq("_id", id.to_string()), |doc| {
                doc.set_at("results.simTicks", Value::from(sim_ticks));
                doc.set_at("results.outcome", Value::from(outcome));
                doc.set_at("results.payload", Value::from(key.to_hex()));
            });
        if n == 0 {
            return Err(RunError::Db(simart_db::DbError::NotFound { query: id.to_string() }));
        }
        Ok(key)
    }

    /// Loads the archived result payload of a run, if any.
    pub fn load_results(&self, id: Uuid) -> Option<bytes::Bytes> {
        let doc = self.db.collection(Self::COLLECTION).get(&id.to_string())?;
        let key = BlobKey::from_hex(doc.at("results.payload")?.as_str()?)?;
        self.db.blobs().get(key)
    }

    /// All runs in the given status.
    ///
    /// # Errors
    ///
    /// Propagates decode failures.
    pub fn find_by_status(&self, status: RunStatus) -> Result<Vec<FsRun>, RunError> {
        self.db
            .collection(Self::COLLECTION)
            .find(&Filter::eq("status", status.to_string()))
            .iter()
            .map(doc_to_run)
            .collect()
    }

    /// All runs that used the given artifact as any input — the
    /// reproducibility query ("which results depend on this kernel?").
    ///
    /// # Errors
    ///
    /// Propagates decode failures.
    pub fn find_by_artifact(&self, artifact: ArtifactId) -> Result<Vec<FsRun>, RunError> {
        self.db
            .collection(Self::COLLECTION)
            .find(&Filter::elem_match("inputs", artifact.to_string()))
            .iter()
            .map(doc_to_run)
            .collect()
    }

    /// Number of recorded runs.
    pub fn len(&self) -> usize {
        self.db.collection(Self::COLLECTION).len()
    }

    /// Whether no runs are recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn run_to_doc(run: &FsRun) -> Value {
    let [simulator_path, run_script_path, kernel_path, disk_image_path] = run.paths();
    Value::map([
        ("_id", Value::from(run.id().to_string())),
        ("hash", Value::from(run.run_hash())),
        ("status", Value::from(run.status().to_string())),
        (
            "inputs",
            Value::array(run.input_artifacts().iter().map(|a| Value::from(a.to_string()))),
        ),
        ("simulator", Value::from(run.simulator().to_string())),
        ("simulatorRepo", Value::from(run.simulator_repo().to_string())),
        ("runScript", Value::from(run.run_script().to_string())),
        ("kernel", Value::from(run.kernel().to_string())),
        ("diskImage", Value::from(run.disk_image().to_string())),
        (
            "paths",
            Value::map([
                ("simulator", Value::from(simulator_path)),
                ("runScript", Value::from(run_script_path)),
                ("kernel", Value::from(kernel_path)),
                ("diskImage", Value::from(disk_image_path)),
            ]),
        ),
        ("outputDir", Value::from(run.output_dir())),
        ("params", Value::array(run.params().iter().map(|p| Value::from(p.as_str())))),
        ("timeoutSeconds", Value::from(run.timeout().as_secs())),
    ])
}

fn doc_to_run(doc: &Value) -> Result<FsRun, RunError> {
    let corrupt = |why: &str| RunError::Corrupt { reason: why.to_owned() };
    let text = |path: &str| -> Result<String, RunError> {
        doc.at(path)
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| corrupt(&format!("missing `{path}`")))
    };
    let uuid = |path: &str| -> Result<Uuid, RunError> {
        Uuid::from_str(&text(path)?).map_err(|_| corrupt(&format!("bad uuid at `{path}`")))
    };
    let id = uuid("_id")?;
    let components = [
        uuid("simulator")?,
        uuid("simulatorRepo")?,
        uuid("runScript")?,
        uuid("kernel")?,
        uuid("diskImage")?,
    ];
    let paths = [
        text("paths.simulator")?,
        text("paths.runScript")?,
        text("paths.kernel")?,
        text("paths.diskImage")?,
    ];
    let params = doc
        .at("params")
        .and_then(Value::as_array)
        .ok_or_else(|| corrupt("missing `params`"))?
        .iter()
        .map(|v| v.as_str().map(str::to_owned).ok_or_else(|| corrupt("non-string param")))
        .collect::<Result<Vec<_>, _>>()?;
    let status = text("status")?
        .parse::<RunStatus>()
        .map_err(|e| corrupt(&e.to_string()))?;
    let timeout = Duration::from_secs(
        doc.at("timeoutSeconds").and_then(Value::as_int).ok_or_else(|| corrupt("missing timeout"))?
            as u64,
    );
    Ok(FsRun::from_stored_parts(
        id,
        text("hash")?,
        components,
        paths,
        text("outputDir")?,
        params,
        timeout,
        status,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simart_artifact::{Artifact, ArtifactKind, ArtifactRegistry, ContentSource};

    fn setup() -> (ArtifactRegistry, [ArtifactId; 5], Database, RunStore) {
        let mut registry = ArtifactRegistry::new();
        let repo = registry
            .register(
                Artifact::builder("sim-repo", ArtifactKind::GitRepo)
                    .documentation("src")
                    .content(ContentSource::git("https://x", "rev1")),
            )
            .unwrap();
        let binary = registry
            .register(
                Artifact::builder("sim", ArtifactKind::Binary)
                    .documentation("bin")
                    .content(ContentSource::bytes(b"elf".to_vec()))
                    .input(repo.id()),
            )
            .unwrap();
        let script = registry
            .register(
                Artifact::builder("script", ArtifactKind::RunScript)
                    .documentation("cfg")
                    .content(ContentSource::bytes(b"py".to_vec())),
            )
            .unwrap();
        let kernel = registry
            .register(
                Artifact::builder("vmlinux", ArtifactKind::Kernel)
                    .documentation("kernel")
                    .content(ContentSource::bytes(b"krn".to_vec())),
            )
            .unwrap();
        let disk = registry
            .register(
                Artifact::builder("disk", ArtifactKind::DiskImage)
                    .documentation("img")
                    .content(ContentSource::bytes(b"img".to_vec())),
            )
            .unwrap();
        let ids = [binary.id(), repo.id(), script.id(), kernel.id(), disk.id()];
        let db = Database::in_memory();
        let store = RunStore::new(&db).unwrap();
        (registry, ids, db, store)
    }

    fn make_run(registry: &ArtifactRegistry, ids: [ArtifactId; 5], app: &str) -> FsRun {
        let [binary, repo, script, kernel, disk] = ids;
        FsRun::create(registry)
            .simulator(binary, "build/sim.opt")
            .simulator_repo(repo)
            .run_script(script, "configs/run.py")
            .kernel(kernel, "vmlinux")
            .disk_image(disk, "disk.img")
            .param(app)
            .build()
            .unwrap()
    }

    #[test]
    fn record_load_round_trip() {
        let (registry, ids, _db, store) = setup();
        let run = make_run(&registry, ids, "dedup");
        store.record(&run).unwrap();
        let loaded = store.load(run.id()).unwrap();
        assert_eq!(loaded, run);
    }

    #[test]
    fn duplicate_experiments_are_refused() {
        let (registry, ids, _db, store) = setup();
        let run = make_run(&registry, ids, "dedup");
        store.record(&run).unwrap();
        let again = make_run(&registry, ids, "dedup");
        assert!(matches!(store.record(&again), Err(RunError::DuplicateRun { .. })));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn status_updates_and_queries() {
        let (registry, ids, _db, store) = setup();
        let run = make_run(&registry, ids, "vips");
        store.record(&run).unwrap();
        store.set_status(run.id(), RunStatus::Running).unwrap();
        assert_eq!(store.find_by_status(RunStatus::Running).unwrap().len(), 1);
        assert!(store.find_by_status(RunStatus::Done).unwrap().is_empty());
        assert!(store.set_status(Uuid::NIL, RunStatus::Running).is_err());
    }

    #[test]
    fn results_round_trip_through_blob_store() {
        let (registry, ids, _db, store) = setup();
        let run = make_run(&registry, ids, "ferret");
        store.record(&run).unwrap();
        store.attach_results(run.id(), 123_456, "success", b"stats dump here").unwrap();
        assert_eq!(store.load_results(run.id()).unwrap().as_ref(), b"stats dump here");
        let doc = store.load(run.id()).unwrap();
        let _ = doc; // run decodes fine with results attached
    }

    #[test]
    fn find_by_artifact_links_runs_to_inputs() {
        let (registry, ids, _db, store) = setup();
        let run_a = make_run(&registry, ids, "a");
        let run_b = make_run(&registry, ids, "b");
        store.record(&run_a).unwrap();
        store.record(&run_b).unwrap();
        let kernel = ids[3];
        let dependents = store.find_by_artifact(kernel).unwrap();
        assert_eq!(dependents.len(), 2);
        let ghost = Uuid::new_v3("t", "ghost");
        assert!(store.find_by_artifact(ghost).unwrap().is_empty());
    }
}
