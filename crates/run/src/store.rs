//! Persistence of run records in the document database.

use crate::error::RunError;
use crate::fs_run::FsRun;
use crate::status::RunStatus;
use simart_artifact::{ArtifactId, Uuid};
use simart_db::{BlobKey, Database, Filter, Value};
use simart_observe as observe;
use std::str::FromStr;
use std::time::Duration;

/// Stores run records (and their result payloads) in a [`Database`].
///
/// Uniqueness: the run *hash* is unique — recording the same experiment
/// twice is refused, which is how the paper's framework prevents
/// accidental duplicate data points.
///
/// Durability rides on the database: when the store wraps an attached
/// database ([`Database::open`]), every record, status transition, and
/// attached result is written through to the on-disk journal as it
/// happens — no explicit save required for a crashed session to keep
/// its completed runs.
#[derive(Debug, Clone)]
pub struct RunStore {
    db: Database,
}

impl RunStore {
    /// Collection used for run documents.
    pub const COLLECTION: &'static str = "runs";

    /// Wraps a database, installing the run-hash uniqueness constraint
    /// plus the status and inputs lookup indexes behind
    /// [`find_by_status`](Self::find_by_status) and
    /// [`find_by_artifact`](Self::find_by_artifact).
    ///
    /// # Errors
    ///
    /// Fails if existing documents already violate uniqueness.
    pub fn new(db: &Database) -> Result<RunStore, RunError> {
        let collection = db.collection(Self::COLLECTION);
        collection.ensure_unique("hash")?;
        collection.ensure_index(simart_db::IndexSpec::hash("status"))?;
        collection.ensure_index(simart_db::IndexSpec::hash("inputs"))?;
        collection.ensure_index(simart_db::IndexSpec::ordered("results.simTicks"))?;
        Ok(RunStore { db: db.clone() })
    }

    /// Records a new run.
    ///
    /// # Errors
    ///
    /// [`RunError::DuplicateRun`] when a run with the same hash exists.
    pub fn record(&self, run: &FsRun) -> Result<(), RunError> {
        let _timer = observe::timer("run.record_us");
        observe::count("run.records", 1);
        let doc = run_to_doc(run);
        match self.db.collection(Self::COLLECTION).insert(doc) {
            Ok(()) => Ok(()),
            Err(simart_db::DbError::UniqueViolation { .. })
            | Err(simart_db::DbError::DuplicateId { .. }) => Err(RunError::DuplicateRun {
                hash: run.run_hash().to_owned(),
            }),
            Err(other) => Err(other.into()),
        }
    }

    /// Loads a run by id.
    ///
    /// # Errors
    ///
    /// [`simart_db::DbError::NotFound`] via [`RunError::Db`] when
    /// absent; [`RunError::Corrupt`] when undecodable.
    pub fn load(&self, id: Uuid) -> Result<FsRun, RunError> {
        let doc = self
            .db
            .collection(Self::COLLECTION)
            .get(&id.to_string())
            .ok_or_else(|| {
                RunError::Db(simart_db::DbError::NotFound {
                    query: id.to_string(),
                })
            })?;
        doc_to_run(&doc)
    }

    /// Updates a run's status in the database, appending a
    /// `status:<new>` entry to the run's provenance event log.
    ///
    /// This is the *unchecked* write — it does not validate the
    /// lifecycle and exists for administrative repair and for
    /// simulating crashes in tests. Prefer [`RunStore::transition`].
    ///
    /// # Errors
    ///
    /// Propagates lookup failures.
    pub fn set_status(&self, id: Uuid, status: RunStatus) -> Result<(), RunError> {
        observe::count("run.transitions", 1);
        let n = self.db.collection(Self::COLLECTION).update_many(
            &Filter::eq("_id", id.to_string()),
            |doc| {
                doc.set_at("status", Value::from(status.to_string()));
                push_event(doc, &format!("status:{status}"));
            },
        )?;
        if n == 0 {
            return Err(RunError::Db(simart_db::DbError::NotFound {
                query: id.to_string(),
            }));
        }
        Ok(())
    }

    /// Appends a free-form provenance event to the run's event log
    /// without touching its status. Used by the remote scheduler to
    /// journal per-delivery facts (`remote-dispatch:<n>:g<gen>`,
    /// `remote-ack:<n>:g<gen>`) that `simart check` later audits for
    /// orphaned attempts.
    ///
    /// # Errors
    ///
    /// Propagates lookup failures.
    pub fn log_event(&self, id: Uuid, event: &str) -> Result<(), RunError> {
        let n = self.db.collection(Self::COLLECTION).update_many(
            &Filter::eq("_id", id.to_string()),
            |doc| {
                push_event(doc, event);
            },
        )?;
        if n == 0 {
            return Err(RunError::Db(simart_db::DbError::NotFound {
                query: id.to_string(),
            }));
        }
        Ok(())
    }

    /// Moves a run to `next`, enforcing the lifecycle: the change is
    /// refused (and nothing is written) unless the run's current
    /// status [can transition](RunStatus::can_transition_to) to `next`.
    ///
    /// # Errors
    ///
    /// [`RunError::IllegalTransition`] on a lifecycle violation;
    /// propagates lookup failures.
    pub fn transition(&self, id: Uuid, next: RunStatus) -> Result<(), RunError> {
        let from = self.load(id)?.status();
        if !from.can_transition_to(next) {
            return Err(RunError::IllegalTransition { from, to: next });
        }
        self.set_status(id, next)
    }

    /// Appends one attempt to the run's attempt history (bumping the
    /// attempt counter and logging an `attempt:<n>:<disposition>`
    /// provenance event) and returns the new attempt count.
    ///
    /// # Errors
    ///
    /// Propagates lookup failures.
    pub fn record_attempt(
        &self,
        id: Uuid,
        disposition: &str,
        delay_before: Duration,
    ) -> Result<u32, RunError> {
        let recorded = std::cell::Cell::new(0u32);
        let n = self.db.collection(Self::COLLECTION).update_many(
            &Filter::eq("_id", id.to_string()),
            |doc| {
                let prior = doc.at("attemptCount").and_then(Value::as_int).unwrap_or(0);
                let count = u32::try_from(prior).unwrap_or(0).saturating_add(1);
                recorded.set(count);
                doc.set_at("attemptCount", Value::from(u64::from(count)));
                let mut attempts: Vec<Value> = doc
                    .at("attempts")
                    .and_then(Value::as_array)
                    .map(<[Value]>::to_vec)
                    .unwrap_or_default();
                attempts.push(Value::map([
                    ("index", Value::from(u64::from(count))),
                    ("disposition", Value::from(disposition)),
                    (
                        "delayMs",
                        Value::from(u64::try_from(delay_before.as_millis()).unwrap_or(u64::MAX)),
                    ),
                ]));
                doc.set_at("attempts", Value::array(attempts));
                push_event(doc, &format!("attempt:{count}:{disposition}"));
            },
        )?;
        if n == 0 {
            return Err(RunError::Db(simart_db::DbError::NotFound {
                query: id.to_string(),
            }));
        }
        Ok(recorded.get())
    }

    /// Number of attempts recorded for a run (0 when none, or when the
    /// run is unknown).
    pub fn attempt_count(&self, id: Uuid) -> u32 {
        self.db
            .collection(Self::COLLECTION)
            .get(&id.to_string())
            .and_then(|doc| doc.at("attemptCount").and_then(Value::as_int))
            .and_then(|n| u32::try_from(n).ok())
            .unwrap_or(0)
    }

    /// The run's attempt history, oldest first.
    ///
    /// # Errors
    ///
    /// Propagates lookup and decode failures.
    pub fn attempt_history(&self, id: Uuid) -> Result<Vec<RunAttempt>, RunError> {
        let corrupt = |why: &str| RunError::Corrupt {
            reason: why.to_owned(),
        };
        let doc = self
            .db
            .collection(Self::COLLECTION)
            .get(&id.to_string())
            .ok_or_else(|| {
                RunError::Db(simart_db::DbError::NotFound {
                    query: id.to_string(),
                })
            })?;
        let Some(attempts) = doc.at("attempts").and_then(Value::as_array) else {
            return Ok(Vec::new());
        };
        attempts
            .iter()
            .map(|entry| {
                Ok(RunAttempt {
                    index: entry
                        .at("index")
                        .and_then(Value::as_int)
                        .and_then(|n| u32::try_from(n).ok())
                        .ok_or_else(|| corrupt("attempt without index"))?,
                    disposition: entry
                        .at("disposition")
                        .and_then(Value::as_str)
                        .ok_or_else(|| corrupt("attempt without disposition"))?
                        .to_owned(),
                    delay_ms: entry
                        .at("delayMs")
                        .and_then(Value::as_int)
                        .and_then(|n| u64::try_from(n).ok())
                        .ok_or_else(|| corrupt("attempt without delayMs"))?,
                })
            })
            .collect()
    }

    /// The run's provenance event log (status changes and attempts, in
    /// write order). Empty for unknown runs.
    pub fn events(&self, id: Uuid) -> Vec<String> {
        self.db
            .collection(Self::COLLECTION)
            .get(&id.to_string())
            .and_then(|doc| {
                doc.at("events").and_then(Value::as_array).map(|events| {
                    events
                        .iter()
                        .filter_map(|e| e.as_str().map(str::to_owned))
                        .collect::<Vec<_>>()
                })
            })
            .unwrap_or_default()
    }

    /// Attaches results: summary statistics fields plus an archived
    /// payload (e.g. the stats dump) stored in the blob store.
    ///
    /// # Errors
    ///
    /// Propagates lookup failures.
    pub fn attach_results(
        &self,
        id: Uuid,
        sim_ticks: u64,
        outcome: &str,
        payload: &[u8],
    ) -> Result<BlobKey, RunError> {
        let key = self.db.blobs().put(payload.to_vec());
        let n = self.db.collection(Self::COLLECTION).update_many(
            &Filter::eq("_id", id.to_string()),
            |doc| {
                doc.set_at("results.simTicks", Value::from(sim_ticks));
                doc.set_at("results.outcome", Value::from(outcome));
                doc.set_at("results.payload", Value::from(key.to_hex()));
            },
        )?;
        if n == 0 {
            return Err(RunError::Db(simart_db::DbError::NotFound {
                query: id.to_string(),
            }));
        }
        Ok(key)
    }

    /// Loads the archived result payload of a run, if any.
    pub fn load_results(&self, id: Uuid) -> Option<bytes::Bytes> {
        let doc = self.db.collection(Self::COLLECTION).get(&id.to_string())?;
        let key = BlobKey::from_hex(doc.at("results.payload")?.as_str()?)?;
        self.db.blobs().get(key)
    }

    /// Finds the run with the given hash (unique per experiment), if
    /// recorded.
    ///
    /// # Errors
    ///
    /// Propagates decode failures.
    pub fn find_by_hash(&self, hash: &str) -> Result<Option<FsRun>, RunError> {
        self.db
            .collection(Self::COLLECTION)
            .find(&Filter::eq("hash", hash))
            .first()
            .map(doc_to_run)
            .transpose()
    }

    /// All runs in the given status.
    ///
    /// # Errors
    ///
    /// Propagates decode failures.
    pub fn find_by_status(&self, status: RunStatus) -> Result<Vec<FsRun>, RunError> {
        self.db
            .collection(Self::COLLECTION)
            .find(&Filter::eq("status", status.to_string()))
            .iter()
            .map(doc_to_run)
            .collect()
    }

    /// All runs that used the given artifact as any input — the
    /// reproducibility query ("which results depend on this kernel?").
    ///
    /// # Errors
    ///
    /// Propagates decode failures.
    pub fn find_by_artifact(&self, artifact: ArtifactId) -> Result<Vec<FsRun>, RunError> {
        self.db
            .collection(Self::COLLECTION)
            .find(&Filter::elem_match("inputs", artifact.to_string()))
            .iter()
            .map(doc_to_run)
            .collect()
    }

    /// Number of recorded runs.
    pub fn len(&self) -> usize {
        self.db.collection(Self::COLLECTION).len()
    }

    /// Whether no runs are recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One recorded attempt of a run — the persisted mirror of the task
/// layer's attempt records. `delay_ms` is the scheduled backoff before
/// the attempt, so histories are deterministic for a fixed retry seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunAttempt {
    /// 1-based attempt number.
    pub index: u32,
    /// How the attempt ended ("succeeded", "errored", "timed-out").
    pub disposition: String,
    /// Backoff delay scheduled before this attempt, in milliseconds.
    pub delay_ms: u64,
}

/// Appends one entry to a run document's provenance event log.
fn push_event(doc: &mut Value, event: &str) {
    let mut events: Vec<Value> = doc
        .at("events")
        .and_then(Value::as_array)
        .map(<[Value]>::to_vec)
        .unwrap_or_default();
    events.push(Value::from(event));
    doc.set_at("events", Value::array(events));
}

fn run_to_doc(run: &FsRun) -> Value {
    let [simulator_path, run_script_path, kernel_path, disk_image_path] = run.paths();
    Value::map([
        ("_id", Value::from(run.id().to_string())),
        ("hash", Value::from(run.run_hash())),
        ("status", Value::from(run.status().to_string())),
        (
            "inputs",
            Value::array(
                run.input_artifacts()
                    .iter()
                    .map(|a| Value::from(a.to_string())),
            ),
        ),
        ("simulator", Value::from(run.simulator().to_string())),
        (
            "simulatorRepo",
            Value::from(run.simulator_repo().to_string()),
        ),
        ("runScript", Value::from(run.run_script().to_string())),
        ("kernel", Value::from(run.kernel().to_string())),
        ("diskImage", Value::from(run.disk_image().to_string())),
        (
            "paths",
            Value::map([
                ("simulator", Value::from(simulator_path)),
                ("runScript", Value::from(run_script_path)),
                ("kernel", Value::from(kernel_path)),
                ("diskImage", Value::from(disk_image_path)),
            ]),
        ),
        ("outputDir", Value::from(run.output_dir())),
        (
            "params",
            Value::array(run.params().iter().map(|p| Value::from(p.as_str()))),
        ),
        ("timeoutSeconds", Value::from(run.timeout().as_secs())),
    ])
}

fn doc_to_run(doc: &Value) -> Result<FsRun, RunError> {
    let corrupt = |why: &str| RunError::Corrupt {
        reason: why.to_owned(),
    };
    let text = |path: &str| -> Result<String, RunError> {
        doc.at(path)
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| corrupt(&format!("missing `{path}`")))
    };
    let uuid = |path: &str| -> Result<Uuid, RunError> {
        Uuid::from_str(&text(path)?).map_err(|_| corrupt(&format!("bad uuid at `{path}`")))
    };
    let id = uuid("_id")?;
    let components = [
        uuid("simulator")?,
        uuid("simulatorRepo")?,
        uuid("runScript")?,
        uuid("kernel")?,
        uuid("diskImage")?,
    ];
    let paths = [
        text("paths.simulator")?,
        text("paths.runScript")?,
        text("paths.kernel")?,
        text("paths.diskImage")?,
    ];
    let params = doc
        .at("params")
        .and_then(Value::as_array)
        .ok_or_else(|| corrupt("missing `params`"))?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_owned)
                .ok_or_else(|| corrupt("non-string param"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let status = text("status")?
        .parse::<RunStatus>()
        .map_err(|e| corrupt(&e.to_string()))?;
    let timeout = Duration::from_secs(
        doc.at("timeoutSeconds")
            .and_then(Value::as_int)
            .and_then(|n| u64::try_from(n).ok())
            .ok_or_else(|| corrupt("missing timeout"))?,
    );
    Ok(FsRun::from_stored_parts(
        id,
        text("hash")?,
        components,
        paths,
        text("outputDir")?,
        params,
        timeout,
        status,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simart_artifact::{Artifact, ArtifactKind, ArtifactRegistry, ContentSource};

    fn setup() -> (ArtifactRegistry, [ArtifactId; 5], Database, RunStore) {
        let mut registry = ArtifactRegistry::new();
        let repo = registry
            .register(
                Artifact::builder("sim-repo", ArtifactKind::GitRepo)
                    .documentation("src")
                    .content(ContentSource::git("https://x", "rev1")),
            )
            .unwrap();
        let binary = registry
            .register(
                Artifact::builder("sim", ArtifactKind::Binary)
                    .documentation("bin")
                    .content(ContentSource::bytes(b"elf".to_vec()))
                    .input(repo.id()),
            )
            .unwrap();
        let script = registry
            .register(
                Artifact::builder("script", ArtifactKind::RunScript)
                    .documentation("cfg")
                    .content(ContentSource::bytes(b"py".to_vec())),
            )
            .unwrap();
        let kernel = registry
            .register(
                Artifact::builder("vmlinux", ArtifactKind::Kernel)
                    .documentation("kernel")
                    .content(ContentSource::bytes(b"krn".to_vec())),
            )
            .unwrap();
        let disk = registry
            .register(
                Artifact::builder("disk", ArtifactKind::DiskImage)
                    .documentation("img")
                    .content(ContentSource::bytes(b"img".to_vec())),
            )
            .unwrap();
        let ids = [binary.id(), repo.id(), script.id(), kernel.id(), disk.id()];
        let db = Database::in_memory();
        let store = RunStore::new(&db).unwrap();
        (registry, ids, db, store)
    }

    fn make_run(registry: &ArtifactRegistry, ids: [ArtifactId; 5], app: &str) -> FsRun {
        let [binary, repo, script, kernel, disk] = ids;
        FsRun::create(registry)
            .simulator(binary, "build/sim.opt")
            .simulator_repo(repo)
            .run_script(script, "configs/run.py")
            .kernel(kernel, "vmlinux")
            .disk_image(disk, "disk.img")
            .param(app)
            .build()
            .unwrap()
    }

    #[test]
    fn record_load_round_trip() {
        let (registry, ids, _db, store) = setup();
        let run = make_run(&registry, ids, "dedup");
        store.record(&run).unwrap();
        let loaded = store.load(run.id()).unwrap();
        assert_eq!(loaded, run);
        let by_hash = store.find_by_hash(run.run_hash()).unwrap().unwrap();
        assert_eq!(by_hash.id(), run.id());
        assert!(store.find_by_hash("no-such-hash").unwrap().is_none());
    }

    #[test]
    fn duplicate_experiments_are_refused() {
        let (registry, ids, _db, store) = setup();
        let run = make_run(&registry, ids, "dedup");
        store.record(&run).unwrap();
        let again = make_run(&registry, ids, "dedup");
        assert!(matches!(
            store.record(&again),
            Err(RunError::DuplicateRun { .. })
        ));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn status_updates_and_queries() {
        let (registry, ids, _db, store) = setup();
        let run = make_run(&registry, ids, "vips");
        store.record(&run).unwrap();
        store.set_status(run.id(), RunStatus::Running).unwrap();
        assert_eq!(store.find_by_status(RunStatus::Running).unwrap().len(), 1);
        assert!(store.find_by_status(RunStatus::Done).unwrap().is_empty());
        assert!(store.set_status(Uuid::NIL, RunStatus::Running).is_err());
    }

    #[test]
    fn results_round_trip_through_blob_store() {
        let (registry, ids, _db, store) = setup();
        let run = make_run(&registry, ids, "ferret");
        store.record(&run).unwrap();
        store
            .attach_results(run.id(), 123_456, "success", b"stats dump here")
            .unwrap();
        assert_eq!(
            store.load_results(run.id()).unwrap().as_ref(),
            b"stats dump here"
        );
        let doc = store.load(run.id()).unwrap();
        let _ = doc; // run decodes fine with results attached
    }

    #[test]
    fn transition_enforces_the_lifecycle() {
        let (registry, ids, _db, store) = setup();
        let run = make_run(&registry, ids, "lifecycle");
        store.record(&run).unwrap();
        store.transition(run.id(), RunStatus::Queued).unwrap();
        store.transition(run.id(), RunStatus::Running).unwrap();
        store.transition(run.id(), RunStatus::Done).unwrap();
        // Done is a sink — even the unchecked-looking rerun edge fails.
        let err = store.transition(run.id(), RunStatus::Queued).unwrap_err();
        assert!(matches!(
            err,
            RunError::IllegalTransition {
                from: RunStatus::Done,
                to: RunStatus::Queued
            }
        ));
        assert_eq!(store.load(run.id()).unwrap().status(), RunStatus::Done);
    }

    #[test]
    fn failed_runs_can_be_requeued() {
        let (registry, ids, _db, store) = setup();
        let run = make_run(&registry, ids, "requeue");
        store.record(&run).unwrap();
        store.transition(run.id(), RunStatus::Queued).unwrap();
        store.transition(run.id(), RunStatus::Running).unwrap();
        store.transition(run.id(), RunStatus::Failed).unwrap();
        store.transition(run.id(), RunStatus::Queued).unwrap();
        assert_eq!(store.load(run.id()).unwrap().status(), RunStatus::Queued);
    }

    #[test]
    fn status_changes_accumulate_in_the_event_log() {
        let (registry, ids, _db, store) = setup();
        let run = make_run(&registry, ids, "events");
        store.record(&run).unwrap();
        store.transition(run.id(), RunStatus::Queued).unwrap();
        store.transition(run.id(), RunStatus::Running).unwrap();
        store.transition(run.id(), RunStatus::Done).unwrap();
        assert_eq!(
            store.events(run.id()),
            vec!["status:queued", "status:running", "status:done"]
        );
        assert!(store.events(Uuid::NIL).is_empty());
    }

    #[test]
    fn log_event_appends_without_touching_status() {
        let (registry, ids, _db, store) = setup();
        let run = make_run(&registry, ids, "events");
        store.record(&run).unwrap();
        store.log_event(run.id(), "remote-dispatch:1:g2").unwrap();
        store.log_event(run.id(), "remote-ack:1:g2").unwrap();
        assert_eq!(
            store.events(run.id()),
            vec!["remote-dispatch:1:g2", "remote-ack:1:g2"]
        );
        assert_eq!(store.load(run.id()).unwrap().status(), run.status());
        assert!(store.log_event(Uuid::NIL, "remote-dispatch:1:g0").is_err());
    }

    #[test]
    fn attempts_are_recorded_with_history_and_events() {
        let (registry, ids, _db, store) = setup();
        let run = make_run(&registry, ids, "attempts");
        store.record(&run).unwrap();
        assert_eq!(store.attempt_count(run.id()), 0);
        assert!(store.attempt_history(run.id()).unwrap().is_empty());
        assert_eq!(
            store
                .record_attempt(run.id(), "errored", Duration::ZERO)
                .unwrap(),
            1
        );
        assert_eq!(
            store
                .record_attempt(run.id(), "succeeded", Duration::from_millis(250))
                .unwrap(),
            2
        );
        assert_eq!(store.attempt_count(run.id()), 2);
        assert_eq!(
            store.attempt_history(run.id()).unwrap(),
            vec![
                RunAttempt {
                    index: 1,
                    disposition: "errored".to_owned(),
                    delay_ms: 0
                },
                RunAttempt {
                    index: 2,
                    disposition: "succeeded".to_owned(),
                    delay_ms: 250
                },
            ]
        );
        assert_eq!(
            store.events(run.id()),
            vec!["attempt:1:errored", "attempt:2:succeeded"]
        );
        assert!(store
            .record_attempt(Uuid::NIL, "errored", Duration::ZERO)
            .is_err());
    }

    #[test]
    fn find_by_artifact_links_runs_to_inputs() {
        let (registry, ids, _db, store) = setup();
        let run_a = make_run(&registry, ids, "a");
        let run_b = make_run(&registry, ids, "b");
        store.record(&run_a).unwrap();
        store.record(&run_b).unwrap();
        let kernel = ids[3];
        let dependents = store.find_by_artifact(kernel).unwrap();
        assert_eq!(dependents.len(), 2);
        let ghost = Uuid::new_v3("t", "ghost");
        assert!(store.find_by_artifact(ghost).unwrap().is_empty());
    }
}
