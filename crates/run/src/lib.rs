//! # simart-run
//!
//! Run objects: provenance-complete descriptions of single simulation
//! runs — the analogue of the paper's `gem5art-run` package.
//!
//! A run is a *special artifact* that references every input artifact
//! (simulator binary + repository, run script, kernel, disk image) plus
//! the concrete parameters of one experiment. All of that information
//! together "specifies one unique experiment (a single data point)":
//! the run's [`FsRun::run_hash`] fingerprints it, so re-creating the
//! same run yields the same identity and the database rejects
//! accidental duplicates.
//!
//! ```
//! use simart_artifact::{Artifact, ArtifactKind, ArtifactRegistry, ContentSource};
//! use simart_run::FsRun;
//!
//! # fn main() -> Result<(), simart_run::RunError> {
//! let mut registry = ArtifactRegistry::new();
//! # let repo = registry.register(Artifact::builder("sim-repo", ArtifactKind::GitRepo)
//! #     .documentation("src").content(ContentSource::git("https://x", "rev"))).unwrap();
//! # let binary = registry.register(Artifact::builder("sim", ArtifactKind::Binary)
//! #     .documentation("bin").content(ContentSource::bytes(b"elf".to_vec())).input(repo.id())).unwrap();
//! # let script = registry.register(Artifact::builder("script", ArtifactKind::RunScript)
//! #     .documentation("cfg").content(ContentSource::bytes(b"py".to_vec()))).unwrap();
//! # let kernel = registry.register(Artifact::builder("vmlinux", ArtifactKind::Kernel)
//! #     .documentation("kernel").content(ContentSource::bytes(b"krn".to_vec()))).unwrap();
//! # let disk = registry.register(Artifact::builder("disk", ArtifactKind::DiskImage)
//! #     .documentation("img").content(ContentSource::bytes(b"img".to_vec()))).unwrap();
//! let run = FsRun::create(&registry)
//!     .simulator(binary.id(), "build/X86/sim.opt")
//!     .simulator_repo(repo.id())
//!     .run_script(script.id(), "configs/run.py")
//!     .kernel(kernel.id(), "vmlinux-5.4.51")
//!     .disk_image(disk.id(), "disks/parsec.img")
//!     .output_dir("results/run1")
//!     .param("blackscholes")
//!     .param("2")
//!     .timeout_seconds(15 * 60)
//!     .build()?;
//! assert_eq!(run.params(), ["blackscholes", "2"]);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod error;
mod fs_run;
mod se_run;
mod status;
mod store;

pub use error::RunError;
pub use fs_run::{FsRun, FsRunBuilder};
pub use se_run::SeRun;
pub use status::RunStatus;
pub use store::{RunAttempt, RunStore};
