//! Syscall-emulation run objects (`createSERun` in the original
//! framework).
//!
//! SE-mode runs need no kernel or disk image: just the simulator, a
//! run script, and a statically linked workload binary.

use crate::error::RunError;
use crate::status::RunStatus;
use simart_artifact::hash::Md5;
use simart_artifact::{ArtifactId, ArtifactKind, ArtifactRegistry, Uuid};
use std::time::Duration;

/// A syscall-emulation run description.
#[derive(Debug, Clone, PartialEq)]
pub struct SeRun {
    id: Uuid,
    hash: String,
    simulator: ArtifactId,
    run_script: ArtifactId,
    workload: ArtifactId,
    params: Vec<String>,
    timeout: Duration,
    status: RunStatus,
}

impl SeRun {
    /// Creates an SE run from its three artifacts and parameters.
    ///
    /// # Errors
    ///
    /// Rejects unregistered artifacts and wrong kinds, like
    /// [`crate::FsRun`].
    pub fn create(
        registry: &ArtifactRegistry,
        simulator: ArtifactId,
        run_script: ArtifactId,
        workload: ArtifactId,
        params: impl IntoIterator<Item = impl Into<String>>,
        timeout: Duration,
    ) -> Result<SeRun, RunError> {
        let check = |id: ArtifactId,
                     component: &'static str,
                     accepted: &[ArtifactKind]|
         -> Result<(), RunError> {
            let artifact = registry
                .get(id)
                .ok_or(RunError::UnknownArtifact { id, component })?;
            if !accepted.contains(artifact.kind()) {
                return Err(RunError::WrongKind {
                    component,
                    found: artifact.kind().to_string(),
                });
            }
            Ok(())
        };
        check(simulator, "simulator", &[ArtifactKind::Binary])?;
        check(
            run_script,
            "run_script",
            &[ArtifactKind::RunScript, ArtifactKind::GitRepo],
        )?;
        check(
            workload,
            "workload",
            &[ArtifactKind::Binary, ArtifactKind::BenchmarkSuite],
        )?;

        let params: Vec<String> = params.into_iter().map(Into::into).collect();
        let mut hasher = Md5::new();
        for id in [simulator, run_script, workload] {
            hasher.update(registry.get(id).expect("checked above").hash().as_bytes());
            hasher.update(b"/");
        }
        for param in &params {
            hasher.update(param.as_bytes());
            hasher.update(b"\x1f");
        }
        let hash = hasher.finalize().to_hex();
        let id = Uuid::new_v3("simart-se-run", &hash);
        Ok(SeRun {
            id,
            hash,
            simulator,
            run_script,
            workload,
            params,
            timeout,
            status: RunStatus::Created,
        })
    }

    /// The run's unique id.
    pub fn id(&self) -> Uuid {
        self.id
    }

    /// The run's identity hash.
    pub fn run_hash(&self) -> &str {
        &self.hash
    }

    /// The workload binary artifact.
    pub fn workload(&self) -> ArtifactId {
        self.workload
    }

    /// Run parameters.
    pub fn params(&self) -> &[String] {
        &self.params
    }

    /// Current status.
    pub fn status(&self) -> RunStatus {
        self.status
    }

    /// Timeout.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// Advances the lifecycle, like [`crate::FsRun::transition`].
    ///
    /// # Errors
    ///
    /// Returns the current status when the transition is illegal.
    pub fn transition(&mut self, next: RunStatus) -> Result<(), RunStatus> {
        if self.status.can_transition_to(next) {
            self.status = next;
            Ok(())
        } else {
            Err(self.status)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simart_artifact::{Artifact, ContentSource};

    fn setup() -> (ArtifactRegistry, ArtifactId, ArtifactId, ArtifactId) {
        let mut registry = ArtifactRegistry::new();
        let sim = registry
            .register(
                Artifact::builder("sim", ArtifactKind::Binary)
                    .documentation("bin")
                    .content(ContentSource::bytes(b"elf".to_vec())),
            )
            .unwrap();
        let script = registry
            .register(
                Artifact::builder("script", ArtifactKind::RunScript)
                    .documentation("cfg")
                    .content(ContentSource::bytes(b"py".to_vec())),
            )
            .unwrap();
        let workload = registry
            .register(
                Artifact::builder("bench", ArtifactKind::Binary)
                    .documentation("a static benchmark binary")
                    .content(ContentSource::bytes(b"bench".to_vec())),
            )
            .unwrap();
        (registry, sim.id(), script.id(), workload.id())
    }

    #[test]
    fn se_run_identity_is_stable() {
        let (registry, sim, script, workload) = setup();
        let a = SeRun::create(
            &registry,
            sim,
            script,
            workload,
            ["-n", "4"],
            Duration::from_secs(60),
        )
        .unwrap();
        let b = SeRun::create(
            &registry,
            sim,
            script,
            workload,
            ["-n", "4"],
            Duration::from_secs(60),
        )
        .unwrap();
        assert_eq!(a.id(), b.id());
        let c = SeRun::create(
            &registry,
            sim,
            script,
            workload,
            ["-n", "8"],
            Duration::from_secs(60),
        )
        .unwrap();
        assert_ne!(a.id(), c.id());
    }

    #[test]
    fn se_run_validates_kinds() {
        let (registry, sim, script, _) = setup();
        let err = SeRun::create(
            &registry,
            script,
            script,
            sim,
            Vec::<String>::new(),
            Duration::from_secs(1),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            RunError::WrongKind {
                component: "simulator",
                ..
            }
        ));
    }

    #[test]
    fn se_run_lifecycle() {
        let (registry, sim, script, workload) = setup();
        let mut run = SeRun::create(
            &registry,
            sim,
            script,
            workload,
            ["x"],
            Duration::from_secs(1),
        )
        .unwrap();
        run.transition(RunStatus::Running).unwrap();
        run.transition(RunStatus::Failed).unwrap();
        assert!(run.status().is_terminal());
    }
}
