//! Property-based tests for run identity: the hash that makes "one
//! unique experiment" checkable.

use proptest::prelude::*;
use simart_artifact::{Artifact, ArtifactKind, ArtifactRegistry, ContentSource};
use simart_run::{FsRun, RunStatus};

fn registry() -> (ArtifactRegistry, [simart_artifact::ArtifactId; 5]) {
    let mut registry = ArtifactRegistry::new();
    let repo = registry
        .register(
            Artifact::builder("repo", ArtifactKind::GitRepo)
                .documentation("src")
                .content(ContentSource::git("https://x", "rev")),
        )
        .unwrap();
    let binary = registry
        .register(
            Artifact::builder("bin", ArtifactKind::Binary)
                .documentation("bin")
                .content(ContentSource::bytes(b"elf".to_vec())),
        )
        .unwrap();
    let script = registry
        .register(
            Artifact::builder("script", ArtifactKind::RunScript)
                .documentation("cfg")
                .content(ContentSource::bytes(b"py".to_vec())),
        )
        .unwrap();
    let kernel = registry
        .register(
            Artifact::builder("kernel", ArtifactKind::Kernel)
                .documentation("krn")
                .content(ContentSource::bytes(b"krn".to_vec())),
        )
        .unwrap();
    let disk = registry
        .register(
            Artifact::builder("disk", ArtifactKind::DiskImage)
                .documentation("img")
                .content(ContentSource::bytes(b"img".to_vec())),
        )
        .unwrap();
    let ids = [binary.id(), repo.id(), script.id(), kernel.id(), disk.id()];
    (registry, ids)
}

fn build(
    registry: &ArtifactRegistry,
    ids: [simart_artifact::ArtifactId; 5],
    params: &[String],
    paths: (&str, &str),
) -> FsRun {
    let [binary, repo, script, kernel, disk] = ids;
    FsRun::create(registry)
        .simulator(binary, paths.0)
        .simulator_repo(repo)
        .run_script(script, "run.py")
        .kernel(kernel, "vmlinux")
        .disk_image(disk, paths.1)
        .params(params.iter().cloned())
        .build()
        .unwrap()
}

proptest! {
    /// Identical parameter vectors give identical run identity; any
    /// difference in the vector gives a different identity.
    #[test]
    fn run_hash_is_injective_over_params(
        a in proptest::collection::vec("[a-z0-9]{0,8}", 0..6),
        b in proptest::collection::vec("[a-z0-9]{0,8}", 0..6),
    ) {
        let (registry, ids) = registry();
        let run_a = build(&registry, ids, &a, ("sim", "disk.img"));
        let run_b = build(&registry, ids, &b, ("sim", "disk.img"));
        if a == b {
            prop_assert_eq!(run_a.run_hash(), run_b.run_hash());
            prop_assert_eq!(run_a.id(), run_b.id());
        } else {
            prop_assert_ne!(run_a.run_hash(), run_b.run_hash());
        }
    }

    /// Host paths never affect identity (they say where things live,
    /// not what the experiment is).
    #[test]
    fn run_hash_ignores_paths(
        params in proptest::collection::vec("[a-z0-9]{0,8}", 0..4),
        path_a in "[a-z/]{1,16}",
        path_b in "[a-z/]{1,16}",
    ) {
        let (registry, ids) = registry();
        let run_a = build(&registry, ids, &params, (&path_a, "x.img"));
        let run_b = build(&registry, ids, &params, (&path_b, "y.img"));
        prop_assert_eq!(run_a.run_hash(), run_b.run_hash());
    }

    /// The status machine only ever reaches a terminal state through
    /// Running, whatever transition sequence is attempted.
    #[test]
    fn lifecycle_safety(steps in proptest::collection::vec(0u8..6, 0..16)) {
        let (registry, ids) = registry();
        let mut run = build(&registry, ids, &["x".to_owned()], ("sim", "d.img"));
        let all = [
            RunStatus::Created,
            RunStatus::Queued,
            RunStatus::Running,
            RunStatus::Done,
            RunStatus::Failed,
            RunStatus::TimedOut,
        ];
        let mut was_running = false;
        for step in steps {
            let target = all[step as usize];
            let before = run.status();
            if run.transition(target).is_ok() {
                prop_assert!(before.can_transition_to(target));
                if target == RunStatus::Running {
                    was_running = true;
                }
                if target.is_terminal() {
                    prop_assert!(was_running, "terminal states only follow Running");
                }
            } else {
                prop_assert_eq!(run.status(), before, "failed transitions change nothing");
            }
        }
    }
}
