//! End-to-end crash-recovery tests for journaled campaign persistence.
//!
//! The journal's whole point: a campaign killed mid-flight — whether by
//! a dropped handle with no checkpoint or by `SIGKILL` on the CLI
//! process — loses **zero completed runs**. Resume picks up exactly
//! where the journal left off.

use simart::artifact::{Artifact, ArtifactId, ArtifactKind, ContentSource};
use simart::db::{Database, Filter};
use simart::run::{FsRun, RunStatus};
use simart::tasks::PoolScheduler;
use simart::{ExecOutcome, Experiment, LaunchOptions};
use std::path::PathBuf;
use std::process::{Command, Stdio};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("simart-journal-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn register_components(experiment: &Experiment) -> [ArtifactId; 5] {
    let mut ids = Vec::new();
    for (name, kind, doc) in [
        ("sim-repo", ArtifactKind::GitRepo, "src"),
        ("sim", ArtifactKind::Binary, "bin"),
        ("script", ArtifactKind::RunScript, "cfg"),
        ("vmlinux", ArtifactKind::Kernel, "kernel"),
        ("disk", ArtifactKind::DiskImage, "img"),
    ] {
        let mut builder = Artifact::builder(name, kind)
            .documentation(doc)
            .content(ContentSource::bytes(name.as_bytes().to_vec()));
        if name == "sim" {
            builder = builder.input(ids[0]);
        }
        ids.push(
            experiment
                .register_artifact(builder)
                .expect("register")
                .id(),
        );
    }
    [ids[1], ids[0], ids[2], ids[3], ids[4]]
}

fn make_run(experiment: &Experiment, ids: [ArtifactId; 5], app: &str) -> FsRun {
    let [binary, repo, script, kernel, disk] = ids;
    experiment
        .create_fs_run(|b| {
            b.simulator(binary, "sim")
                .simulator_repo(repo)
                .run_script(script, "run.py")
                .kernel(kernel, "vmlinux")
                .disk_image(disk, "disk.img")
                .param(app)
        })
        .expect("build run")
}

fn ok_outcome(tag: &str) -> ExecOutcome {
    ExecOutcome {
        outcome: "success".into(),
        sim_ticks: 1000,
        payload: format!("stats for {tag}").into_bytes(),
        success: true,
        events: vec![],
    }
}

/// Simulated crash: the experiment session ends without *any* explicit
/// save or checkpoint. Because every mutation was journaled at commit
/// time, a resumed session sees every completed run and re-queues only
/// the unfinished ones.
#[test]
fn dropped_session_without_checkpoint_loses_no_completed_run() {
    let dir = temp_dir("drop");
    let apps = ["a", "b", "c", "d"];
    let done_ids;
    {
        let experiment = Experiment::with_database("crashy", Database::open(&dir).expect("open"))
            .expect("experiment");
        let ids = register_components(&experiment);
        let runs: Vec<FsRun> = apps
            .iter()
            .map(|app| make_run(&experiment, ids, app))
            .collect();
        done_ids = vec![runs[0].id(), runs[2].id()];
        let pool = PoolScheduler::new(2);
        let summary = experiment.launch(runs, &pool, |run: &FsRun| {
            // "b" and "d" fail; "a" and "c" complete.
            if run.params()[0] == "b" || run.params()[0] == "d" {
                Err("kernel-panic".to_owned())
            } else {
                Ok(ok_outcome(&run.params()[0]))
            }
        });
        assert_eq!((summary.done, summary.failed), (2, 2));
        // Crash: drop everything. No save(), no checkpoint().
    }

    // Recovery session over the same directory.
    let experiment = Experiment::with_database("crashy", Database::open(&dir).expect("reopen"))
        .expect("experiment over recovered db");
    assert_eq!(
        experiment.runs().len(),
        4,
        "all four records survived the crash"
    );
    for id in &done_ids {
        let run = experiment.runs().load(*id).expect("completed run survived");
        assert_eq!(run.status(), RunStatus::Done);
        assert!(
            experiment.runs().load_results(*id).is_some(),
            "completed run kept its archived results"
        );
    }

    let ids = register_components(&experiment);
    let runs: Vec<FsRun> = apps
        .iter()
        .map(|app| make_run(&experiment, ids, app))
        .collect();
    let pool = PoolScheduler::new(2);
    let summary = experiment.launch_with(
        runs,
        &pool,
        |run: &FsRun| Ok(ok_outcome(&run.params()[0])),
        &LaunchOptions::resuming(),
    );
    // The two completed runs are never redone; the two failures heal.
    assert_eq!(summary.skipped_done, 2, "zero completed runs lost");
    assert_eq!((summary.requeued, summary.done), (2, 2));
    let db = experiment.database();
    assert_eq!(
        db.collection("runs").count(&Filter::eq("status", "done")),
        4
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

fn simart(args: &[&str]) -> (String, i32) {
    let output = Command::new(env!("CARGO_BIN_EXE_simart"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        output.status.code().unwrap_or(-1),
    )
}

/// Parses `skipped done N` out of the campaign summary line.
fn parse_skipped_done(stdout: &str) -> usize {
    let tail = stdout
        .split("skipped done ")
        .nth(1)
        .expect("summary line present");
    tail.split(|c: char| !c.is_ascii_digit())
        .next()
        .unwrap()
        .parse()
        .expect("count")
}

/// Hard crash: `SIGKILL` the CLI mid-campaign, then `--resume`. Every
/// run the killed process finished must be skipped as done by the
/// resumed one — the journal made them durable without any checkpoint.
#[test]
fn killed_campaign_process_loses_no_completed_run() {
    let dir = temp_dir("kill");
    let db = dir.to_str().unwrap();

    let mut child = Command::new(env!("CARGO_BIN_EXE_simart"))
        .args(["campaign", "--db", db])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("campaign starts");
    // Wait until the campaign has opened its database, let it get
    // partway through its six runs, then kill it cold. The exact
    // progress point doesn't matter — the invariant below holds for
    // any number of completed runs, zero through six.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !dir.exists() && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert!(dir.exists(), "campaign never opened its database");
    std::thread::sleep(std::time::Duration::from_millis(40));
    let _ = child.kill();
    let _ = child.wait();

    // Count what the dead process durably completed. (Lenient load: a
    // kill mid-append legitimately leaves a torn journal tail.)
    let before = Database::load(&dir).expect("journal replays after SIGKILL");
    let done_before = before
        .collection("runs")
        .count(&Filter::eq("status", "done"));
    drop(before);

    let (stdout, code) = simart(&["campaign", "--db", db, "--resume"]);
    assert_eq!(code, 0, "{stdout}");
    assert_eq!(
        parse_skipped_done(&stdout),
        done_before,
        "every run completed before the kill is honored on resume: {stdout}"
    );
    assert!(stdout.contains("database checkpointed"), "{stdout}");

    // After the clean resume everything is done and the journal has
    // been folded into the checkpoint.
    let (stdout, code) = simart(&["campaign", "--db", db, "--resume"]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("skipped done 6"), "{stdout}");
    let journal = std::fs::metadata(dir.join(simart::db::JOURNAL_FILE)).expect("journal file");
    assert_eq!(journal.len(), 0, "checkpoint compacted the journal");
    std::fs::remove_dir_all(&dir).unwrap();
}
