//! Cross-process chaos end-to-end tests for the remote scheduler: a
//! campaign run over real `simart worker` processes survives real
//! SIGKILLs with zero lost runs, and a poisoned campaign (every
//! delivery killed) exhausts the redelivery cap into the persistent
//! quarantine, coming back only through `simart quarantine --release`
//! plus `--resume` — all through the CLI, across process boundaries.

use simart::db::{Database, LoadOptions};
use simart::run::{RunStatus, RunStore};
use std::path::Path;
use std::process::Command;

fn simart(args: &[&str]) -> (String, String, i32) {
    let output = Command::new(env!("CARGO_BIN_EXE_simart"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
        output.status.code().unwrap_or(-1),
    )
}

fn open_runs(dir: &Path) -> (Database, RunStore) {
    let (db, _) = Database::load_with(dir, &LoadOptions::strict()).expect("load campaign db");
    let runs = RunStore::new(&db).expect("run store");
    (db, runs)
}

/// Kill a fraction of real worker PIDs mid-campaign: the coordinator
/// respawns replacements and redelivers every orphaned lease, the
/// campaign exits clean with zero lost runs, and the provenance trail
/// (`remote-dispatch`/`remote-ack` on every run) passes `simart check`
/// including the SA0015 orphaned-attempt audit.
#[test]
fn remote_chaos_campaign_completes_with_zero_lost_runs() {
    let dir = std::env::temp_dir().join(format!("simart-remote-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db_arg = dir.to_str().unwrap().to_owned();

    let (stdout, stderr, code) = simart(&[
        "campaign",
        "--db",
        &db_arg,
        "--scheduler",
        "remote",
        "--workers",
        "3",
        "--kill-rate",
        "0.4",
        "--fault-seed",
        "7",
        "--max-redeliveries",
        "5",
    ]);
    assert_eq!(code, 0, "stdout: {stdout}\nstderr: {stderr}");
    assert!(
        stdout.contains("done 6, failed 0, timed out 0, quarantined 0"),
        "{stdout}"
    );

    // The chaos was real: the injector SIGKILLed live worker PIDs and
    // the supervisor respawned and redelivered (seeded, so the fault
    // plan is stable across machines).
    let (metrics, _, code) = simart(&["metrics", "--db", &db_arg]);
    assert_eq!(code, 0);
    let counter = |name: &str| -> u64 {
        metrics
            .lines()
            .find(|l| l.contains(name))
            .and_then(|l| l.rsplit('=').next())
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or_else(|| panic!("no {name} counter in:\n{metrics}"))
    };
    assert!(counter("broker.remote_kills") >= 1, "{metrics}");
    assert!(counter("broker.remote_respawns") >= 1, "{metrics}");
    assert!(counter("broker.remote_redelivered") >= 1, "{metrics}");
    assert_eq!(counter("broker.remote_acks"), 6, "{metrics}");

    // Every run is Done with a full cross-process provenance trail.
    let (_db, runs) = open_runs(&dir);
    let done = runs.find_by_status(RunStatus::Done).unwrap();
    assert_eq!(done.len(), 6);
    for run in &done {
        let events = runs.events(run.id());
        assert!(
            events.iter().any(|e| e.starts_with("remote-dispatch:")),
            "no dispatch event on {}: {events:?}",
            run.id()
        );
        assert!(
            events.iter().any(|e| e.starts_with("remote-ack:")),
            "no ack event on {}: {events:?}",
            run.id()
        );
        assert!(
            runs.load_results(run.id()).is_some(),
            "results archived for {}",
            run.id()
        );
    }

    // The linter agrees: no orphaned remote attempts, nothing else.
    let (stdout, _, code) = simart(&["check", "--db", &db_arg]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("0 errors, 0 warnings"), "{stdout}");

    std::fs::remove_dir_all(&dir).unwrap();
}

/// The full network-chaos gauntlet over TCP: workers join the
/// coordinator over sockets while the seeded injector SIGKILLs live
/// PIDs *and* drops, resets, corrupts, and delays coordinator→worker
/// frames. The campaign must still complete with zero lost runs, the
/// reconnect/partition counters must record the chaos, and the lint
/// (including the SA0018 session-resume audit) must come back clean —
/// twice, because the fault *schedule* is a pure function of the seed
/// (`fault.rs` and `transport.rs` unit-test that purity directly;
/// which draws get consumed shifts with OS scheduling, so this test
/// asserts the invariant outcome, not raw counter equality).
#[test]
fn tcp_campaign_survives_partitions_resets_and_kills() {
    for tag in ["a", "b"] {
        let dir = std::env::temp_dir().join(format!(
            "simart-remote-tcp-chaos-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let db_arg = dir.to_str().unwrap().to_owned();
        let (stdout, stderr, code) = simart(&[
            "campaign",
            "--db",
            &db_arg,
            "--scheduler",
            "remote",
            "--transport",
            "tcp",
            "--workers",
            "3",
            "--partition-rate",
            "0.25",
            "--kill-rate",
            "0.4",
            "--fault-seed",
            "7",
            "--max-redeliveries",
            "12",
        ]);
        assert_eq!(code, 0, "stdout: {stdout}\nstderr: {stderr}");
        assert!(
            stdout.contains("done 6, failed 0, timed out 0, quarantined 0"),
            "{stdout}"
        );

        let (metrics, _, code) = simart(&["metrics", "--db", &db_arg]);
        assert_eq!(code, 0);
        let counter = |name: &str| -> u64 {
            metrics
                .lines()
                .find(|l| l.contains(name))
                .and_then(|l| l.rsplit('=').next())
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or_else(|| panic!("no {name} counter in:\n{metrics}"))
        };
        // The network chaos was real: connections were lost, sessions
        // resumed over fresh sockets, and the SIGKILL carnage ran on
        // top — yet every run completed exactly once.
        assert!(counter("broker.remote_partitions") >= 1, "{metrics}");
        assert!(counter("broker.remote_reconnects") >= 1, "{metrics}");
        assert!(counter("broker.remote_kills") >= 1, "{metrics}");
        assert_eq!(counter("broker.remote_acks"), 6, "{metrics}");

        // Every run is Done with a full provenance trail, and the
        // linter — SA0015 orphaned attempts and SA0018 session-resume
        // divergence included — finds nothing.
        let (_db, runs) = open_runs(&dir);
        let done = runs.find_by_status(RunStatus::Done).unwrap();
        assert_eq!(done.len(), 6);
        for run in &done {
            let events = runs.events(run.id());
            assert!(
                events.iter().any(|e| e.starts_with("remote-dispatch:")),
                "no dispatch event on {}: {events:?}",
                run.id()
            );
            assert!(
                events.iter().any(|e| e.starts_with("remote-ack:")),
                "no ack event on {}: {events:?}",
                run.id()
            );
        }
        let (check, _, code) = simart(&["check", "--db", &db_arg]);
        assert_eq!(code, 0, "{check}");
        assert!(check.contains("0 errors, 0 warnings"), "{check}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Every delivery killed: the cap is exhausted cross-process, the runs
/// land in the persistent quarantine, `--resume` refuses to touch
/// them, and an explicit `simart quarantine --release` re-queues one
/// run which then completes on its original record.
#[test]
fn remote_cap_exhaustion_quarantines_then_release_resumes() {
    let dir = std::env::temp_dir().join(format!("simart-remote-quar-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db_arg = dir.to_str().unwrap().to_owned();

    // Session 1: kill-rate 1.0 draws a SIGKILL on every dispatch, so
    // every run burns its single redelivery and quarantines.
    let (stdout, stderr, code) = simart(&[
        "campaign",
        "--db",
        &db_arg,
        "--scheduler",
        "remote",
        "--workers",
        "2",
        "--kill-rate",
        "1.0",
        "--max-redeliveries",
        "1",
    ]);
    assert_eq!(code, 1, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("quarantined 6"), "{stdout}");
    assert!(stdout.contains("done 0"), "{stdout}");

    let victim = {
        let (db, runs) = open_runs(&dir);
        let quarantined = runs.find_by_status(RunStatus::Quarantined).unwrap();
        assert_eq!(quarantined.len(), 6);
        let letters = simart::quarantine::load_all(&db).unwrap();
        assert_eq!(letters.len(), 6);
        assert!(letters.iter().all(|l| !l.released));
        assert!(
            letters.iter().all(|l| l.error.contains("redelivery cap")),
            "{:?}",
            letters[0].error
        );
        quarantined[0].id()
    };

    // Resume never touches quarantine: everything is skipped (and a
    // fully-skipped campaign is not a failure).
    let (stdout, _, code) = simart(&[
        "campaign",
        "--db",
        &db_arg,
        "--scheduler",
        "remote",
        "--workers",
        "2",
        "--resume",
    ]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("skipped quarantined 6"), "{stdout}");

    // The CLI lists the letters; release exactly one.
    let id_str = victim.to_string();
    let (stdout, _, code) = simart(&["quarantine", "--db", &db_arg]);
    assert_eq!(code, 0);
    assert!(stdout.contains(&id_str), "{stdout}");
    let (stdout, stderr, code) = simart(&["quarantine", "--db", &db_arg, "--release", &id_str]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains("released"), "{stdout}");

    // Session 2: chaos off, resume picks up only the released run.
    let (stdout, stderr, code) = simart(&[
        "campaign",
        "--db",
        &db_arg,
        "--scheduler",
        "remote",
        "--workers",
        "2",
        "--resume",
    ]);
    assert_eq!(code, 0, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("done 1"), "{stdout}");
    assert!(stdout.contains("skipped quarantined 5"), "{stdout}");
    {
        let (_db, runs) = open_runs(&dir);
        assert_eq!(runs.load(victim).unwrap().status(), RunStatus::Done);
    }

    // Consistent quarantine + released letter lint clean (SA0014 and
    // SA0015 both quiet).
    let (stdout, _, code) = simart(&["check", "--db", &db_arg]);
    assert_eq!(code, 0, "{stdout}");

    std::fs::remove_dir_all(&dir).unwrap();
}
