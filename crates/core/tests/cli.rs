//! End-to-end tests of the `simart` CLI binary.

use std::process::Command;

fn simart(args: &[&str]) -> (String, String, i32) {
    let output = Command::new(env!("CARGO_BIN_EXE_simart"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
        output.status.code().unwrap_or(-1),
    )
}

#[test]
fn no_arguments_prints_usage() {
    let (_, stderr, code) = simart(&[]);
    assert_eq!(code, 2);
    assert!(stderr.contains("usage: simart"));
}

#[test]
fn catalog_lists_all_resources() {
    let (stdout, _, code) = simart(&["catalog"]);
    assert_eq!(code, 0);
    for name in ["boot-exit", "parsec", "GCN-docker", "gem5-tests"] {
        assert!(stdout.contains(name), "missing {name}");
    }
}

#[test]
fn boot_reports_success_and_failure_via_exit_code() {
    let (stdout, _, code) = simart(&[
        "boot", "--cpu", "kvm", "--cores", "4", "--mem", "mesi", "--kernel", "5.4",
    ]);
    assert_eq!(code, 0, "kvm boots everywhere: {stdout}");
    assert!(stdout.contains("outcome       : success"));

    // Atomic CPU on Ruby is the canonical unsupported configuration.
    let (stdout, _, code) = simart(&["boot", "--cpu", "atomic", "--mem", "mi"]);
    assert_eq!(code, 1, "unsupported boot exits nonzero: {stdout}");
    assert!(stdout.contains("unsupported"));
}

#[test]
fn gpu_subcommand_validates_workloads() {
    let (stdout, _, code) = simart(&["gpu", "2dshfl"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("shader ticks"));

    let (_, stderr, code) = simart(&["gpu", "not-a-kernel"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("unknown GPU workload"));
}

#[test]
fn selftest_passes() {
    let (stdout, _, code) = simart(&["selftest"]);
    assert_eq!(code, 0, "{stdout}");
    assert_eq!(stdout.matches("PASS").count(), 5);
    assert_eq!(stdout.matches("FAIL").count(), 0);
}

#[test]
fn campaign_persists_and_resumes() {
    let dir = std::env::temp_dir().join(format!("simart-cli-campaign-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = dir.to_str().unwrap();

    // Session 1: every run fails under a saturating fault injector —
    // this is the "crashed/flaky campaign" whose state is persisted.
    let (stdout, _, code) = simart(&["campaign", "--db", db, "--fault-rate", "1.0"]);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("fresh 6"), "{stdout}");
    assert!(stdout.contains("failed 6"), "{stdout}");
    assert!(stdout.contains("database checkpointed"), "{stdout}");

    // Session 2 without --resume: the stored runs are duplicates.
    let (stdout, _, code) = simart(&["campaign", "--db", db]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("skipped duplicates 6"), "{stdout}");

    // Session 3 with --resume and no faults: all six are re-queued
    // under their original records and succeed this time.
    let (stdout, _, code) = simart(&["campaign", "--db", db, "--resume"]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("requeued 6"), "{stdout}");
    assert!(stdout.contains("done 6"), "{stdout}");

    // Session 4 with --resume: everything is already done.
    let (stdout, _, code) = simart(&["campaign", "--db", db, "--resume"]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("skipped done 6"), "{stdout}");
    assert!(stdout.contains("done 0"), "{stdout}");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn matrix_totals_match_figure_8() {
    let (stdout, _, code) = simart(&["matrix"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("| kernel-panic | 27"));
    assert!(stdout.contains("| sim-crash    | 11"));
    assert!(stdout.contains("| deadlock     | 4"));
}
