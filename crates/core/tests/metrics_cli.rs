//! Golden-file tests for the `simart metrics` CLI and an end-to-end
//! check that `simart campaign --trace-out` produces a valid Chrome
//! trace whose metrics are inspectable afterwards.
//!
//! The text-report test is byte-exact on purpose: the report is the
//! stable human interface to recorded metrics, and any formatting
//! drift should be a conscious decision, not an accident.

use simart::db::{json, Database, Value};
use simart::metrics::persist_snapshot;
use simart::observe::{HistogramSnapshot, MetricValue, Snapshot};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("simart-metrics-cli-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_simart(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_simart"))
        .args(args)
        .output()
        .expect("running simart")
}

fn run_metrics(db_dir: &Path, extra: &[&str]) -> Output {
    let mut args = vec!["metrics", "--db", db_dir.to_str().unwrap()];
    args.extend_from_slice(extra);
    run_simart(&args)
}

/// A deterministic snapshot exercising all three metric kinds. The
/// histogram's three observations all land in the 10 000 µs bucket, so
/// every reported quantile is exactly that bucket's bound.
fn fixture_snapshot() -> Snapshot {
    let mut snapshot = Snapshot::default();
    snapshot
        .metrics
        .insert("sim.boots".to_owned(), MetricValue::Counter(6));
    snapshot
        .metrics
        .insert("pool.depth".to_owned(), MetricValue::Gauge(-2));
    let mut h = HistogramSnapshot::empty();
    h.count = 3;
    h.sum_us = 27_500;
    h.buckets[12] = 3; // the 10_000 µs bucket
    snapshot
        .metrics
        .insert("db.checkpoint_us".to_owned(), MetricValue::Histogram(h));
    snapshot
}

fn seed_fixture_db(dir: &Path) -> Snapshot {
    let db = Database::in_memory();
    let snapshot = fixture_snapshot();
    persist_snapshot(&db, &snapshot).expect("seed metrics");
    db.save(dir).expect("save fixture db");
    snapshot
}

#[test]
fn text_report_is_byte_exact() {
    let dir = temp_dir("golden-text");
    seed_fixture_db(&dir);
    let out = run_metrics(&dir, &[]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let golden = "histogram  db.checkpoint_us: count 3, sum 27500us, \
                  p50 10000us, p95 10000us, p99 10000us\n\
                  gauge      pool.depth = -2\n\
                  counter    sim.boots = 6\n\
                  metrics: 3 recorded\n";
    assert_eq!(String::from_utf8_lossy(&out.stdout), golden);
}

#[test]
fn json_report_matches_library_rendering() {
    let dir = temp_dir("golden-json");
    let snapshot = seed_fixture_db(&dir);
    let out = run_metrics(&dir, &["--format", "json"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The CLI reconstructs the snapshot from persisted documents; its
    // JSON must round-trip to the library rendering of the original.
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        format!("{}\n", snapshot.render_json())
    );
}

#[test]
fn database_without_metrics_reports_zero() {
    let dir = temp_dir("no-metrics");
    let db = Database::in_memory();
    db.collection("runs")
        .insert(Value::map([("_id", Value::from("r0"))]))
        .expect("seed run");
    db.save(&dir).expect("save db");
    let out = run_metrics(&dir, &[]);
    assert!(out.status.success());
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        "metrics: 0 recorded\n"
    );
}

#[test]
fn nonexistent_database_is_exit_2_with_one_line_error() {
    let dir = temp_dir("missing"); // never created
    let out = run_metrics(&dir, &[]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no database at"), "stderr: {stderr}");
    assert_eq!(stderr.trim_end().lines().count(), 1, "one line: {stderr}");
}

#[test]
fn torn_database_is_exit_2_with_one_line_error() {
    let dir = temp_dir("torn");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("metrics.jsonl"), "{\"_id\": \"truncated").unwrap();
    let out = run_metrics(&dir, &[]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.starts_with("error:"), "stderr: {stderr}");
    assert_eq!(stderr.trim_end().lines().count(), 1, "one line: {stderr}");
}

#[test]
fn malformed_metric_document_is_exit_2() {
    let dir = temp_dir("bad-doc");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("metrics.jsonl"),
        "{\"_id\": \"weird\", \"kind\": \"sparkline\"}\n",
    )
    .unwrap();
    let out = run_metrics(&dir, &[]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown kind"), "stderr: {stderr}");
}

#[test]
fn missing_db_flag_is_a_usage_error() {
    let out = run_simart(&["metrics"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).starts_with("usage:"));
}

#[test]
fn unknown_format_is_a_usage_error() {
    let dir = temp_dir("bad-format");
    seed_fixture_db(&dir);
    let out = run_metrics(&dir, &["--format", "yaml"]);
    assert_eq!(out.status.code(), Some(2));
}

/// End-to-end: run a campaign with a database and a trace file, then
/// inspect it. This pins the two headline acceptance behaviours — the
/// trace is a valid Chrome `trace_event` document, and `simart
/// metrics` reports the scheduler queue-wait and db-save histograms.
#[test]
fn campaign_trace_and_metrics_end_to_end() {
    let dir = temp_dir("e2e");
    let trace_path = temp_dir("e2e-trace").with_extension("json");
    let out = run_simart(&[
        "campaign",
        "--db",
        dir.to_str().unwrap(),
        "--trace-out",
        trace_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("metrics:"), "stdout: {stdout}");
    assert!(stdout.contains("trace written to"), "stdout: {stdout}");

    // The trace must be well-formed JSON in Chrome trace_event shape.
    let text = std::fs::read_to_string(&trace_path).expect("trace file exists");
    let trace = json::from_json(&text).expect("trace parses as JSON");
    let events = trace
        .at("traceEvents")
        .and_then(Value::as_array)
        .expect("trace has a traceEvents array");
    assert!(!events.is_empty(), "trace records at least one event");
    for event in events {
        let ph = event
            .at("ph")
            .and_then(Value::as_str)
            .expect("event has ph");
        assert!(ph == "X" || ph == "i", "unexpected phase {ph}");
        assert_eq!(event.at("cat").and_then(Value::as_str), Some("simart"));
        assert!(
            event.at("ts").and_then(Value::as_int).is_some(),
            "event has ts"
        );
        if ph == "X" {
            assert!(
                event.at("dur").and_then(Value::as_int).is_some(),
                "span has dur"
            );
        }
    }

    // The recorded metrics are inspectable afterwards and include the
    // scheduler queue-wait and journal-append histograms (the campaign
    // runs attached, so run-state transitions append to the journal
    // inside the capture window).
    let report = run_metrics(&dir, &[]);
    assert!(report.status.success());
    let text = String::from_utf8_lossy(&report.stdout);
    assert!(
        text.contains("histogram  tasks.queue_wait_us:"),
        "report: {text}"
    );
    assert!(
        text.contains("histogram  db.journal_append_us:"),
        "report: {text}"
    );
    assert!(text.contains("counter    sim.boots"), "report: {text}");
}
