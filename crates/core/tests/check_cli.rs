//! Golden-file tests for the `simart check` CLI: a clean fixture
//! database exits 0 with empty reports, and every seeded defect class
//! surfaces its stable SA code in both the text and JSON formats, with
//! byte-exact output for a fixed fixture.

use simart::artifact::Uuid;
use simart::db::{BlobKey, Database, Value};
use std::path::PathBuf;
use std::process::{Command, Output};

fn uuid(name: &str) -> String {
    Uuid::new_v3("check-cli", name).to_string()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("simart-check-cli-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_check(db_dir: &PathBuf, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_simart"))
        .arg("check")
        .arg("--db")
        .arg(db_dir)
        .args(extra)
        .output()
        .expect("running simart check")
}

fn seed_artifact(db: &Database, id: &str, inputs: &[&str], hash: &str, payload: Option<&str>) {
    let mut doc = Value::map([
        ("_id", Value::from(id)),
        ("name", Value::from("fixture")),
        ("kind", Value::from("binary")),
        ("hash", Value::from(hash)),
        ("inputs", Value::array(inputs.iter().map(|i| Value::from(*i)))),
    ]);
    if let Some(payload) = payload {
        doc.set_at("payload", Value::from(payload));
    }
    db.collection("artifacts").insert(doc).expect("seed artifact");
}

fn seed_run(db: &Database, id: &str, hash: &str, status: &str, inputs: &[&str], events: &[&str]) {
    db.collection("runs")
        .insert(Value::map([
            ("_id", Value::from(id)),
            ("hash", Value::from(hash)),
            ("status", Value::from(status)),
            ("inputs", Value::array(inputs.iter().map(|i| Value::from(*i)))),
            ("events", Value::array(events.iter().map(|e| Value::from(*e)))),
        ]))
        .expect("seed run");
}

#[test]
fn clean_database_exits_zero_with_empty_reports() {
    let dir = temp_dir("clean");
    let db = Database::in_memory();
    let a = uuid("clean-artifact");
    seed_artifact(&db, &a, &[], "hash-clean", None);
    seed_run(&db, "run-1", "rh-1", "done", &[&a], &[
        "status:queued",
        "status:running",
        "status:done",
    ]);
    db.save(&dir).expect("save fixture");

    let text = run_check(&dir, &[]);
    assert_eq!(text.status.code(), Some(0), "{text:?}");
    assert_eq!(
        String::from_utf8_lossy(&text.stdout),
        "check: 0 errors, 0 warnings\n"
    );

    let json = run_check(&dir, &["--format", "json"]);
    assert_eq!(json.status.code(), Some(0));
    assert_eq!(String::from_utf8_lossy(&json.stdout).trim(), "[]");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_database_is_a_usage_error() {
    let dir = temp_dir("missing").join("nope");
    let out = run_check(&dir, &[]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

/// One seeded defect per static lint code; each must surface its SA
/// code in both output formats, and the text report must match the
/// golden rendering byte for byte.
#[test]
fn every_seeded_defect_reports_its_code() {
    let dir = temp_dir("defects");
    let db = Database::in_memory();
    let (cyc_a, cyc_b) = (uuid("cyc-a"), uuid("cyc-b"));
    let orphan = uuid("orphan-input");
    let ghost = uuid("ghost");
    let holder = uuid("orphan-holder");
    // SA0002: cycle. SA0003: orphan input. SA0004: missing payload blob.
    // SA0008: duplicate hash.
    seed_artifact(&db, &cyc_a, &[&cyc_b], "hash-a", None);
    seed_artifact(&db, &cyc_b, &[&cyc_a], "hash-b", None);
    seed_artifact(&db, &holder, &[&orphan], "hash-dup", None);
    seed_artifact(&db, &uuid("dup"), &[], "hash-dup", Some(&"0".repeat(32)));
    // SA0001 + SA0006 + SA0011: dangling input, illegal transition, and
    // a status field that disagrees with the replay.
    seed_run(&db, "run-bad", "rh-bad", "done", &[&ghost], &["status:queued", "status:done"]);
    // SA0007: retrying without a failed attempt.
    seed_run(&db, "run-retry", "rh-retry", "retrying", &[], &[
        "status:queued",
        "status:running",
        "status:retrying",
    ]);
    // SA0009: duplicate run hash.
    seed_run(&db, "run-dup-1", "rh-dup", "created", &[], &[]);
    seed_run(&db, "run-dup-2", "rh-dup", "created", &[], &[]);
    db.save(&dir).expect("save fixture");
    // SA0005: a blob file whose content does not hash to its name.
    let fake = BlobKey::for_content(b"what the file should hold").to_hex();
    std::fs::write(dir.join("blobs").join(&fake), b"tampered").expect("tamper blob");
    let actual_hash = BlobKey::for_content(b"tampered").to_hex();

    let text = run_check(&dir, &[]);
    assert_eq!(text.status.code(), Some(1), "{text:?}");
    let stdout = String::from_utf8_lossy(&text.stdout);
    let golden = format!(
        "error[SA0001] dangling-artifact-ref: input artifact {ghost} is not in the artifact collection (run:run-bad)\n\
         error[SA0002] artifact-cycle: artifact dependency cycle through [{m0}, {m1}] (artifact:{m0})\n\
         error[SA0003] orphan-artifact-input: input {orphan} is referenced by [{holder}] but no artifact document declares it (artifact:{orphan})\n\
         error[SA0004] missing-blob: payload blob {zeros} is not in the blob store (artifact:{dup})\n\
         error[SA0005] hash-mismatch: blob content hashes to {actual_hash}, not to its file name (blob:{fake})\n\
         error[SA0006] lifecycle-violation: event log records illegal transition queued -> done (run:run-bad)\n\
         warning[SA0007] retry-without-failure: run entered retrying with no prior failed attempt on record (run:run-retry)\n\
         warning[SA0008] duplicate-artifact: artifacts [{d0}, {d1}] share content hash hash-dup but were not deduplicated (hash:hash-dup)\n\
         warning[SA0009] duplicate-run-hash: runs [run-dup-1, run-dup-2] share run hash rh-dup; duplicate experiments should be refused (hash:rh-dup)\n\
         check: 6 errors, 3 warnings\n",
        m0 = std::cmp::min(&cyc_a, &cyc_b),
        m1 = std::cmp::max(&cyc_a, &cyc_b),
        zeros = "0".repeat(32),
        dup = uuid("dup"),
        d0 = std::cmp::min(holder.clone(), uuid("dup")),
        d1 = std::cmp::max(holder.clone(), uuid("dup")),
    );
    assert_eq!(stdout, golden);

    let json = run_check(&dir, &["--format", "json"]);
    assert_eq!(json.status.code(), Some(1));
    let json_out = String::from_utf8_lossy(&json.stdout);
    for code in
        ["SA0001", "SA0002", "SA0003", "SA0004", "SA0005", "SA0006", "SA0007", "SA0008", "SA0009"]
    {
        assert!(stdout.contains(code), "text output lacks {code}: {stdout}");
        assert!(json_out.contains(&format!("\"code\":\"{code}\"")), "json lacks {code}");
    }
    // SA0011 rides along on run-bad (status 'done' vs replay 'done'?
    // no: replay ends 'done' there). Check it separately below.
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn status_event_mismatch_is_reported() {
    let dir = temp_dir("sa0011");
    let db = Database::in_memory();
    seed_run(&db, "run-drift", "rh", "done", &[], &["status:queued", "status:running"]);
    db.save(&dir).expect("save fixture");
    let out = run_check(&dir, &[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "warning-only report: {stdout}");
    assert!(stdout.contains("warning[SA0011] status-event-mismatch"), "{stdout}");

    let json = run_check(&dir, &["--format", "json"]);
    assert!(String::from_utf8_lossy(&json.stdout).contains("\"code\":\"SA0011\""));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deny_warnings_makes_warnings_fatal_and_allow_suppresses() {
    let dir = temp_dir("levels");
    let db = Database::in_memory();
    seed_run(&db, "run-dup-1", "rh-dup", "created", &[], &[]);
    seed_run(&db, "run-dup-2", "rh-dup", "created", &[], &[]);
    db.save(&dir).expect("save fixture");

    // Default: a warning, exit 0.
    let out = run_check(&dir, &[]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("warning[SA0009]"));

    // --deny warnings: promoted to error, exit 1.
    let deny = run_check(&dir, &["--deny", "warnings"]);
    assert_eq!(deny.status.code(), Some(1), "{deny:?}");
    assert!(String::from_utf8_lossy(&deny.stdout).contains("error[SA0009]"));

    // --deny by name works too.
    let by_name = run_check(&dir, &["--deny", "duplicate-run-hash"]);
    assert_eq!(by_name.status.code(), Some(1));

    // --allow suppresses the finding entirely.
    let allow = run_check(&dir, &["--allow", "SA0009"]);
    assert_eq!(allow.status.code(), Some(0));
    assert_eq!(
        String::from_utf8_lossy(&allow.stdout),
        "check: 0 errors, 0 warnings\n"
    );

    // Unknown lint names are usage errors.
    let bogus = run_check(&dir, &["--deny", "no-such-lint"]);
    assert_eq!(bogus.status.code(), Some(2));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn self_test_subcommand_passes() {
    let out = Command::new(env!("CARGO_BIN_EXE_simart"))
        .args(["check", "--self-test"])
        .output()
        .expect("running self-test");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("PASS  lint self-test"), "{stdout}");
}
