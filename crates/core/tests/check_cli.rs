//! Golden-file tests for the `simart check` CLI: a clean fixture
//! database exits 0 with empty reports, and every seeded defect class
//! surfaces its stable SA code in both the text and JSON formats, with
//! byte-exact output for a fixed fixture.

use simart::artifact::Uuid;
use simart::db::{BlobKey, Database, Value};
use std::path::PathBuf;
use std::process::{Command, Output};

fn uuid(name: &str) -> String {
    Uuid::new_v3("check-cli", name).to_string()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("simart-check-cli-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_check(db_dir: &PathBuf, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_simart"))
        .arg("check")
        .arg("--db")
        .arg(db_dir)
        .args(extra)
        .output()
        .expect("running simart check")
}

fn seed_artifact(db: &Database, id: &str, inputs: &[&str], hash: &str, payload: Option<&str>) {
    let mut doc = Value::map([
        ("_id", Value::from(id)),
        ("name", Value::from("fixture")),
        ("kind", Value::from("binary")),
        ("hash", Value::from(hash)),
        (
            "inputs",
            Value::array(inputs.iter().map(|i| Value::from(*i))),
        ),
    ]);
    if let Some(payload) = payload {
        doc.set_at("payload", Value::from(payload));
    }
    db.collection("artifacts")
        .insert(doc)
        .expect("seed artifact");
}

fn seed_run(db: &Database, id: &str, hash: &str, status: &str, inputs: &[&str], events: &[&str]) {
    db.collection("runs")
        .insert(Value::map([
            ("_id", Value::from(id)),
            ("hash", Value::from(hash)),
            ("status", Value::from(status)),
            (
                "inputs",
                Value::array(inputs.iter().map(|i| Value::from(*i))),
            ),
            (
                "events",
                Value::array(events.iter().map(|e| Value::from(*e))),
            ),
        ]))
        .expect("seed run");
}

#[test]
fn clean_database_exits_zero_with_empty_reports() {
    let dir = temp_dir("clean");
    let db = Database::in_memory();
    let a = uuid("clean-artifact");
    seed_artifact(&db, &a, &[], "hash-clean", None);
    seed_run(
        &db,
        "run-1",
        "rh-1",
        "done",
        &[&a],
        &["status:queued", "status:running", "status:done"],
    );
    db.save(&dir).expect("save fixture");

    let text = run_check(&dir, &[]);
    assert_eq!(text.status.code(), Some(0), "{text:?}");
    assert_eq!(
        String::from_utf8_lossy(&text.stdout),
        "check: 0 errors, 0 warnings\n"
    );

    let json = run_check(&dir, &["--format", "json"]);
    assert_eq!(json.status.code(), Some(0));
    assert_eq!(String::from_utf8_lossy(&json.stdout).trim(), "[]");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_database_is_a_usage_error() {
    let dir = temp_dir("missing").join("nope");
    let out = run_check(&dir, &[]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

/// One seeded defect per static lint code; each must surface its SA
/// code in both output formats, and the text report must match the
/// golden rendering byte for byte.
#[test]
fn every_seeded_defect_reports_its_code() {
    let dir = temp_dir("defects");
    let db = Database::in_memory();
    let (cyc_a, cyc_b) = (uuid("cyc-a"), uuid("cyc-b"));
    let orphan = uuid("orphan-input");
    let ghost = uuid("ghost");
    let holder = uuid("orphan-holder");
    // SA0002: cycle. SA0003: orphan input. SA0004: missing payload blob.
    // SA0008: duplicate hash.
    seed_artifact(&db, &cyc_a, &[&cyc_b], "hash-a", None);
    seed_artifact(&db, &cyc_b, &[&cyc_a], "hash-b", None);
    seed_artifact(&db, &holder, &[&orphan], "hash-dup", None);
    seed_artifact(&db, &uuid("dup"), &[], "hash-dup", Some(&"0".repeat(32)));
    // SA0001 + SA0006 + SA0011: dangling input, illegal transition, and
    // a status field that disagrees with the replay.
    seed_run(
        &db,
        "run-bad",
        "rh-bad",
        "done",
        &[&ghost],
        &["status:queued", "status:done"],
    );
    // SA0007: retrying without a failed attempt.
    seed_run(
        &db,
        "run-retry",
        "rh-retry",
        "retrying",
        &[],
        &["status:queued", "status:running", "status:retrying"],
    );
    // SA0009: duplicate run hash.
    seed_run(&db, "run-dup-1", "rh-dup", "created", &[], &[]);
    seed_run(&db, "run-dup-2", "rh-dup", "created", &[], &[]);
    db.save(&dir).expect("save fixture");
    // SA0005: a blob file whose content does not hash to its name.
    let fake = BlobKey::for_content(b"what the file should hold").to_hex();
    std::fs::write(dir.join("blobs").join(&fake), b"tampered").expect("tamper blob");
    let actual_hash = BlobKey::for_content(b"tampered").to_hex();

    let text = run_check(&dir, &[]);
    assert_eq!(text.status.code(), Some(1), "{text:?}");
    let stdout = String::from_utf8_lossy(&text.stdout);
    let golden = format!(
        "error[SA0001] dangling-artifact-ref: input artifact {ghost} is not in the artifact collection (run:run-bad)\n\
         error[SA0002] artifact-cycle: artifact dependency cycle through [{m0}, {m1}] (artifact:{m0})\n\
         error[SA0003] orphan-artifact-input: input {orphan} is referenced by [{holder}] but no artifact document declares it (artifact:{orphan})\n\
         error[SA0004] missing-blob: payload blob {zeros} is not in the blob store (artifact:{dup})\n\
         error[SA0005] hash-mismatch: blob content hashes to {actual_hash}, not to its file name (blob:{fake})\n\
         error[SA0006] lifecycle-violation: event log records illegal transition queued -> done (run:run-bad)\n\
         warning[SA0007] retry-without-failure: run entered retrying with no prior failed attempt on record (run:run-retry)\n\
         warning[SA0008] duplicate-artifact: artifacts [{d0}, {d1}] share content hash hash-dup but were not deduplicated (hash:hash-dup)\n\
         warning[SA0009] duplicate-run-hash: runs [run-dup-1, run-dup-2] share run hash rh-dup; duplicate experiments should be refused (hash:rh-dup)\n\
         check: 6 errors, 3 warnings\n",
        m0 = std::cmp::min(&cyc_a, &cyc_b),
        m1 = std::cmp::max(&cyc_a, &cyc_b),
        zeros = "0".repeat(32),
        dup = uuid("dup"),
        d0 = std::cmp::min(holder.clone(), uuid("dup")),
        d1 = std::cmp::max(holder.clone(), uuid("dup")),
    );
    assert_eq!(stdout, golden);

    let json = run_check(&dir, &["--format", "json"]);
    assert_eq!(json.status.code(), Some(1));
    let json_out = String::from_utf8_lossy(&json.stdout);
    for code in [
        "SA0001", "SA0002", "SA0003", "SA0004", "SA0005", "SA0006", "SA0007", "SA0008", "SA0009",
    ] {
        assert!(stdout.contains(code), "text output lacks {code}: {stdout}");
        assert!(
            json_out.contains(&format!("\"code\":\"{code}\"")),
            "json lacks {code}"
        );
    }
    // SA0011 rides along on run-bad (status 'done' vs replay 'done'?
    // no: replay ends 'done' there). Check it separately below.
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn status_event_mismatch_is_reported() {
    let dir = temp_dir("sa0011");
    let db = Database::in_memory();
    seed_run(
        &db,
        "run-drift",
        "rh",
        "done",
        &[],
        &["status:queued", "status:running"],
    );
    db.save(&dir).expect("save fixture");
    let out = run_check(&dir, &[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "warning-only report: {stdout}");
    assert!(
        stdout.contains("warning[SA0011] status-event-mismatch"),
        "{stdout}"
    );

    let json = run_check(&dir, &["--format", "json"]);
    assert!(String::from_utf8_lossy(&json.stdout).contains("\"code\":\"SA0011\""));
    let _ = std::fs::remove_dir_all(&dir);
}

/// One seeded defect per journal-layout, quarantine, and checkpoint
/// lint code (SA0012–SA0016); like the SA0001–SA0011 fixture, the text
/// report must match the golden rendering byte for byte and the JSON
/// report must carry every code.
#[test]
fn journal_and_quarantine_defects_report_their_codes() {
    let dir = temp_dir("journal-defects");
    {
        // Checkpointed base: two unreleased dead letters (one pointing
        // at a missing run, one at a re-queued run — SA0014) and a run
        // whose last remote dispatch was never acked (SA0015).
        let db = Database::in_memory();
        seed_run(&db, "run-requeued", "rh-rq", "created", &[], &[]);
        seed_run(
            &db,
            "run-orphan",
            "rh-orph",
            "running",
            &[],
            &["status:queued", "status:running", "remote-dispatch:3:g2"],
        );
        // …and a run restored from a checkpoint whose key disagrees
        // with the one its configuration declared (SA0016).
        seed_run(
            &db,
            "run-stale",
            "rh-stale",
            "done",
            &[],
            &[
                "status:queued",
                "status:running",
                "checkpoint-key:1111111111111111",
                "checkpoint-restore:2222222222222222",
                "status:done",
            ],
        );
        for letter in ["run-gone", "run-requeued"] {
            db.collection("quarantine")
                .insert(Value::map([
                    ("_id", Value::from(letter)),
                    ("released", Value::from(false)),
                ]))
                .expect("seed dead letter");
        }
        db.save(&dir).expect("save fixture");
    }
    {
        // One journal record not folded into the checkpoints (SA0012)…
        let db = Database::open(&dir).expect("reopen attached");
        seed_run(&db, "run-div", "rh-div", "created", &[], &[]);
    }
    // …that also collides with a hand-written checkpoint version of the
    // same document (SA0013), plus a torn 3-byte tail (second SA0012).
    let checkpoint = dir.join("runs.jsonl");
    let mut runs = std::fs::read_to_string(&checkpoint).expect("read checkpoint");
    runs.push_str("{\"_id\":\"run-div\",\"hash\":\"rh-div-old\"}\n");
    std::fs::write(&checkpoint, runs).expect("rewrite checkpoint");
    let journal = dir.join("journal.log");
    let mut bytes = std::fs::read(&journal).expect("read journal");
    bytes.extend_from_slice(b"xyz");
    std::fs::write(&journal, bytes).expect("tear journal");

    let text = run_check(&dir, &[]);
    assert_eq!(text.status.code(), Some(1), "{text:?}");
    let stdout = String::from_utf8_lossy(&text.stdout);
    let golden =
        "warning[SA0012] unreplayed-journal: journal holds 1 record(s) not folded into the checkpoint files; the owning campaign did not finish (or never ran) its checkpoint (journal:log)\n\
         warning[SA0012] unreplayed-journal: journal ends in a torn tail of 3 byte(s) (interrupted append); records before the tear replay cleanly (journal:tail)\n\
         error[SA0013] journal-divergence: journal insert collides with a checkpoint document of different content; the journal version wins on replay (journal:runs/run-div)\n\
         error[SA0014] quarantined-run-referenced: unreleased dead letter references a run missing from the run collection (run:run-gone)\n\
         error[SA0014] quarantined-run-referenced: run has an unreleased dead letter but status 'created' (re-queued without `simart quarantine --release`?) (run:run-requeued)\n\
         warning[SA0015] orphaned-remote-attempt: last remote dispatch (delivery 3 to worker generation 2) was never acked, re-delivered, or quarantined — orphaned by a coordinator crash? (run:run-orphan)\n\
         warning[SA0016] stale-checkpoint: checkpoint-restore used key 2222222222222222 but the run's configuration hashes to checkpoint key 1111111111111111 — stale checkpoint (input changed since it was saved?) (run:run-stale)\n\
         check: 3 errors, 4 warnings\n";
    assert_eq!(stdout, golden);

    let json = run_check(&dir, &["--format", "json"]);
    assert_eq!(json.status.code(), Some(1));
    let json_out = String::from_utf8_lossy(&json.stdout);
    for code in ["SA0012", "SA0013", "SA0014", "SA0015", "SA0016"] {
        assert!(stdout.contains(code), "text output lacks {code}: {stdout}");
        assert!(
            json_out.contains(&format!("\"code\":\"{code}\"")),
            "json lacks {code}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--incremental` falls back loudly when no state is recorded, resumes
/// silently (and byte-identically) once it is, detects a journal
/// compacted past its cursor, and shares the strict-load one-line
/// precheck with `simart metrics`.
#[test]
fn incremental_check_resumes_and_falls_back_loudly() {
    let dir = temp_dir("incremental");
    {
        let db = Database::open(&dir).expect("create attached db");
        let a = uuid("incr-artifact");
        seed_artifact(&db, &a, &[], "hash-incr", None);
        seed_run(
            &db,
            "run-1",
            "rh-1",
            "done",
            &[&a],
            &["status:queued", "status:running", "status:done"],
        );
    }

    // First incremental run: no recorded state yet → loud full scan
    // that matches the plain scan byte for byte, then records state.
    let full = run_check(&dir, &[]);
    let first = run_check(&dir, &["--incremental"]);
    assert_eq!(first.status.code(), Some(0), "{first:?}");
    assert_eq!(first.stdout, full.stdout);
    assert!(
        String::from_utf8_lossy(&first.stderr)
            .contains("note: falling back to a full scan: no analysis state recorded yet"),
        "{first:?}"
    );

    // Second run resumes from the cursor: same report, no note. The
    // state record it replays over is its own bookkeeping and must not
    // surface as an SA0012 "unreplayed journal" finding.
    let second = run_check(&dir, &["--incremental"]);
    assert_eq!(second.status.code(), Some(0), "{second:?}");
    assert_eq!(second.stdout, full.stdout);
    assert_eq!(
        String::from_utf8_lossy(&second.stderr),
        "",
        "resume is silent"
    );

    // A new defect lands in the journal; the incremental replay picks
    // it up without a fallback and agrees with a fresh full scan.
    let ghost = uuid("incr-ghost");
    {
        let db = Database::open(&dir).expect("reopen attached");
        seed_run(&db, "run-bad", "rh-bad", "created", &[&ghost], &[]);
    }
    let third = run_check(&dir, &["--incremental"]);
    assert_eq!(third.status.code(), Some(1), "{third:?}");
    assert!(
        String::from_utf8_lossy(&third.stdout).contains("error[SA0001]"),
        "{third:?}"
    );
    assert_eq!(String::from_utf8_lossy(&third.stderr), "");
    let fresh = run_check(&dir, &[]);
    assert_eq!(third.stdout, fresh.stdout);

    // Checkpointing compacts the journal past the cursor: loud fallback.
    {
        let db = Database::open(&dir).expect("reopen attached");
        db.checkpoint().expect("checkpoint");
    }
    let compacted = run_check(&dir, &["--incremental"]);
    assert_eq!(compacted.status.code(), Some(1), "{compacted:?}");
    assert!(
        String::from_utf8_lossy(&compacted.stderr).contains(
            "note: falling back to a full scan: journal compacted past the analysis cursor"
        ),
        "{compacted:?}"
    );

    // A corrupt checkpoint document is a strict-load failure: one-line
    // error and exit 2, while the lenient plain check keeps working.
    let checkpoint = dir.join("runs.jsonl");
    let mut runs = std::fs::read_to_string(&checkpoint).expect("read checkpoint");
    runs.push_str("{not json\n");
    std::fs::write(&checkpoint, runs).expect("corrupt checkpoint");
    let corrupt = run_check(&dir, &["--incremental"]);
    assert_eq!(corrupt.status.code(), Some(2), "{corrupt:?}");
    let stderr = String::from_utf8_lossy(&corrupt.stderr);
    assert!(
        stderr.starts_with("error: cannot lint database at"),
        "{stderr}"
    );
    assert!(
        corrupt.stdout.is_empty(),
        "one-line precheck prints no report"
    );
    let lenient = run_check(&dir, &[]);
    assert_eq!(lenient.status.code(), Some(1), "{lenient:?}");

    // And a missing directory is the same usage error as plain check.
    let missing = temp_dir("incremental-missing").join("nope");
    let gone = run_check(&missing, &["--incremental"]);
    assert_eq!(gone.status.code(), Some(2), "{gone:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deny_warnings_makes_warnings_fatal_and_allow_suppresses() {
    let dir = temp_dir("levels");
    let db = Database::in_memory();
    seed_run(&db, "run-dup-1", "rh-dup", "created", &[], &[]);
    seed_run(&db, "run-dup-2", "rh-dup", "created", &[], &[]);
    db.save(&dir).expect("save fixture");

    // Default: a warning, exit 0.
    let out = run_check(&dir, &[]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("warning[SA0009]"));

    // --deny warnings: promoted to error, exit 1.
    let deny = run_check(&dir, &["--deny", "warnings"]);
    assert_eq!(deny.status.code(), Some(1), "{deny:?}");
    assert!(String::from_utf8_lossy(&deny.stdout).contains("error[SA0009]"));

    // --deny by name works too.
    let by_name = run_check(&dir, &["--deny", "duplicate-run-hash"]);
    assert_eq!(by_name.status.code(), Some(1));

    // --allow suppresses the finding entirely.
    let allow = run_check(&dir, &["--allow", "SA0009"]);
    assert_eq!(allow.status.code(), Some(0));
    assert_eq!(
        String::from_utf8_lossy(&allow.stdout),
        "check: 0 errors, 0 warnings\n"
    );

    // Unknown lint names are usage errors.
    let bogus = run_check(&dir, &["--deny", "no-such-lint"]);
    assert_eq!(bogus.status.code(), Some(2));
    let _ = std::fs::remove_dir_all(&dir);
}

/// `simart campaign --check` lints the campaign's own database after
/// the runs finish and records analysis state past the checkpoint, so
/// the next `simart check --incremental` resumes without a fallback.
#[test]
fn campaign_check_lints_and_records_state_for_incremental() {
    let dir = temp_dir("campaign-check");
    let out = Command::new(env!("CARGO_BIN_EXE_simart"))
        .args(["campaign", "--db", dir.to_str().unwrap(), "--check"])
        .output()
        .expect("campaign runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("check: 0 errors, 0 warnings"), "{stdout}");
    assert!(
        String::from_utf8_lossy(&out.stderr)
            .contains("note: falling back to a full scan: no analysis state recorded yet"),
        "first campaign has no prior analysis state: {out:?}"
    );

    let incr = run_check(&dir, &["--incremental"]);
    assert_eq!(incr.status.code(), Some(0), "{incr:?}");
    assert_eq!(
        String::from_utf8_lossy(&incr.stderr),
        "",
        "campaign-recorded state resumes silently"
    );
    assert!(
        String::from_utf8_lossy(&incr.stdout).contains("check: 0 errors"),
        "{incr:?}"
    );

    // A resumed campaign's check also picks the state up incrementally.
    let resumed = Command::new(env!("CARGO_BIN_EXE_simart"))
        .args([
            "campaign",
            "--db",
            dir.to_str().unwrap(),
            "--resume",
            "--check",
        ])
        .output()
        .expect("campaign resumes");
    assert_eq!(resumed.status.code(), Some(0), "{resumed:?}");
    assert!(
        String::from_utf8_lossy(&resumed.stdout).contains("check: 0 errors, 0 warnings"),
        "{resumed:?}"
    );
    assert!(
        !String::from_utf8_lossy(&resumed.stderr).contains("falling back"),
        "resumed campaign check is incremental: {resumed:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// SA0017: an indexed collection's checkpoint is hand-edited after the
/// save, so a scratch rebuild of the index no longer matches the state
/// the `indexes.json` manifest recorded at save time. The rebuild
/// itself succeeds (the edited documents are valid), which is exactly
/// why the manifest comparison — not a load failure — must catch it.
#[test]
fn tampered_checkpoint_is_an_index_divergence() {
    let dir = temp_dir("sa0017");
    let db = Database::in_memory();
    let notes = db.collection("notes");
    notes
        .ensure_index(simart::db::IndexSpec::hash("topic"))
        .expect("declare index");
    for (id, topic) in [("note-1", "boot"), ("note-2", "boot"), ("note-3", "perf")] {
        notes
            .insert(Value::map([
                ("_id", Value::from(id)),
                ("topic", Value::from(topic)),
            ]))
            .expect("seed note");
    }
    db.save(&dir).expect("save fixture");

    // Untampered, the manifest and a rebuild agree: clean report.
    let clean = run_check(&dir, &[]);
    assert_eq!(clean.status.code(), Some(0), "{clean:?}");

    // Hand-edit the checkpoint, moving note-2 to another index key.
    let checkpoint = dir.join("notes.jsonl");
    let text = std::fs::read_to_string(&checkpoint).expect("read checkpoint");
    assert!(
        text.contains("\"_id\":\"note-2\""),
        "fixture layout: {text}"
    );
    let tampered = text
        .lines()
        .map(|line| {
            if line.contains("\"_id\":\"note-2\"") {
                line.replace("\"topic\":\"boot\"", "\"topic\":\"perf\"")
            } else {
                line.to_owned()
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n";
    assert_ne!(text, tampered, "the edit must change an indexed field");
    std::fs::write(&checkpoint, tampered).expect("tamper checkpoint");

    let out = run_check(&dir, &[]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let golden = "error[SA0017] index-divergence: persisted index manifest disagrees with an \
         index rebuild from the checkpoint documents; the checkpoint was modified after its \
         save (collection:notes)\n\
         check: 1 error, 0 warnings\n";
    assert_eq!(stdout, golden);

    let json = run_check(&dir, &["--format", "json"]);
    assert_eq!(json.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&json.stdout).contains("\"code\":\"SA0017\""),
        "{json:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// SA0018: a run whose event log shows the same delivery acked under
/// two worker generations — the split-brain signature a diverged
/// session resume leaves behind. The second ack also pairs with no
/// dispatch, so both arms of the lint fire; the text report must match
/// the golden rendering byte for byte.
#[test]
fn session_resume_divergence_is_reported() {
    let dir = temp_dir("sa0018");
    let db = Database::in_memory();
    seed_run(
        &db,
        "run-split",
        "rh-split",
        "done",
        &[],
        &[
            "status:queued",
            "status:running",
            "remote-dispatch:1:g1",
            "remote-ack:1:g1",
            "remote-reconnect:4:g2",
            "remote-ack:1:g2",
            "status:done",
        ],
    );
    db.save(&dir).expect("save fixture");

    let out = run_check(&dir, &[]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let golden = "error[SA0018] session-resume-divergence: delivery 1 was acked under two worker \
         generations (1 and 2) — two incarnations of the session both completed the same \
         delivery (split-brain) (run:run-split)\n\
         error[SA0018] session-resume-divergence: remote-ack for delivery 1 under worker \
         generation 2 has no matching remote-dispatch — a resumed session acked work the \
         coordinator never handed it (split-brain?) (run:run-split)\n\
         check: 2 errors, 0 warnings\n";
    assert_eq!(stdout, golden);

    let json = run_check(&dir, &["--format", "json"]);
    assert_eq!(json.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&json.stdout).contains("\"code\":\"SA0018\""),
        "{json:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn self_test_subcommand_passes() {
    let out = Command::new(env!("CARGO_BIN_EXE_simart"))
        .args(["check", "--self-test"])
        .output()
        .expect("running self-test");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("PASS  lint self-test"), "{stdout}");
}
