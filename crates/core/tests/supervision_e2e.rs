//! Chaos end-to-end tests for the broker's supervision layer: killed
//! workers are respawned and their tasks redelivered with zero lost
//! runs, and tasks that exhaust the redelivery cap land in the
//! persistent dead-letter quarantine, survive `--resume`, and come back
//! only through an explicit `simart quarantine --release`.

use simart::artifact::{Artifact, ArtifactId, ArtifactKind, ContentSource};
use simart::db::Database;
use simart::run::{FsRun, RunStatus};
use simart::tasks::{BrokerScheduler, FaultInjector, SupervisorConfig};
use simart::{ExecOutcome, Experiment, LaunchOptions};
use std::process::Command;
use std::sync::Arc;
use std::time::Duration;

fn register_artifacts(experiment: &Experiment) -> [ArtifactId; 5] {
    let repo = experiment
        .register_artifact(
            Artifact::builder("sim-repo", ArtifactKind::GitRepo)
                .documentation("src")
                .content(ContentSource::git("https://example.org/chaos", "rev")),
        )
        .unwrap();
    let binary = experiment
        .register_artifact(
            Artifact::builder("sim", ArtifactKind::Binary)
                .documentation("bin")
                .content(ContentSource::bytes(b"elf".to_vec()))
                .input(repo.id()),
        )
        .unwrap();
    let script = experiment
        .register_artifact(
            Artifact::builder("script", ArtifactKind::RunScript)
                .documentation("cfg")
                .content(ContentSource::bytes(b"cfg".to_vec())),
        )
        .unwrap();
    let kernel = experiment
        .register_artifact(
            Artifact::builder("vmlinux", ArtifactKind::Kernel)
                .documentation("kernel")
                .content(ContentSource::bytes(b"krn".to_vec())),
        )
        .unwrap();
    let disk = experiment
        .register_artifact(
            Artifact::builder("disk", ArtifactKind::DiskImage)
                .documentation("img")
                .content(ContentSource::bytes(b"img".to_vec())),
        )
        .unwrap();
    [binary.id(), repo.id(), script.id(), kernel.id(), disk.id()]
}

fn make_run(experiment: &Experiment, ids: [ArtifactId; 5], app: &str) -> FsRun {
    let [binary, repo, script, kernel, disk] = ids;
    experiment
        .create_fs_run(|b| {
            b.simulator(binary, "sim")
                .simulator_repo(repo)
                .run_script(script, "run.py")
                .kernel(kernel, "vmlinux")
                .disk_image(disk, "disk.img")
                .param(app)
        })
        .unwrap()
}

fn ok_outcome(_: &FsRun) -> Result<ExecOutcome, String> {
    Ok(ExecOutcome {
        outcome: "success".into(),
        sim_ticks: 1,
        payload: vec![],
        success: true,
        events: vec![],
    })
}

fn quick_supervision(max_redeliveries: u32) -> SupervisorConfig {
    SupervisorConfig {
        heartbeat: Duration::from_millis(10),
        max_redeliveries,
        ..SupervisorConfig::default()
    }
}

fn simart(args: &[&str]) -> (String, String, i32) {
    let output = Command::new(env!("CARGO_BIN_EXE_simart"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
        output.status.code().unwrap_or(-1),
    )
}

/// SIGKILL-style chaos: one worker is killed mid-campaign. The
/// supervisor respawns a replacement and redelivers the orphaned task,
/// so the campaign completes with zero lost runs.
#[test]
fn killed_worker_is_respawned_and_no_runs_are_lost() {
    let experiment = Experiment::new("chaos");
    let ids = register_artifacts(&experiment);
    let runs: Vec<FsRun> = ["a", "b", "c"]
        .iter()
        .map(|app| make_run(&experiment, ids, app))
        .collect();
    let run_ids: Vec<_> = runs.iter().map(|r| r.id()).collect();

    let broker = BrokerScheduler::with_config(2, quick_supervision(1));
    // Every first delivery draws a kill, but the budget allows exactly
    // one: precisely one worker dies holding a lease.
    let chaos = Arc::new(FaultInjector::new(7).worker_kills(1.0).worker_kill_limit(1));
    let options = LaunchOptions::default().worker_fault(Arc::clone(&chaos));
    let summary = experiment.launch_with(runs, &broker, ok_outcome, &options);

    assert_eq!(summary.done, 3, "zero lost runs: {summary:?}");
    assert_eq!(summary.quarantined, 0);
    assert_eq!(chaos.injected_kills(), 1, "the kill budget was spent");
    assert_eq!(
        broker.redelivered(),
        1,
        "the orphaned task was redelivered once"
    );
    assert!(
        broker.worker_respawns() >= 1,
        "a replacement worker was spawned"
    );
    assert_eq!(broker.detached_live(), 0, "no detached workers left behind");
    for id in run_ids {
        assert_eq!(
            experiment.runs().load(id).unwrap().status(),
            RunStatus::Done
        );
    }
}

/// A task whose every delivery is killed exhausts the redelivery cap:
/// the run is quarantined with a persisted dead letter, `--resume`
/// skips it, `simart quarantine` lists it, and only `--release` brings
/// it back.
#[test]
fn exhausted_redeliveries_quarantine_end_to_end() {
    let dir = std::env::temp_dir().join(format!("simart-supervision-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db_arg = dir.to_str().unwrap().to_owned();

    // Session 1: every delivery of the single run is killed, so one
    // redelivery is allowed and then the supervisor gives up.
    let poisoned_id = {
        let db = Database::open(&dir).unwrap();
        let experiment = Experiment::with_database("chaos", db).unwrap();
        let ids = register_artifacts(&experiment);
        let runs = vec![make_run(&experiment, ids, "poisoned")];
        let run_id = runs[0].id();

        let broker = BrokerScheduler::with_config(2, quick_supervision(1));
        let chaos = Arc::new(FaultInjector::new(7).worker_kills(1.0));
        let options = LaunchOptions::default().worker_fault(chaos);
        let summary = experiment.launch_with(runs, &broker, ok_outcome, &options);
        assert_eq!(summary.quarantined, 1, "{summary:?}");
        assert_eq!(summary.done, 0);
        assert_eq!(
            experiment.runs().load(run_id).unwrap().status(),
            RunStatus::Quarantined
        );

        let letters = simart::quarantine::load_all(experiment.database()).unwrap();
        assert_eq!(letters.len(), 1);
        assert_eq!(letters[0].run_id, run_id);
        assert_eq!(letters[0].redeliveries, 1);
        assert!(!letters[0].released);
        assert!(
            letters[0].error.contains("redelivery cap"),
            "{}",
            letters[0].error
        );
        assert_eq!(
            letters[0].lease_events.len(),
            2,
            "{:?}",
            letters[0].lease_events
        );

        // Session 1b: resume never touches a quarantined run.
        let resumed = experiment.launch_with(
            vec![make_run(&experiment, ids, "poisoned")],
            &broker,
            ok_outcome,
            &LaunchOptions::resuming(),
        );
        assert_eq!(resumed.skipped_quarantined, 1, "{resumed:?}");
        assert_eq!(
            experiment.runs().load(run_id).unwrap().status(),
            RunStatus::Quarantined
        );

        experiment.database().checkpoint().unwrap();
        run_id
    };

    // The CLI lists the dead letter; a consistent quarantine lints
    // clean (SA0014 fires only when the two collections disagree).
    let id_str = poisoned_id.to_string();
    let (stdout, stderr, code) = simart(&["quarantine", "--db", &db_arg]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains(&id_str), "{stdout}");
    assert!(stdout.contains("redeliveries=1"), "{stdout}");
    let (stdout, _, code) = simart(&["quarantine", "--db", &db_arg, "--format", "json"]);
    assert_eq!(code, 0);
    assert!(stdout.contains(&id_str), "{stdout}");
    let (stdout, _, code) = simart(&["check", "--db", &db_arg]);
    assert_eq!(code, 0, "{stdout}");

    // Releasing an unknown id is a loud error.
    let bogus = simart::artifact::Uuid::new_v3("supervision-e2e", "bogus").to_string();
    let (_, stderr, code) = simart(&["quarantine", "--db", &db_arg, "--release", &bogus]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("no quarantined run"), "{stderr}");

    // Release the real one: the dead letter flips to released and the
    // run is re-queued.
    let (stdout, stderr, code) = simart(&["quarantine", "--db", &db_arg, "--release", &id_str]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains("released"), "{stdout}");

    // Session 2: with the chaos gone, resume picks the released run up
    // and it completes on its original record.
    {
        let db = Database::open(&dir).unwrap();
        let experiment = Experiment::with_database("chaos", db).unwrap();
        let ids = register_artifacts(&experiment);
        let summary = experiment.launch_with(
            vec![make_run(&experiment, ids, "poisoned")],
            &BrokerScheduler::with_config(2, quick_supervision(1)),
            ok_outcome,
            &LaunchOptions::resuming(),
        );
        assert_eq!((summary.requeued, summary.done), (1, 1), "{summary:?}");
        assert_eq!(
            experiment.runs().load(poisoned_id).unwrap().status(),
            RunStatus::Done
        );
        let letters = simart::quarantine::load_all(experiment.database()).unwrap();
        assert!(letters[0].released, "release is durable");
        experiment.database().checkpoint().unwrap();
    }

    // The healed database still lints clean: a released dead letter is
    // history, not a constraint.
    let (stdout, _, code) = simart(&["check", "--db", &db_arg]);
    assert_eq!(code, 0, "{stdout}");

    std::fs::remove_dir_all(&dir).unwrap();
}
