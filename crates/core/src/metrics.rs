//! Persisting and reloading observability metric snapshots.
//!
//! `simart campaign` snapshots the live [`simart_observe`] registry
//! into a `metrics` collection — one document per metric — before it
//! checkpoints its database, and `simart metrics` reconstructs a
//! [`Snapshot`] from those documents to render it. The persisted form
//! is plain database documents, so *reading* recorded metrics works in
//! any build, including ones compiled without observability.
//!
//! Document shapes (`_id` is the metric name):
//!
//! ```text
//! { "_id": "sim.boots",          "kind": "counter",   "value": 6 }
//! { "_id": "pool.depth",         "kind": "gauge",     "value": 2 }
//! { "_id": "db.journal_append_us", "kind": "histogram",
//!   "count": 6, "sum_us": 5400, "buckets": [0, 0, ...] }
//! ```

use simart_db::{Database, DbError, Value};
use simart_observe::{bucket_bounds_us, HistogramSnapshot, MetricValue, Snapshot};

/// The collection `simart campaign` writes metric documents into.
pub const METRICS_COLLECTION: &str = "metrics";

/// Replaces the database's `metrics` collection with the snapshot's
/// contents (one document per metric). An empty snapshot (e.g. from a
/// build without observability) leaves the database untouched, so
/// re-saving a campaign with a metrics-less binary does not erase
/// previously recorded metrics.
///
/// # Errors
///
/// Propagates document insertion failures.
pub fn persist_snapshot(db: &Database, snapshot: &Snapshot) -> Result<(), DbError> {
    if snapshot.metrics.is_empty() {
        return Ok(());
    }
    db.drop_collection(METRICS_COLLECTION);
    let collection = db.collection(METRICS_COLLECTION);
    for (name, value) in &snapshot.metrics {
        let doc = match value {
            MetricValue::Counter(v) => Value::map([
                ("_id", Value::from(name.clone())),
                ("kind", Value::from("counter")),
                ("value", Value::from(*v)),
            ]),
            MetricValue::Gauge(v) => Value::map([
                ("_id", Value::from(name.clone())),
                ("kind", Value::from("gauge")),
                ("value", Value::from(*v)),
            ]),
            MetricValue::Histogram(h) => Value::map([
                ("_id", Value::from(name.clone())),
                ("kind", Value::from("histogram")),
                ("count", Value::from(h.count)),
                ("sum_us", Value::from(h.sum_us)),
                ("buckets", Value::from(h.buckets.clone())),
            ]),
        };
        collection.insert(doc)?;
    }
    Ok(())
}

/// Reconstructs a [`Snapshot`] from the database's `metrics`
/// collection. Returns an empty snapshot when the collection is absent
/// (the campaign was run without observability).
///
/// # Errors
///
/// Returns a one-line description when a metric document is malformed
/// (wrong kind tag, missing fields, or a histogram whose bucket count
/// does not match the fixed bucket layout).
pub fn load_snapshot(db: &Database) -> Result<Snapshot, String> {
    let mut snapshot = Snapshot::default();
    if !db.has_collection(METRICS_COLLECTION) {
        return Ok(snapshot);
    }
    let expected_buckets = bucket_bounds_us().len() + 1;
    for doc in db.collection(METRICS_COLLECTION).all() {
        let name = doc
            .at("_id")
            .and_then(Value::as_str)
            .ok_or_else(|| "metric document has no _id".to_owned())?
            .to_owned();
        let kind = doc.at("kind").and_then(Value::as_str).unwrap_or("");
        let int_field = |field: &str| -> Result<u64, String> {
            doc.at(field)
                .and_then(Value::as_int)
                .map(|v| v as u64)
                .ok_or_else(|| format!("metric `{name}` has no integer `{field}` field"))
        };
        let value = match kind {
            "counter" => MetricValue::Counter(int_field("value")?),
            "gauge" => MetricValue::Gauge(int_field("value")? as i64),
            "histogram" => {
                let buckets: Vec<u64> = doc
                    .at("buckets")
                    .and_then(Value::as_array)
                    .map(|items| {
                        items
                            .iter()
                            .filter_map(Value::as_int)
                            .map(|v| v as u64)
                            .collect()
                    })
                    .ok_or_else(|| format!("metric `{name}` has no `buckets` array"))?;
                if buckets.len() != expected_buckets {
                    return Err(format!(
                        "metric `{name}` has {} buckets, expected {expected_buckets} \
                         (recorded by an incompatible simart version?)",
                        buckets.len()
                    ));
                }
                MetricValue::Histogram(HistogramSnapshot {
                    count: int_field("count")?,
                    sum_us: int_field("sum_us")?,
                    buckets,
                })
            }
            other => return Err(format!("metric `{name}` has unknown kind `{other}`")),
        };
        snapshot.metrics.insert(name, value);
    }
    Ok(snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        let mut snapshot = Snapshot::default();
        snapshot
            .metrics
            .insert("sim.boots".to_owned(), MetricValue::Counter(6));
        snapshot
            .metrics
            .insert("pool.depth".to_owned(), MetricValue::Gauge(-2));
        let mut h = HistogramSnapshot::empty();
        h.count = 3;
        h.sum_us = 3_000;
        h.buckets[12] = 3;
        snapshot
            .metrics
            .insert("db.save_us".to_owned(), MetricValue::Histogram(h));
        snapshot
    }

    #[test]
    fn snapshot_round_trips_through_database() {
        let db = Database::in_memory();
        let snapshot = sample_snapshot();
        persist_snapshot(&db, &snapshot).unwrap();
        assert_eq!(load_snapshot(&db).unwrap(), snapshot);
    }

    #[test]
    fn missing_collection_loads_empty() {
        let db = Database::in_memory();
        assert!(load_snapshot(&db).unwrap().metrics.is_empty());
    }

    #[test]
    fn empty_snapshot_preserves_existing_metrics() {
        let db = Database::in_memory();
        persist_snapshot(&db, &sample_snapshot()).unwrap();
        persist_snapshot(&db, &Snapshot::default()).unwrap();
        assert_eq!(load_snapshot(&db).unwrap(), sample_snapshot());
    }

    #[test]
    fn repersisting_replaces_the_collection() {
        let db = Database::in_memory();
        persist_snapshot(&db, &sample_snapshot()).unwrap();
        let mut smaller = Snapshot::default();
        smaller
            .metrics
            .insert("only.one".to_owned(), MetricValue::Counter(1));
        persist_snapshot(&db, &smaller).unwrap();
        assert_eq!(load_snapshot(&db).unwrap(), smaller);
    }

    #[test]
    fn malformed_documents_are_one_line_errors() {
        let db = Database::in_memory();
        db.collection(METRICS_COLLECTION)
            .insert(Value::map([
                ("_id", Value::from("bad")),
                ("kind", Value::from("sparkline")),
            ]))
            .unwrap();
        let err = load_snapshot(&db).unwrap_err();
        assert!(err.contains("unknown kind"), "{err}");
        assert!(!err.contains('\n'), "one line: {err}");
    }

    #[test]
    fn wrong_bucket_count_is_rejected() {
        let db = Database::in_memory();
        db.collection(METRICS_COLLECTION)
            .insert(Value::map([
                ("_id", Value::from("h")),
                ("kind", Value::from("histogram")),
                ("count", Value::from(1u64)),
                ("sum_us", Value::from(5u64)),
                ("buckets", Value::from(vec![1u64, 0])),
            ]))
            .unwrap();
        let err = load_snapshot(&db).unwrap_err();
        assert!(err.contains("expected"), "{err}");
    }
}
