//! The dead-letter quarantine: persisted records of runs whose tasks
//! exhausted their redelivery budget.
//!
//! When a supervised scheduler (the broker) gives up on a task — every
//! lease expired and the redelivery cap ran out — the campaign loop
//! writes a [`DeadLetter`] into the `quarantine` collection alongside
//! the terminal `Quarantined` run status. Quarantined runs are never
//! auto-resumed; `simart quarantine` lists them and `--release` moves
//! one back to `Queued` for the next `--resume` to pick up.
//!
//! Document shape (`_id` is the run id):
//!
//! ```text
//! { "_id": "<run uuid>", "task": "campaign/abc123", "error": "...",
//!   "redeliveries": 2, "leaseEvents": ["delivery:1:lease-expired", ...],
//!   "attempts": 0, "released": false }
//! ```

use simart_artifact::Uuid;
use simart_db::{Database, DbError, Value};

/// The collection dead-letter documents are persisted into.
pub const QUARANTINE_COLLECTION: &str = "quarantine";

/// A quarantined run: the task's final report distilled into a durable
/// record of why the supervisor gave up on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadLetter {
    /// The run the task was executing.
    pub run_id: Uuid,
    /// The task's name (`experiment/run-hash`).
    pub task: String,
    /// The supervisor's final error message.
    pub error: String,
    /// How many times the task was redelivered before giving up.
    pub redeliveries: u32,
    /// Per-delivery lease history (`delivery:N:cause` entries).
    pub lease_events: Vec<String>,
    /// Executor attempts that actually reported back (0 when every
    /// delivery died holding its lease).
    pub attempts: u32,
    /// Whether the run has since been released back to the queue.
    pub released: bool,
}

impl DeadLetter {
    fn to_doc(&self) -> Value {
        Value::map([
            ("_id", Value::from(self.run_id.to_string())),
            ("task", Value::from(self.task.clone())),
            ("error", Value::from(self.error.clone())),
            ("redeliveries", Value::from(self.redeliveries)),
            (
                "leaseEvents",
                Value::array(self.lease_events.iter().map(|e| Value::from(e.clone()))),
            ),
            ("attempts", Value::from(self.attempts)),
            ("released", Value::from(self.released)),
        ])
    }

    fn from_doc(doc: &Value) -> Result<DeadLetter, String> {
        let id_str = doc
            .at("_id")
            .and_then(Value::as_str)
            .ok_or_else(|| "quarantine document has no _id".to_owned())?;
        let run_id = id_str
            .parse::<Uuid>()
            .map_err(|_| format!("quarantine document id `{id_str}` is not a uuid"))?;
        let str_field = |field: &str| -> Result<String, String> {
            doc.at(field)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("quarantine record `{id_str}` has no `{field}` field"))
        };
        let int_field = |field: &str| -> Result<u32, String> {
            doc.at(field)
                .and_then(Value::as_int)
                .map(|v| v as u32)
                .ok_or_else(|| {
                    format!("quarantine record `{id_str}` has no integer `{field}` field")
                })
        };
        let lease_events = doc
            .at("leaseEvents")
            .and_then(Value::as_array)
            .map(|items| {
                items
                    .iter()
                    .filter_map(Value::as_str)
                    .map(str::to_owned)
                    .collect()
            })
            .unwrap_or_default();
        Ok(DeadLetter {
            run_id,
            task: str_field("task")?,
            error: str_field("error")?,
            redeliveries: int_field("redeliveries")?,
            lease_events,
            attempts: int_field("attempts")?,
            released: doc.at("released").and_then(Value::as_bool).unwrap_or(false),
        })
    }
}

/// Writes (or replaces) a dead-letter record, keyed by run id.
///
/// # Errors
///
/// Propagates document persistence failures.
pub fn persist(db: &Database, letter: &DeadLetter) -> Result<(), DbError> {
    let collection = db.collection(QUARANTINE_COLLECTION);
    // Reports list the quarantine sorted by task; the ordered index
    // lets `load_all` read that order straight off the index.
    collection.ensure_index(simart_db::IndexSpec::ordered("task"))?;
    collection.upsert(letter.to_doc())?;
    Ok(())
}

/// Loads every dead-letter record, sorted by task name. Returns an
/// empty list when the collection is absent.
///
/// # Errors
///
/// Returns a one-line description when a record is malformed.
pub fn load_all(db: &Database) -> Result<Vec<DeadLetter>, String> {
    if !db.has_collection(QUARANTINE_COLLECTION) {
        return Ok(Vec::new());
    }
    // find_sorted orders by task with `_id` (the run id) breaking
    // ties — exactly the report order — and walks the ordered index
    // declared by `persist` instead of sorting a full scan.
    db.collection(QUARANTINE_COLLECTION)
        .find_sorted(
            &simart_db::Filter::All,
            "task",
            simart_db::SortOrder::Ascending,
        )
        .iter()
        .map(DeadLetter::from_doc)
        .collect::<Result<Vec<_>, _>>()
}

/// Marks a dead letter as released (its run is being re-queued).
/// Returns `false` when no record with that id exists.
///
/// # Errors
///
/// Propagates document persistence failures.
pub fn release(db: &Database, run_id: Uuid) -> Result<bool, DbError> {
    let collection = db.collection(QUARANTINE_COLLECTION);
    match collection.get(&run_id.to_string()) {
        Some(mut doc) => {
            doc.set_at("released", Value::from(true));
            collection.upsert(doc)?;
            Ok(true)
        }
        None => Ok(false),
    }
}

/// Renders the quarantine as a human-readable report.
pub fn render_text(letters: &[DeadLetter]) -> String {
    if letters.is_empty() {
        return "quarantine is empty\n".to_owned();
    }
    let mut out = String::new();
    out.push_str(&format!("{} quarantined run(s)\n", letters.len()));
    for letter in letters {
        out.push_str(&format!(
            "  {}  {}  redeliveries={}  attempts={}{}\n",
            letter.run_id,
            letter.task,
            letter.redeliveries,
            letter.attempts,
            if letter.released { "  [released]" } else { "" },
        ));
        out.push_str(&format!("    error: {}\n", letter.error));
        for event in &letter.lease_events {
            out.push_str(&format!("    lease: {event}\n"));
        }
    }
    out
}

/// Renders the quarantine as a JSON array (one object per record).
pub fn render_json(letters: &[DeadLetter]) -> String {
    let docs: Vec<Value> = letters.iter().map(DeadLetter::to_doc).collect();
    simart_db::json::to_json(&Value::array(docs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(task: &str, released: bool) -> DeadLetter {
        DeadLetter {
            run_id: Uuid::new_v3("quarantine-test", task),
            task: task.to_owned(),
            error: "task quarantined: redelivery cap (1) exhausted".to_owned(),
            redeliveries: 1,
            lease_events: vec![
                "delivery:1:worker-died".to_owned(),
                "delivery:2:lease-expired".to_owned(),
            ],
            attempts: 0,
            released,
        }
    }

    #[test]
    fn dead_letters_round_trip() {
        let db = Database::in_memory();
        let letter = sample("exp/abc", false);
        persist(&db, &letter).unwrap();
        assert_eq!(load_all(&db).unwrap(), vec![letter]);
    }

    #[test]
    fn persist_is_an_upsert_by_run_id() {
        let db = Database::in_memory();
        let mut letter = sample("exp/abc", false);
        persist(&db, &letter).unwrap();
        letter.redeliveries = 3;
        persist(&db, &letter).unwrap();
        let loaded = load_all(&db).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].redeliveries, 3);
    }

    #[test]
    fn load_all_sorts_by_task() {
        let db = Database::in_memory();
        persist(&db, &sample("exp/zzz", false)).unwrap();
        persist(&db, &sample("exp/aaa", true)).unwrap();
        let tasks: Vec<_> = load_all(&db).unwrap().into_iter().map(|l| l.task).collect();
        assert_eq!(tasks, vec!["exp/aaa", "exp/zzz"]);
    }

    #[test]
    fn missing_collection_is_empty() {
        let db = Database::in_memory();
        assert!(load_all(&db).unwrap().is_empty());
    }

    #[test]
    fn release_flips_the_flag() {
        let db = Database::in_memory();
        let letter = sample("exp/abc", false);
        persist(&db, &letter).unwrap();
        assert!(release(&db, letter.run_id).unwrap());
        assert!(load_all(&db).unwrap()[0].released);
        // Unknown ids are reported, not invented.
        assert!(!release(&db, Uuid::new_v3("quarantine-test", "other")).unwrap());
    }

    #[test]
    fn malformed_documents_are_one_line_errors() {
        let db = Database::in_memory();
        db.collection(QUARANTINE_COLLECTION)
            .insert(Value::map([("_id", Value::from("not-a-uuid"))]))
            .unwrap();
        let err = load_all(&db).unwrap_err();
        assert!(err.contains("not a uuid"), "{err}");
        assert!(!err.contains('\n'), "one line: {err}");
    }

    #[test]
    fn text_rendering_lists_lease_history() {
        let text = render_text(&[sample("exp/abc", true)]);
        assert!(text.contains("exp/abc"));
        assert!(text.contains("[released]"));
        assert!(text.contains("lease: delivery:2:lease-expired"));
        assert_eq!(render_text(&[]), "quarantine is empty\n");
    }

    #[test]
    fn json_rendering_is_an_array() {
        let json = render_json(&[sample("exp/abc", false)]);
        assert!(json.trim_start().starts_with('['));
        assert!(json.contains("\"redeliveries\""));
    }
}
