//! `simart` — the command-line front end.
//!
//! ```text
//! simart catalog                     list the resource catalog (Table I)
//! simart boot [options]              boot one full-system configuration
//! simart parsec <app> [options]      boot + run one PARSEC application
//! simart gpu <app> [--alloc X]       run one GPU kernel
//! simart campaign [options]          run (or resume) a persisted boot campaign
//! simart metrics [options]           report profiling metrics from a saved campaign
//! simart quarantine [options]        inspect or release dead-lettered runs
//! simart check [options]             lint a run database's provenance
//! simart selftest                    run the bundled test programs
//! simart matrix                      triage the Figure 8 boot matrix
//! ```

use simart::analyze::diag::{has_errors, render_json, render_text};
use simart::analyze::{lint, prelaunch, LintLevels};
use simart::artifact::{Artifact, ArtifactId, ArtifactKind, ContentSource};
use simart::cross::CrossProduct;
use simart::db::Database;
use simart::gpu::alloc::AllocPolicy;
use simart::gpu::{workloads, Gpu};
use simart::report::Table;
use simart::resources::{tests_resource, Catalog};
use simart::run::{RunStatus, RunStore};
use simart::sim::compat::{evaluate, figure8_configs};
use simart::sim::cpu::CpuKind;
use simart::sim::kernel::{BootKind, KernelVersion};
use simart::sim::mem::MemKind;
use simart::sim::os::OsImage;
use simart::sim::system::{Fidelity, SystemConfig};
use simart::sim::ticks::format_ticks;
use simart::sim::workload::{gapbs_profile, npb_profile, parsec_profile, InputSize};
use simart::tasks::{
    BrokerScheduler, FaultInjector, PoolScheduler, RemoteConfig, RemoteScheduler, RetryPolicy,
    SupervisorConfig, TransportKind, WorkerCommand,
};
use simart::{ExecOutcome, Experiment, LaunchOptions, LaunchSummary};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        // Hidden subcommand: run as a remote campaign worker. Over
        // pipes stdout is the wire — the handler registry must never
        // print to it; with --connect the socket is the wire instead.
        Some("worker") => {
            let registry = simart::remote::campaign_registry();
            match flag(&args[1..], "--connect") {
                Some(addr) => simart::tasks::worker_main_connect(&registry, &addr),
                None => simart::tasks::worker_main(&registry),
            }
        }
        Some("catalog") => catalog(),
        Some("boot") => boot(&args[1..]),
        Some("parsec") => workload_cmd(&args[1..], "parsec"),
        Some("npb") => workload_cmd(&args[1..], "npb"),
        Some("gapbs") => workload_cmd(&args[1..], "gapbs"),
        Some("gpu") => gpu(&args[1..]),
        Some("campaign") => campaign(&args[1..]),
        Some("metrics") => metrics(&args[1..]),
        Some("quarantine") => quarantine(&args[1..]),
        Some("check") => check(&args[1..]),
        Some("selftest") => selftest(),
        Some("matrix") => matrix(),
        _ => {
            eprintln!(
                "usage: simart <catalog|boot|parsec|npb|gapbs|gpu|campaign|metrics|quarantine|check|selftest|matrix> [options]\n\
                 \n\
                 boot options:     --cpu kvm|atomic|timing|o3  --cores N  --mem classic|coherent|mi|mesi\n\
                 \u{20}                 --kernel 4.4|4.9|4.14|4.15|4.19|5.4  --boot kernel|systemd\n\
                 parsec options:   <app> --os 18.04|20.04 --cores N\n\
                 gpu options:      <app> --alloc simple|dynamic\n\
                 campaign options: --db DIR  --resume  --retries N  --suite NAME  --trace-out FILE\n\
                 \u{20}                 --fault-rate R --fault-seed S (deterministic fault injection)\n\
                 \u{20}                 --scheduler pool|broker|remote  --workers N\n\
                 \u{20}                 --max-redeliveries N  --kill-rate R\n\
                 \u{20}                 --transport pipe|tcp  --partition-rate R (network chaos, tcp only)\n\
                 \u{20}                 --checkpoint-dir DIR (boot once, restore many)\n\
                 \u{20}                 --check (lint the database after the campaign)\n\
                 metrics options:  --db DIR  --format text|json\n\
                 quarantine opts:  --db DIR  --format text|json  --release ID\n\
                 check options:    --db DIR  --format text|json  --deny LINT  --allow LINT\n\
                 \u{20}                 --incremental (resume from recorded analysis state)\n\
                 \u{20}                 --self-test (LINT: warnings, SAxxxx, or a lint name)"
            );
            2
        }
    };
    std::process::exit(code);
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// All values of a repeatable `--name value` flag, in order.
fn flag_values(args: &[String], name: &str) -> Vec<String> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == name)
        .filter_map(|(i, _)| args.get(i + 1))
        .cloned()
        .collect()
}

fn catalog() -> i32 {
    let catalog = Catalog::standard();
    let mut table = Table::new("Resources", &["name", "type", "variant"]);
    for resource in catalog.iter() {
        table.row(&[
            resource.name.to_owned(),
            resource.kind.to_string(),
            resource.variant.to_owned(),
        ]);
    }
    println!("{}", table.render());
    0
}

fn parse_cpu(s: &str) -> Option<CpuKind> {
    Some(match s {
        "kvm" => CpuKind::Kvm,
        "atomic" => CpuKind::AtomicSimple,
        "timing" => CpuKind::TimingSimple,
        "o3" => CpuKind::O3,
        _ => return None,
    })
}

fn parse_mem(s: &str) -> Option<MemKind> {
    Some(match s {
        "classic" => MemKind::classic_fast(),
        "coherent" => MemKind::classic_coherent(),
        "mi" => MemKind::RubyMi,
        "mesi" => MemKind::RubyMesiTwoLevel,
        _ => return None,
    })
}

fn parse_kernel(s: &str) -> Option<KernelVersion> {
    Some(match s {
        "4.4" => KernelVersion::V4_4,
        "4.9" => KernelVersion::V4_9,
        "4.14" => KernelVersion::V4_14,
        "4.15" => KernelVersion::V4_15,
        "4.19" => KernelVersion::V4_19,
        "5.4" => KernelVersion::V5_4,
        _ => return None,
    })
}

fn boot(args: &[String]) -> i32 {
    let cpu = flag(args, "--cpu")
        .and_then(|s| parse_cpu(&s))
        .unwrap_or(CpuKind::TimingSimple);
    let cores: u32 = flag(args, "--cores")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let mem = flag(args, "--mem")
        .and_then(|s| parse_mem(&s))
        .unwrap_or(MemKind::classic_fast());
    let kernel = flag(args, "--kernel")
        .and_then(|s| parse_kernel(&s))
        .unwrap_or(KernelVersion::V5_4);
    let boot_kind = match flag(args, "--boot").as_deref() {
        Some("kernel") => BootKind::KernelOnly,
        _ => BootKind::Systemd,
    };
    let config = match SystemConfig::builder()
        .cpu(cpu)
        .cores(cores)
        .memory(mem)
        .kernel(kernel)
        .boot(boot_kind)
        .fidelity(Fidelity::Standard)
        .build()
    {
        Ok(config) => config,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    match config.boot_only() {
        Ok(output) => {
            println!("configuration : {}", config.label());
            println!("outcome       : {}", output.outcome);
            println!("boot time     : {}", format_ticks(output.sim_ticks));
            println!("instructions  : {}", output.instructions);
            println!("host estimate : {:.1}s", output.host_seconds);
            if output.outcome.is_success() {
                0
            } else {
                1
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}

fn workload_cmd(args: &[String], suite: &str) -> i32 {
    let Some(app) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: simart {suite} <app> [--os 18.04|20.04] [--cores N]");
        return 2;
    };
    let profile = match suite {
        "parsec" => parsec_profile(app),
        "npb" => npb_profile(app),
        _ => gapbs_profile(app),
    };
    let Some(profile) = profile else {
        eprintln!("error: unknown {suite} application `{app}`");
        return 2;
    };
    let os = match flag(args, "--os").as_deref() {
        Some("20.04") => OsImage::Ubuntu2004,
        _ => OsImage::Ubuntu1804,
    };
    let cores: u32 = flag(args, "--cores")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let config = match SystemConfig::builder()
        .cores(cores)
        .os(os)
        .fidelity(Fidelity::Standard)
        .build()
    {
        Ok(config) => config,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    match config.run_workload(&profile, InputSize::SimMedium) {
        Ok(output) => {
            println!("{app} on {os} with {cores} core(s):");
            println!("  outcome      : {}", output.outcome);
            println!("  exec time    : {}", format_ticks(output.sim_ticks));
            println!("  instructions : {}", output.instructions);
            println!(
                "  IPC/core     : {:.3}",
                output.stats.scalar("workload.utilization")
            );
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}

fn gpu(args: &[String]) -> i32 {
    let Some(app) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: simart gpu <app> [--alloc simple|dynamic]");
        return 2;
    };
    let Some(kernel) = workloads::by_name(app) else {
        eprintln!("error: unknown GPU workload `{app}` (see `simart gpu --list`)");
        return 2;
    };
    let policy = match flag(args, "--alloc").as_deref() {
        Some("dynamic") => AllocPolicy::Dynamic,
        _ => AllocPolicy::Simple,
    };
    let result = Gpu::table3().run(&kernel, policy);
    println!("{app} under the {policy} register allocator:");
    println!("  shader ticks  : {}", result.ticks);
    println!("  instructions  : {}", result.instructions);
    println!("  occupancy/CU  : {}", result.peak_occupancy);
    println!("  lock retries  : {}", result.lock_retries);
    0
}

/// Registers the fixed artifact set every campaign session uses.
///
/// Contents are byte-identical across sessions, so artifact ids and
/// run hashes are stable and `--resume` can match stored records.
fn register_campaign_artifacts(
    experiment: &Experiment,
) -> Result<[ArtifactId; 5], simart::ExperimentError> {
    let repo = experiment.register_artifact(
        Artifact::builder("sim-repo", ArtifactKind::GitRepo)
            .documentation("simulator sources")
            .content(ContentSource::git(
                "https://example.org/simart",
                "campaign-rev",
            )),
    )?;
    let binary = experiment.register_artifact(
        Artifact::builder("sim", ArtifactKind::Binary)
            .documentation("simulator binary")
            .content(ContentSource::bytes(b"simart-binary".to_vec()))
            .input(repo.id()),
    )?;
    let script = experiment.register_artifact(
        Artifact::builder("boot-script", ArtifactKind::RunScript)
            .documentation("boot configuration")
            .content(ContentSource::bytes(b"boot-config".to_vec())),
    )?;
    let kernel = experiment.register_artifact(
        Artifact::builder("vmlinux", ArtifactKind::Kernel)
            .documentation("linux kernel")
            .content(ContentSource::bytes(b"vmlinux-5.4".to_vec())),
    )?;
    let disk = experiment.register_artifact(
        Artifact::builder("disk", ArtifactKind::DiskImage)
            .documentation("ubuntu image")
            .content(ContentSource::bytes(b"ubuntu-18.04.img".to_vec())),
    )?;
    Ok([binary.id(), repo.id(), script.id(), kernel.id(), disk.id()])
}

/// Boots the configuration one campaign run describes. The same logic
/// runs inside remote worker processes via
/// [`simart::remote::campaign_registry`], so in-process and remote
/// campaigns measure identically.
fn execute_campaign_run(run: &simart::run::FsRun) -> Result<ExecOutcome, String> {
    simart::remote::execute_campaign_params(run.params())
}

fn campaign(args: &[String]) -> i32 {
    let db_dir = flag(args, "--db").map(std::path::PathBuf::from);
    let trace_out = flag(args, "--trace-out").map(std::path::PathBuf::from);
    let resume = args.iter().any(|a| a == "--resume");
    let retries: u32 = flag(args, "--retries")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let fault_rate: f64 = flag(args, "--fault-rate")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.0);
    let fault_seed: u64 = flag(args, "--fault-seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let kill_rate: f64 = flag(args, "--kill-rate")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.0);
    let partition_rate: f64 = flag(args, "--partition-rate")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.0);
    let scheduler_kind = flag(args, "--scheduler").unwrap_or_else(|| "pool".to_owned());
    if !["pool", "broker", "remote"].contains(&scheduler_kind.as_str()) {
        eprintln!("error: unknown scheduler `{scheduler_kind}` (expected pool, broker, or remote)");
        return 2;
    }
    let transport: TransportKind = match flag(args, "--transport")
        .as_deref()
        .unwrap_or("pipe")
        .parse()
    {
        Ok(kind) => kind,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    if transport == TransportKind::Tcp && scheduler_kind != "remote" {
        eprintln!("error: --transport tcp requires --scheduler remote");
        return 2;
    }
    // Network chaos injects faults on real worker connections; only
    // the TCP transport has connections to partition.
    if partition_rate > 0.0 && transport != TransportKind::Tcp {
        eprintln!("error: --partition-rate requires --transport tcp");
        return 2;
    }
    let workers: usize = flag(args, "--workers")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    // Worker-kill chaos only makes sense under a supervisor that can
    // redeliver (the broker's threads or the remote coordinator's
    // processes); a killed pool worker would simply strand its run.
    if kill_rate > 0.0 && scheduler_kind == "pool" {
        eprintln!("error: --kill-rate requires --scheduler broker or remote");
        return 2;
    }
    let max_redeliveries: u32 = flag(args, "--max-redeliveries")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);

    let check_after = args.iter().any(|a| a == "--check");

    // "Boot once, restore many": export the checkpoint directory so
    // the shared executor (and any spawned `simart worker` process,
    // which inherits the environment) restores boot prefixes from the
    // content-addressed store instead of re-simulating them.
    if let Some(dir) = flag(args, "--checkpoint-dir") {
        std::env::set_var(simart::remote::CHECKPOINT_DIR_ENV, &dir);
        println!("boot checkpoints: {dir}");
    }

    // A campaign with a database directory runs *attached*: every run
    // insert and status transition appends to the write-ahead journal
    // as it happens, so killing the process at any instant loses no
    // completed run — `--resume` replays the journal and skips them.
    // The load report feeds the post-run check (--check): journal
    // divergence observed at open invalidates recorded analysis state.
    let mut load_report = simart::db::LoadReport::default();
    let db = match &db_dir {
        Some(dir) => match Database::open_with(dir, &simart::db::LoadOptions::default()) {
            Ok((db, report)) => {
                load_report = report;
                db
            }
            Err(e) => {
                eprintln!("error: cannot open database at {}: {e}", dir.display());
                return 2;
            }
        },
        None => Database::in_memory(),
    };
    let experiment = match Experiment::with_database("campaign", db) {
        Ok(experiment) => experiment,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let [binary, repo, script, kernel, disk] = match register_campaign_artifacts(&experiment) {
        Ok(ids) => ids,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };

    let mut sweep = CrossProduct::new()
        .axis("cpu", ["kvm", "atomic", "timing"])
        .axis("cores", ["1", "2"]);
    let suites = flag_values(args, "--suite");
    if !suites.is_empty() {
        sweep = sweep.axis("benchmark", suites);
    }
    // Pre-launch gate: a typo'd resource name fails here, before any
    // simulation time is spent.
    let gate = prelaunch::validate_axes(sweep.axes(), &Catalog::standard());
    if has_errors(&gate) {
        eprint!("{}", render_text(&gate));
        return 1;
    }
    let mut runs = Vec::with_capacity(sweep.len());
    for combo in sweep.iter() {
        let run = experiment.create_fs_run(|b| {
            let mut b = b
                .simulator(binary, "sim")
                .simulator_repo(repo)
                .run_script(script, "boot.cfg")
                .kernel(kernel, "vmlinux-5.4")
                .disk_image(disk, "ubuntu.img");
            for param in combo.params() {
                b = b.param(param);
            }
            b
        });
        match run {
            Ok(run) => runs.push(run),
            Err(e) => {
                eprintln!("error: cannot create run for {}: {e}", combo.label());
                return 2;
            }
        }
    }

    let mut options = if resume {
        LaunchOptions::resuming()
    } else {
        LaunchOptions::default()
    };
    if retries > 0 {
        options = options.retry_policy(RetryPolicy::immediate(retries + 1));
    }
    if fault_rate > 0.0 {
        options = options.fault(Arc::new(FaultInjector::new(fault_seed).errors(fault_rate)));
    }
    if kill_rate > 0.0 {
        options = options.worker_fault(Arc::new(
            FaultInjector::new(fault_seed).worker_kills(kill_rate),
        ));
    }

    // Profiling capture window: everything the campaign does from here
    // on records spans and metrics (a no-op in builds without the
    // `observe` feature).
    simart::observe::reset();
    simart::observe::enable();
    let summary: LaunchSummary = if scheduler_kind == "remote" {
        // Crash-isolated worker processes: this same binary re-executed
        // as `simart worker`, speaking the framed wire protocol.
        let Ok(program) = std::env::current_exe() else {
            eprintln!("error: cannot locate the simart binary for worker processes");
            return 2;
        };
        let supervisor = SupervisorConfig {
            max_redeliveries,
            ..SupervisorConfig::default()
        };
        let mut config = RemoteConfig {
            supervisor,
            transport,
            ..RemoteConfig::default()
        };
        if kill_rate > 0.0 || partition_rate > 0.0 {
            // Real SIGKILLs against real worker PIDs and real faults on
            // real worker connections, same seed discipline as the
            // in-process injectors.
            let mut injector = FaultInjector::new(fault_seed);
            if kill_rate > 0.0 {
                injector = injector.worker_kills(kill_rate);
            }
            if partition_rate > 0.0 {
                injector = injector
                    .net_partitions(partition_rate)
                    .net_resets(partition_rate / 2.0)
                    .net_corruption(partition_rate / 4.0)
                    .net_latency(partition_rate, std::time::Duration::from_millis(2));
            }
            config.fault = Some(Arc::new(injector));
        }
        let command = WorkerCommand::new(program).arg("worker");
        let remote = match RemoteScheduler::with_config(command, workers, config) {
            Ok(remote) => remote,
            Err(e) => {
                eprintln!("error: cannot spawn worker processes: {e}");
                return 2;
            }
        };
        let summary = experiment.launch_remote(runs, &remote, &options);
        if !remote.shutdown() {
            eprintln!("warning: remote scheduler shut down with work outstanding");
        }
        summary
    } else if scheduler_kind == "broker" {
        let config = SupervisorConfig {
            max_redeliveries,
            ..SupervisorConfig::default()
        };
        let broker = BrokerScheduler::with_config(workers, config);
        experiment.launch_with(runs, &broker, execute_campaign_run, &options)
    } else {
        let pool = PoolScheduler::new(workers);
        experiment.launch_with(runs, &pool, execute_campaign_run, &options)
    };
    println!(
        "campaign: {} runs — fresh {}, requeued {}, skipped done {}, skipped duplicates {}, \
         skipped quarantined {}",
        summary.total(),
        summary.fresh,
        summary.requeued,
        summary.skipped_done,
        summary.skipped_duplicates,
        summary.skipped_quarantined,
    );
    println!(
        "outcomes: done {}, failed {}, timed out {}, quarantined {}, retried {}",
        summary.done, summary.failed, summary.timed_out, summary.quarantined, summary.retried,
    );
    if summary.quarantined > 0 {
        if let Some(dir) = &db_dir {
            println!(
                "quarantined runs need an explicit release: see `simart quarantine --db {}`",
                dir.display()
            );
        }
    }

    // Post-run provenance check (--check): lint the campaign's own
    // database before it is checkpointed — incremental when analysis
    // state recorded by a previous campaign or `simart check
    // --incremental` is still valid, full scan otherwise. Runs inside
    // the capture window so the analyze.* metrics land in the snapshot.
    let mut check_errors = false;
    let mut check_engine = None;
    if check_after {
        let (engine, outcome) =
            match simart::analyze::campaign_check(experiment.database(), &load_report) {
                Ok(pair) => pair,
                Err(e) => {
                    eprintln!("error: cannot lint campaign database: {e}");
                    return 2;
                }
            };
        if db_dir.is_some() {
            if let Some(reason) = &outcome.fallback {
                eprintln!("note: falling back to a full scan: {reason}");
            }
        }
        print!("{}", render_text(&outcome.diagnostics));
        check_errors = has_errors(&outcome.diagnostics);
        check_engine = Some(engine);
    }

    if let Some(dir) = &db_dir {
        // Every run mutation is already on disk in the journal; record
        // the metrics snapshot (its inserts append too, still inside
        // the capture window), then fold everything into checkpoint
        // files. No whole-DB saves needed.
        let snapshot = simart::observe::snapshot();
        if let Err(e) = simart::metrics::persist_snapshot(experiment.database(), &snapshot) {
            eprintln!("error: cannot record metrics: {e}");
            return 2;
        }
        if let Err(e) = experiment.database().checkpoint() {
            eprintln!(
                "error: cannot checkpoint database at {}: {e}",
                dir.display()
            );
            return 2;
        }
        println!("database checkpointed to {}", dir.display());
        // The checkpoint compacts the journal, which invalidates any
        // cursor captured before it — so the analysis state is recorded
        // only now, against the fresh post-checkpoint journal. The
        // metrics inserts above are unobserved by every lint, so the
        // engine's view is still exact.
        if let Some(engine) = &check_engine {
            if let Err(e) = simart::analyze::record_state(experiment.database(), engine) {
                eprintln!("error: cannot record analysis state: {e}");
                return 2;
            }
        }
        if !snapshot.metrics.is_empty() {
            println!(
                "metrics: {} recorded (inspect with `simart metrics --db {}`)",
                snapshot.metrics.len(),
                dir.display()
            );
        }
    }

    simart::observe::disable();
    if let Some(path) = &trace_out {
        let trace = simart::observe::drain_trace();
        if let Err(e) = std::fs::write(path, trace.to_chrome_json()) {
            eprintln!("error: cannot write trace to {}: {e}", path.display());
            return 2;
        }
        println!(
            "trace written to {} ({} spans, {} events; open in chrome://tracing or ui.perfetto.dev)",
            path.display(),
            trace.spans.len(),
            trace.events.len()
        );
    }
    i32::from(summary.failed + summary.timed_out + summary.quarantined > 0 || check_errors)
}

/// `simart metrics` — renders the profiling metrics a previous
/// `simart campaign --db DIR` recorded into its database.
///
/// Exit codes: 0 success (including "no metrics recorded"), 2 usage/IO
/// problems.
fn metrics(args: &[String]) -> i32 {
    let format = flag(args, "--format").unwrap_or_else(|| "text".to_owned());
    if format != "text" && format != "json" {
        eprintln!("error: unknown format `{format}` (expected text or json)");
        return 2;
    }
    let Some(dir) = flag(args, "--db") else {
        eprintln!("usage: simart metrics --db DIR [--format text|json]");
        return 2;
    };
    let path = std::path::Path::new(&dir);
    if !path.is_dir() {
        eprintln!(
            "error: no database at {dir}: not a directory (create one with \
             `simart campaign --db {dir}`)"
        );
        return 2;
    }
    // Strict load: a torn or corrupt database is a hard error for a
    // reporting tool, not something to paper over.
    let db = match Database::load_with(path, &simart::db::LoadOptions::strict()) {
        Ok((db, _)) => db,
        Err(e) => {
            eprintln!("error: cannot load database at {dir}: {e}");
            return 2;
        }
    };
    let snapshot = match simart::metrics::load_snapshot(&db) {
        Ok(snapshot) => snapshot,
        Err(e) => {
            eprintln!("error: cannot read metrics from {dir}: {e}");
            return 2;
        }
    };
    if format == "json" {
        println!("{}", snapshot.render_json());
    } else {
        print!("{}", snapshot.render_text());
    }
    0
}

/// `simart quarantine` — inspect or release dead-lettered runs.
///
/// Exit codes: 0 success (including an empty quarantine), 1 unknown
/// release id, 2 usage/IO problems.
fn quarantine(args: &[String]) -> i32 {
    let format = flag(args, "--format").unwrap_or_else(|| "text".to_owned());
    if format != "text" && format != "json" {
        eprintln!("error: unknown format `{format}` (expected text or json)");
        return 2;
    }
    let Some(dir) = flag(args, "--db") else {
        eprintln!("usage: simart quarantine --db DIR [--format text|json] [--release ID]");
        return 2;
    };
    let path = std::path::Path::new(&dir);
    if !path.is_dir() {
        eprintln!(
            "error: no database at {dir}: not a directory (create one with \
             `simart campaign --db {dir}`)"
        );
        return 2;
    }
    if let Some(id) = flag(args, "--release") {
        return quarantine_release(path, &dir, &id);
    }
    // Read-only listing: strict load, like `simart metrics`.
    let db = match Database::load_with(path, &simart::db::LoadOptions::strict()) {
        Ok((db, _)) => db,
        Err(e) => {
            eprintln!("error: cannot load database at {dir}: {e}");
            return 2;
        }
    };
    let letters = match simart::quarantine::load_all(&db) {
        Ok(letters) => letters,
        Err(e) => {
            eprintln!("error: cannot read quarantine from {dir}: {e}");
            return 2;
        }
    };
    if format == "json" {
        println!("{}", simart::quarantine::render_json(&letters));
    } else {
        print!("{}", simart::quarantine::render_text(&letters));
    }
    0
}

/// Releases one quarantined run: marks its dead letter released and
/// re-queues the run so the next `campaign --resume` picks it up.
fn quarantine_release(path: &std::path::Path, dir: &str, id: &str) -> i32 {
    let Ok(run_id) = id.parse::<simart::artifact::Uuid>() else {
        eprintln!("error: `{id}` is not a run id (expected a uuid from `simart quarantine`)");
        return 2;
    };
    // Attached open: the release and re-queue write through the
    // journal, same as campaign mutations.
    let db = match Database::open(path) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("error: cannot open database at {dir}: {e}");
            return 2;
        }
    };
    match simart::quarantine::release(&db, run_id) {
        Ok(true) => {}
        Ok(false) => {
            eprintln!("error: no quarantined run {id} at {dir}");
            return 1;
        }
        Err(e) => {
            eprintln!("error: cannot release {id}: {e}");
            return 2;
        }
    }
    let runs = match RunStore::new(&db) {
        Ok(runs) => runs,
        Err(e) => {
            eprintln!("error: cannot open run store at {dir}: {e}");
            return 2;
        }
    };
    if let Err(e) = runs.transition(run_id, RunStatus::Queued) {
        eprintln!("error: cannot re-queue run {id}: {e}");
        return 2;
    }
    if let Err(e) = db.checkpoint() {
        eprintln!("error: cannot checkpoint database at {dir}: {e}");
        return 2;
    }
    println!("released {id}: re-queued (run with `simart campaign --db {dir} --resume`)");
    0
}

/// `simart check` — the provenance linter front end.
///
/// Exit codes: 0 clean, 1 error-severity findings (or a failed
/// self-test), 2 usage/IO problems.
fn check(args: &[String]) -> i32 {
    if args.iter().any(|a| a == "--self-test") {
        return check_self_test();
    }

    let mut levels = LintLevels::new();
    for spec in flag_values(args, "--deny") {
        if let Err(e) = levels.deny(&spec) {
            eprintln!("error: --deny {spec}: {e}");
            return 2;
        }
    }
    for spec in flag_values(args, "--allow") {
        if let Err(e) = levels.allow(&spec) {
            eprintln!("error: --allow {spec}: {e}");
            return 2;
        }
    }
    let format = flag(args, "--format").unwrap_or_else(|| "text".to_owned());
    if format != "text" && format != "json" {
        eprintln!("error: unknown format `{format}` (expected text or json)");
        return 2;
    }
    let Some(dir) = flag(args, "--db") else {
        eprintln!(
            "usage: simart check --db DIR [--incremental] [--format text|json] \
             [--deny LINT] [--allow LINT]"
        );
        return 2;
    };
    if !std::path::Path::new(&dir).is_dir() {
        eprintln!(
            "error: no database at {dir}: not a directory (create one with \
             `simart campaign --db {dir}`)"
        );
        return 2;
    }

    let incremental = args.iter().any(|a| a == "--incremental");
    let diagnostics = if incremental {
        // Resume from the analysis state a previous `--incremental`
        // check or `campaign --check` recorded, replaying only the
        // journal suffix past its cursor. Loads strictly (like `simart
        // metrics`): a corrupt document or blob is exit 2, not a lint.
        // Missing/stale state or a journal compacted past the cursor
        // fall back to a full scan with a note saying so.
        match simart::analyze::check_dir_incremental(std::path::Path::new(&dir)) {
            Ok(outcome) => {
                if let Some(reason) = &outcome.fallback {
                    eprintln!("note: falling back to a full scan: {reason}");
                }
                levels.apply(outcome.diagnostics)
            }
            Err(e) => {
                eprintln!("error: cannot lint database at {dir}: {e}");
                return 2;
            }
        }
    } else {
        match lint::lint_dir(std::path::Path::new(&dir)) {
            Ok(diagnostics) => levels.apply(diagnostics),
            Err(e) => {
                eprintln!("error: cannot lint database at {dir}: {e}");
                return 2;
            }
        }
    };
    if format == "json" {
        println!("{}", render_json(&diagnostics));
    } else {
        print!("{}", render_text(&diagnostics));
    }
    i32::from(has_errors(&diagnostics))
}

/// Proves the detectors detect: seeds one instance of every defect
/// class and checks each lint fires (plus, in `race-detect` builds,
/// the live race-detector round trip).
fn check_self_test() -> i32 {
    let mut failed = false;
    match lint::self_test() {
        Ok(summary) => println!("PASS  {summary}"),
        Err(e) => {
            println!("FAIL  lint self-test: {e}");
            failed = true;
        }
    }
    #[cfg(feature = "race-detect")]
    match simart::analyze::race::self_test() {
        Ok(summary) => println!("PASS  {summary}"),
        Err(e) => {
            println!("FAIL  race self-test: {e}");
            failed = true;
        }
    }
    #[cfg(not(feature = "race-detect"))]
    println!("SKIP  race self-test (build with --features race-detect to enable)");
    i32::from(failed)
}

fn selftest() -> i32 {
    let mut failures = 0;
    for (name, passed) in tests_resource::run_all() {
        println!("{}  {name}", if passed { "PASS" } else { "FAIL" });
        if !passed {
            failures += 1;
        }
    }
    i32::from(failures > 0)
}

fn matrix() -> i32 {
    let mut counts: std::collections::BTreeMap<&str, usize> = Default::default();
    for config in figure8_configs() {
        *counts.entry(evaluate(&config).label()).or_insert(0) += 1;
    }
    let mut table = Table::new(
        "Figure 8 outcome totals (480 configurations)",
        &["outcome", "count"],
    );
    for (outcome, count) in counts {
        table.row(&[outcome.to_owned(), count.to_string()]);
    }
    println!("{}", table.render());
    0
}
