//! Campaign execution over the remote (multi-process) scheduler.
//!
//! The [`simart_tasks::RemoteScheduler`] ships work to crash-isolated
//! worker *processes* over a framed pipe protocol, so the executor
//! closure used by in-process schedulers cannot cross the boundary.
//! Instead, both sides agree on a task *kind* plus a JSON payload:
//!
//! * the coordinator encodes a run's sweep parameters with
//!   [`encode_run_payload`] and submits a task of kind
//!   [`CAMPAIGN_KIND`];
//! * the worker process (the hidden `simart worker` subcommand)
//!   resolves the kind through [`campaign_registry`], boots the
//!   configuration with [`execute_campaign_params`], and returns the
//!   outcome encoded by [`encode_outcome`];
//! * the coordinator decodes it with [`decode_outcome`] and archives
//!   results exactly as a local launch would.
//!
//! Everything here is deliberately stringly-typed JSON: the payload
//! travels through [`simart_tasks::wire`] frames, and version skew
//! between coordinator and worker binaries must fail loudly (a decode
//! error) rather than silently misinterpret fields.

use crate::experiment::ExecOutcome;
use simart_db::json::{from_json, to_json};
use simart_db::Value;
use simart_fullsim::checkpoint::CheckpointStore;
use simart_fullsim::system::{Fidelity, SystemConfig};
use simart_tasks::{HandlerRegistry, WorkerJob};

/// Task kind dispatched to campaign workers: boot the full-system
/// configuration a run's parameters describe.
pub const CAMPAIGN_KIND: &str = "campaign-boot";

/// Encodes a run's sweep parameters as the wire payload for a
/// [`CAMPAIGN_KIND`] task.
pub fn encode_run_payload(params: &[String]) -> String {
    to_json(&Value::map([(
        "params",
        Value::array(params.iter().map(|p| Value::from(p.clone()))),
    )]))
}

/// Decodes the parameter list from a [`CAMPAIGN_KIND`] payload.
///
/// # Errors
///
/// Returns a description of the malformation (worker and coordinator
/// binaries disagreeing about the payload schema must fail loudly).
pub fn decode_run_payload(payload: &str) -> Result<Vec<String>, String> {
    let doc = from_json(payload).map_err(|e| format!("bad campaign payload: {e}"))?;
    let params = doc
        .at("params")
        .and_then(Value::as_array)
        .ok_or_else(|| "campaign payload has no `params` array".to_owned())?;
    params
        .iter()
        .map(|p| {
            p.as_str()
                .map(str::to_owned)
                .ok_or_else(|| "campaign payload has a non-string parameter".to_owned())
        })
        .collect()
}

/// Encodes an [`ExecOutcome`] as a worker's result string.
///
/// The stats payload is carried as text — campaign payloads are small
/// human-readable stat dumps, and the wire protocol is UTF-8 JSON.
pub fn encode_outcome(outcome: &ExecOutcome) -> String {
    to_json(&Value::map([
        ("outcome", Value::from(outcome.outcome.clone())),
        // Stringified so u64 tick counts round-trip losslessly through
        // the i64-typed JSON integer.
        ("simTicks", Value::from(outcome.sim_ticks.to_string())),
        (
            "payload",
            Value::from(String::from_utf8_lossy(&outcome.payload).into_owned()),
        ),
        ("success", Value::from(outcome.success)),
        (
            "events",
            Value::array(outcome.events.iter().map(|e| Value::from(e.clone()))),
        ),
    ]))
}

/// Decodes a worker's result string back into an [`ExecOutcome`].
///
/// # Errors
///
/// Returns a description of the malformation.
pub fn decode_outcome(text: &str) -> Result<ExecOutcome, String> {
    let doc = from_json(text).map_err(|e| format!("bad campaign outcome: {e}"))?;
    let field = |name: &str| -> Result<&str, String> {
        doc.at(name)
            .and_then(Value::as_str)
            .ok_or_else(|| format!("campaign outcome is missing `{name}`"))
    };
    Ok(ExecOutcome {
        outcome: field("outcome")?.to_owned(),
        sim_ticks: field("simTicks")?
            .parse()
            .map_err(|e| format!("campaign outcome has a bad `simTicks`: {e}"))?,
        payload: field("payload")?.as_bytes().to_vec(),
        success: doc
            .at("success")
            .and_then(Value::as_bool)
            .ok_or_else(|| "campaign outcome is missing `success`".to_owned())?,
        // Absent in payloads from pre-checkpoint workers: an empty
        // trail, not a malformation.
        events: doc
            .at("events")
            .and_then(Value::as_array)
            .map(|events| {
                events
                    .iter()
                    .filter_map(|e| e.as_str().map(str::to_owned))
                    .collect()
            })
            .unwrap_or_default(),
    })
}

/// Environment variable naming the boot-checkpoint directory.
///
/// `simart campaign --checkpoint-dir DIR` exports it so the
/// "boot once, restore many" path works identically for the in-process
/// schedulers *and* the `simart worker` processes the remote scheduler
/// spawns (children inherit the coordinator's environment).
pub const CHECKPOINT_DIR_ENV: &str = "SIMART_CHECKPOINT_DIR";

/// Boots the configuration a campaign run's parameters describe
/// (`[cpu, cores, ...]` from the sweep cross-product) — the shared
/// executor behind both the in-process campaign path and the remote
/// worker.
///
/// When [`CHECKPOINT_DIR_ENV`] is set, the boot prefix is restored
/// from (or saved to) the content-addressed [`CheckpointStore`] there,
/// and the outcome carries the `checkpoint-*` provenance events for
/// the run's journal.
///
/// # Errors
///
/// Returns a description of bad parameters or a simulation failure.
pub fn execute_campaign_params(params: &[String]) -> Result<ExecOutcome, String> {
    let cpu = params
        .first()
        .and_then(|s| parse_cpu(s))
        .ok_or_else(|| format!("bad cpu parameter {:?}", params.first()))?;
    let cores: u32 = params
        .get(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad core count {:?}", params.get(1)))?;
    let config = SystemConfig::builder()
        .cpu(cpu)
        .cores(cores)
        .fidelity(Fidelity::Standard)
        .build()
        .map_err(|e| e.to_string())?;
    let (output, events) = match std::env::var(CHECKPOINT_DIR_ENV) {
        Ok(dir) if !dir.is_empty() => {
            let store = CheckpointStore::open(dir).map_err(|e| e.to_string())?;
            let (checkpoint, events) = store.boot_or_restore(&config).map_err(|e| e.to_string())?;
            (
                checkpoint.boot().clone(),
                events.iter().map(|e| e.to_string()).collect(),
            )
        }
        _ => (config.boot_only().map_err(|e| e.to_string())?, Vec::new()),
    };
    Ok(ExecOutcome {
        outcome: output.outcome.to_string(),
        sim_ticks: output.sim_ticks,
        payload: format!(
            "outcome={} ticks={} instructions={}",
            output.outcome, output.sim_ticks, output.instructions
        )
        .into_bytes(),
        success: output.outcome.is_success(),
        events,
    })
}

fn parse_cpu(s: &str) -> Option<simart_fullsim::cpu::CpuKind> {
    use simart_fullsim::cpu::CpuKind;
    Some(match s {
        "kvm" => CpuKind::Kvm,
        "atomic" => CpuKind::AtomicSimple,
        "timing" => CpuKind::TimingSimple,
        "o3" => CpuKind::O3,
        _ => return None,
    })
}

/// The handler registry a campaign worker process runs under: decodes
/// [`CAMPAIGN_KIND`] payloads, boots them, and returns encoded
/// outcomes. A simulation-level failure (e.g. a kernel panic) is
/// reported as `Ok` with `success: false` — the *coordinator* decides
/// run disposition; only transport/decode problems are worker errors.
pub fn campaign_registry() -> HandlerRegistry {
    let mut registry = HandlerRegistry::new();
    registry.register(CAMPAIGN_KIND, |job: &WorkerJob| {
        let params = decode_run_payload(&job.payload)?;
        execute_campaign_params(&params).map(|outcome| encode_outcome(&outcome))
    });
    registry
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_round_trips() {
        let params = vec![
            "kvm".to_owned(),
            "2".to_owned(),
            "with \"quotes\"".to_owned(),
        ];
        let payload = encode_run_payload(&params);
        assert_eq!(decode_run_payload(&payload).unwrap(), params);
        assert!(decode_run_payload("{}").is_err());
        assert!(decode_run_payload("not json").is_err());
    }

    #[test]
    fn outcome_round_trips() {
        let outcome = ExecOutcome {
            outcome: "kernel-panic".to_owned(),
            sim_ticks: u64::MAX,
            payload: b"outcome=kernel-panic ticks=1".to_vec(),
            success: false,
            events: vec![
                "checkpoint-key:abc".to_owned(),
                "checkpoint-restore:abc".to_owned(),
            ],
        };
        let text = encode_outcome(&outcome);
        assert_eq!(decode_outcome(&text).unwrap(), outcome);
        assert!(decode_outcome("{}").is_err());
        // Payloads from pre-checkpoint workers have no `events` field;
        // they decode to an empty trail.
        let old = r#"{"outcome":"success","simTicks":"1","payload":"p","success":true}"#;
        assert_eq!(decode_outcome(old).unwrap().events, Vec::<String>::new());
    }

    #[test]
    fn campaign_handler_boots_a_configuration() {
        let registry = campaign_registry();
        let job = WorkerJob {
            job: 1,
            name: "t".to_owned(),
            kind: CAMPAIGN_KIND.to_owned(),
            payload: encode_run_payload(&["kvm".to_owned(), "1".to_owned()]),
            delivery: 1,
            generation: 1,
        };
        let outcome = decode_outcome(&registry.run(&job).unwrap()).unwrap();
        assert!(outcome.sim_ticks > 0);
        // Bad parameters are a handler error, not a panic.
        let bad = WorkerJob {
            payload: encode_run_payload(&["warp".to_owned()]),
            ..job
        };
        assert!(registry.run(&bad).is_err());
    }
}
