//! Plain-text reporting: tables and bar charts for experiment results.
//!
//! The paper pipes its database into Jupyter + matplotlib; a Rust CLI
//! reproduction renders the same data as aligned text tables and
//! horizontal ASCII bar charts, which is what the `simart-bench`
//! binaries print for every figure.

use std::fmt::Write as _;

/// A fixed-column text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded with empty cells).
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Convenience for string-slice rows.
    pub fn row_strs(&mut self, cells: &[&str]) -> &mut Table {
        let owned: Vec<String> = cells.iter().map(|c| (*c).to_owned()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as GitHub-flavoured Markdown (for dropping
    /// results straight into EXPERIMENTS-style reports).
    pub fn render_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        let escape = |cell: &str| cell.replace('|', "\\|");
        out.push_str(&format!(
            "| {} |\n",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(" | ")
        ));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!(
                "| {} |\n",
                row.iter()
                    .map(|c| escape(c))
                    .collect::<Vec<_>>()
                    .join(" | ")
            ));
        }
        out
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let columns = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(columns) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut parts = Vec::with_capacity(columns);
            for (i, cell) in cells.iter().enumerate().take(columns) {
                parts.push(format!("{cell:<width$}", width = widths[i]));
            }
            let _ = writeln!(out, "| {} |", parts.join(" | "));
        };
        line(&mut out, &self.headers);
        let _ = writeln!(
            out,
            "|{}|",
            widths
                .iter()
                .map(|w| "-".repeat(w + 2))
                .collect::<Vec<_>>()
                .join("+")
        );
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

/// A horizontal ASCII bar chart for labeled values (one bar per
/// series entry), with support for negative values around a zero axis.
#[derive(Debug, Clone)]
pub struct BarChart {
    title: String,
    entries: Vec<(String, f64)>,
    unit: String,
}

impl BarChart {
    /// Creates an empty chart.
    pub fn new(title: impl Into<String>, unit: impl Into<String>) -> BarChart {
        BarChart {
            title: title.into(),
            entries: Vec::new(),
            unit: unit.into(),
        }
    }

    /// Adds one labeled bar.
    pub fn bar(&mut self, label: impl Into<String>, value: f64) -> &mut BarChart {
        self.entries.push((label.into(), value));
        self
    }

    /// Renders the chart with bars scaled to `width` characters.
    pub fn render(&self, width: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        if self.entries.is_empty() {
            let _ = writeln!(out, "(no data)");
            return out;
        }
        let label_width = self.entries.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        let max_abs = self
            .entries
            .iter()
            .map(|(_, v)| v.abs())
            .fold(0.0f64, f64::max)
            .max(f64::MIN_POSITIVE);
        for (label, value) in &self.entries {
            let bar_len = ((value.abs() / max_abs) * width as f64).round() as usize;
            let bar: String = if *value >= 0.0 {
                "#".repeat(bar_len)
            } else {
                "-".repeat(bar_len)
            };
            let _ = writeln!(out, "{label:<label_width$} | {bar} {value:.3}{}", self.unit,);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut table = Table::new("Demo", &["app", "ticks"]);
        table.row_strs(&["blackscholes", "120"]);
        table.row_strs(&["x", "7"]);
        let rendered = table.render();
        assert!(rendered.contains("== Demo =="));
        let lines: Vec<&str> = rendered.lines().collect();
        // Header, separator, two rows.
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[1].len(), lines[3].len(), "aligned rows");
        assert!(!table.is_empty());
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn markdown_rendering_escapes_pipes() {
        let mut table = Table::new("MD", &["a", "b"]);
        table.row_strs(&["x|y", "z"]);
        let md = table.render_markdown();
        assert!(md.starts_with("### MD"));
        assert!(md.contains("| a | b |"));
        assert!(
            md.contains("\n|---|---|\n"),
            "separator is exactly one pipe per column"
        );
        assert!(md.contains("x\\|y"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut table = Table::new("Pad", &["a", "b", "c"]);
        table.row_strs(&["only-one"]);
        let rendered = table.render();
        assert!(rendered.contains("only-one"));
    }

    #[test]
    fn chart_scales_bars() {
        let mut chart = BarChart::new("Speedup", "x");
        chart.bar("fast", 4.0);
        chart.bar("slow", 1.0);
        chart.bar("regression", -2.0);
        let rendered = chart.render(20);
        assert!(
            rendered.contains("####################"),
            "max bar fills width"
        );
        assert!(rendered.contains("#####"), "quarter bar");
        assert!(
            rendered.contains("----------"),
            "negative bars drawn with dashes"
        );
    }

    #[test]
    fn empty_chart_is_graceful() {
        let chart = BarChart::new("Empty", "");
        assert!(chart.render(10).contains("(no data)"));
    }
}
