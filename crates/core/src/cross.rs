//! Cross-product parameter sweeps — the heart of the paper's Figure 5
//! launch script (`for each combination P in [cpus, benchmarks, ...]`).
//!
//! A [`CrossProduct`] names each axis and enumerates every combination
//! in a deterministic order, so experiment code can map combinations
//! directly onto run parameters.

use std::collections::BTreeMap;

/// A named multi-axis parameter sweep.
///
/// ```
/// use simart::cross::CrossProduct;
///
/// let sweep = CrossProduct::new()
///     .axis("cpu", ["kvm", "timing"])
///     .axis("cores", ["1", "2", "8"]);
/// assert_eq!(sweep.len(), 6);
/// let first = sweep.iter().next().unwrap();
/// assert_eq!(first.get("cpu"), Some("kvm"));
/// assert_eq!(first.get("cores"), Some("1"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct CrossProduct {
    axes: Vec<(String, Vec<String>)>,
}

/// One combination of the sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Combination {
    values: BTreeMap<String, String>,
    ordered: Vec<(String, String)>,
}

impl Combination {
    /// The value of one axis.
    pub fn get(&self, axis: &str) -> Option<&str> {
        self.values.get(axis).map(String::as_str)
    }

    /// The combination's values in axis-declaration order — ready to
    /// pass as run parameters.
    pub fn params(&self) -> Vec<String> {
        self.ordered.iter().map(|(_, v)| v.clone()).collect()
    }

    /// A compact `axis=value` label for reports.
    pub fn label(&self) -> String {
        self.ordered
            .iter()
            .map(|(axis, value)| format!("{axis}={value}"))
            .collect::<Vec<_>>()
            .join(",")
    }
}

impl CrossProduct {
    /// Creates an empty sweep (one empty combination).
    pub fn new() -> CrossProduct {
        CrossProduct::default()
    }

    /// Adds an axis with its values. Declaration order fixes the
    /// enumeration order (last axis varies fastest) and the order of
    /// [`Combination::params`].
    ///
    /// # Panics
    ///
    /// Panics on an empty value list or a duplicate axis name — both
    /// silently produce nonsense sweeps otherwise.
    pub fn axis(
        mut self,
        name: impl Into<String>,
        values: impl IntoIterator<Item = impl Into<String>>,
    ) -> CrossProduct {
        let name = name.into();
        assert!(
            !self.axes.iter().any(|(existing, _)| *existing == name),
            "duplicate axis `{name}`"
        );
        let values: Vec<String> = values.into_iter().map(Into::into).collect();
        assert!(!values.is_empty(), "axis `{name}` has no values");
        self.axes.push((name, values));
        self
    }

    /// The declared axes with their values, in declaration order —
    /// the shape pre-launch validation inspects.
    pub fn axes(&self) -> &[(String, Vec<String>)] {
        &self.axes
    }

    /// Number of combinations.
    pub fn len(&self) -> usize {
        self.axes.iter().map(|(_, values)| values.len()).product()
    }

    /// Whether the sweep has no axes (a single empty combination).
    pub fn is_empty(&self) -> bool {
        self.axes.is_empty()
    }

    /// Enumerates every combination.
    pub fn iter(&self) -> impl Iterator<Item = Combination> + '_ {
        let total = self.len();
        (0..total).map(move |mut index| {
            let mut ordered = Vec::with_capacity(self.axes.len());
            // Last axis varies fastest: compute mixed-radix digits.
            let mut stride = total;
            for (name, values) in &self.axes {
                stride /= values.len();
                let digit = index / stride;
                index %= stride;
                ordered.push((name.clone(), values[digit].clone()));
            }
            let values = ordered.iter().cloned().collect();
            Combination { values, ordered }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerates_the_full_product_in_order() {
        let sweep = CrossProduct::new()
            .axis("a", ["x", "y"])
            .axis("b", ["1", "2", "3"]);
        let combos: Vec<Vec<String>> = sweep.iter().map(|c| c.params()).collect();
        assert_eq!(combos.len(), 6);
        assert_eq!(combos[0], vec!["x", "1"]);
        assert_eq!(combos[1], vec!["x", "2"]);
        assert_eq!(combos[3], vec!["y", "1"]);
        assert_eq!(combos[5], vec!["y", "3"]);
    }

    #[test]
    fn figure8_sized_sweep() {
        let sweep = CrossProduct::new()
            .axis("kernel", ["4.4", "4.9", "4.14", "4.19", "5.4"])
            .axis("cpu", ["kvm", "atomic", "timing", "o3"])
            .axis("mem", ["classic", "mi", "mesi"])
            .axis("cores", ["1", "2", "4", "8"])
            .axis("boot", ["kernel", "systemd"]);
        assert_eq!(sweep.len(), 480, "the paper's full matrix");
        let labels: std::collections::HashSet<String> = sweep.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 480, "all combinations distinct");
    }

    #[test]
    fn empty_sweep_is_one_empty_combination() {
        let sweep = CrossProduct::new();
        assert_eq!(sweep.len(), 1);
        let combos: Vec<Combination> = sweep.iter().collect();
        assert_eq!(combos.len(), 1);
        assert!(combos[0].params().is_empty());
    }

    #[test]
    fn lookup_by_axis_name() {
        let sweep = CrossProduct::new().axis("os", ["18.04", "20.04"]);
        let combo = sweep.iter().nth(1).unwrap();
        assert_eq!(combo.get("os"), Some("20.04"));
        assert_eq!(combo.get("ghost"), None);
        assert_eq!(combo.label(), "os=20.04");
    }

    #[test]
    #[should_panic(expected = "duplicate axis")]
    fn duplicate_axes_panic() {
        let _ = CrossProduct::new().axis("a", ["x"]).axis("a", ["y"]);
    }

    #[test]
    #[should_panic(expected = "no values")]
    fn empty_axis_panics() {
        let _ = CrossProduct::new().axis("a", Vec::<String>::new());
    }
}
