//! # simart
//!
//! Reproducible, agile full-system simulation experiments.
//!
//! This is the umbrella crate of the *simart* project — a Rust
//! reproduction of the gem5art + gem5-resources system from
//! *Enabling Reproducible and Agile Full-System Simulation*
//! (ISPASS 2021). It wires the substrate crates together and provides
//! the "launch script" experience of the paper's Figure 5: register
//! artifacts, build the cross product of run configurations, hand the
//! runs to a scheduler, and query the database afterwards.
//!
//! ```
//! use simart::Experiment;
//! use simart::artifact::{Artifact, ArtifactKind, ContentSource};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let experiment = Experiment::new("quick-demo");
//! experiment.register_artifact(
//!     Artifact::builder("notes", ArtifactKind::Other("doc".into()))
//!         .documentation("experiment notes")
//!         .content(ContentSource::bytes(b"hello".to_vec())),
//! )?;
//! assert_eq!(experiment.artifact_count(), 1);
//! # Ok(())
//! # }
//! ```
//!
//! The substrate crates are re-exported under short names:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`analyze`] | `simart-analyze` | provenance linting + race detection |
//! | [`artifact`] | `simart-artifact` | provenance records |
//! | [`db`] | `simart-db` | embedded document database |
//! | [`run`] | `simart-run` | run objects |
//! | [`tasks`] | `simart-tasks` | schedulers |
//! | [`sim`] | `simart-fullsim` | the full-system simulator |
//! | [`gpu`] | `simart-gpu` | the GCN3-like GPU model |
//! | [`resources`] | `simart-resources` | the resource catalog |
//! | [`observe`] | `simart-observe` | span tracing + metrics registry |

#![warn(missing_docs)]

pub use simart_analyze as analyze;
pub use simart_artifact as artifact;
pub use simart_db as db;
pub use simart_fullsim as sim;
pub use simart_gpu as gpu;
pub use simart_observe as observe;
pub use simart_resources as resources;
pub use simart_run as run;
pub use simart_tasks as tasks;

pub mod cross;
mod experiment;
pub mod metrics;
pub mod quarantine;
pub mod remote;
pub mod report;

pub use experiment::{ExecOutcome, Experiment, ExperimentError, LaunchOptions, LaunchSummary};
