//! The [`Experiment`] session: the paper's Figure 2 workflow as one
//! object.
//!
//! 1. the user registers artifacts (①), whose records and payloads land
//!    in the database (②);
//! 2. run objects are created (③) and passed to the task library (④);
//! 3. an executor runs them (⑤) and results are stored back (⑥/⑦);
//! 4. the database can be queried at any time (⑧).

use parking_lot::Mutex;
use simart_artifact::{
    Artifact, ArtifactBuilder, ArtifactError, ArtifactId, ArtifactRegistry, Uuid,
};
use simart_db::{ArtifactStore, Database, DbError, Filter, Value};
use simart_observe as observe;
use simart_run::{FsRun, RunError, RunStatus, RunStore};
use simart_tasks::{
    FaultInjector, RemoteEvent, RemoteScheduler, RemoteTaskSpec, RetryPolicy, Scheduler, Task,
    TaskReport, TaskState,
};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Errors surfaced by experiment orchestration.
#[derive(Debug)]
#[non_exhaustive]
pub enum ExperimentError {
    /// Artifact registration failed.
    Artifact(ArtifactError),
    /// Run creation or persistence failed.
    Run(RunError),
    /// Database failure.
    Db(DbError),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Artifact(e) => write!(f, "artifact error: {e}"),
            ExperimentError::Run(e) => write!(f, "run error: {e}"),
            ExperimentError::Db(e) => write!(f, "database error: {e}"),
        }
    }
}

impl std::error::Error for ExperimentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExperimentError::Artifact(e) => Some(e),
            ExperimentError::Run(e) => Some(e),
            ExperimentError::Db(e) => Some(e),
        }
    }
}

impl From<ArtifactError> for ExperimentError {
    fn from(e: ArtifactError) -> Self {
        ExperimentError::Artifact(e)
    }
}

impl From<RunError> for ExperimentError {
    fn from(e: RunError) -> Self {
        ExperimentError::Run(e)
    }
}

impl From<DbError> for ExperimentError {
    fn from(e: DbError) -> Self {
        ExperimentError::Db(e)
    }
}

/// What executing one run produced (returned by the user's executor
/// closure).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExecOutcome {
    /// Short outcome label (`success`, `kernel-panic`, …).
    pub outcome: String,
    /// Simulated ticks of the measured phase.
    pub sim_ticks: u64,
    /// Archived payload (stats dump).
    pub payload: Vec<u8>,
    /// Whether the run counts as successful.
    pub success: bool,
    /// Provenance events the executor wants journaled on the run
    /// record (e.g. the `checkpoint-key:`/`checkpoint-restore:`/
    /// `checkpoint-save:` trail audited by `simart check`'s SA0016).
    pub events: Vec<String>,
}

/// Aggregate summary of a launched batch.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LaunchSummary {
    /// Runs that completed successfully.
    pub done: usize,
    /// Runs that failed (simulation-level failure or executor error).
    pub failed: usize,
    /// Runs killed on timeout.
    pub timed_out: usize,
    /// Runs dead-lettered by the scheduler's supervisor after
    /// exhausting task redeliveries; their [`crate::quarantine`]
    /// records hold the lease history.
    pub quarantined: usize,
    /// Runs skipped because the identical experiment was already
    /// recorded in the database.
    pub skipped_duplicates: usize,
    /// Runs skipped on resume because they already finished
    /// successfully (their results are never silently redone).
    pub skipped_done: usize,
    /// Runs skipped on resume because they sit in quarantine — only an
    /// explicit release re-queues a quarantined run.
    pub skipped_quarantined: usize,
    /// Runs re-queued on resume: previously failed, timed out, or
    /// stranded mid-flight by a crashed session.
    pub requeued: usize,
    /// Runs recorded and executed for the first time by this launch.
    pub fresh: usize,
    /// Runs that needed more than one attempt (whatever their final
    /// state).
    pub retried: usize,
}

impl LaunchSummary {
    /// Total runs examined (executed + skipped).
    pub fn total(&self) -> usize {
        self.done
            + self.failed
            + self.timed_out
            + self.quarantined
            + self.skipped_duplicates
            + self.skipped_done
            + self.skipped_quarantined
    }
}

/// Fault-tolerance knobs for [`Experiment::launch_with`].
#[derive(Debug, Clone, Default)]
pub struct LaunchOptions {
    /// Retry policy applied to every run's task (default: single
    /// attempt, no backoff).
    pub retry_policy: RetryPolicy,
    /// Optional deterministic fault injector threaded into every task.
    pub fault: Option<Arc<FaultInjector>>,
    /// Optional injector for worker-level chaos (stalls and kills),
    /// attached to each task so supervised schedulers consult it at
    /// dequeue time. Keep its attempt-level rates at zero — attempt
    /// faults belong in [`LaunchOptions::fault`], which is injected
    /// around the executor so provenance still records the attempt.
    pub worker_fault: Option<Arc<FaultInjector>>,
    /// Resume mode: instead of skipping duplicate runs outright,
    /// consult their stored status — `Done` runs are skipped, while
    /// failed, timed-out, and stranded (`Queued`/`Running`/`Retrying`)
    /// runs are re-queued and executed again under the same record.
    pub resume: bool,
}

impl LaunchOptions {
    /// Options for resuming an interrupted campaign.
    pub fn resuming() -> LaunchOptions {
        LaunchOptions {
            resume: true,
            ..LaunchOptions::default()
        }
    }

    /// Sets the retry policy.
    pub fn retry_policy(mut self, policy: RetryPolicy) -> LaunchOptions {
        self.retry_policy = policy;
        self
    }

    /// Sets the fault injector.
    pub fn fault(mut self, injector: Arc<FaultInjector>) -> LaunchOptions {
        self.fault = Some(injector);
        self
    }

    /// Sets the worker-chaos injector (stalls and kills).
    pub fn worker_fault(mut self, injector: Arc<FaultInjector>) -> LaunchOptions {
        self.worker_fault = Some(injector);
        self
    }
}

/// An experiment session: registry + database + run store, with launch
/// orchestration.
///
/// Built over an *attached* database ([`Database::open`]), the session
/// is durable as it goes: artifact registrations, run records, status
/// transitions, and archived results all write through to the on-disk
/// journal at commit time, so a crash at any point loses no completed
/// run. Call [`Database::checkpoint`] at natural boundaries to fold
/// the journal into the snapshot files.
#[derive(Clone)]
pub struct Experiment {
    name: String,
    db: Database,
    registry: Arc<Mutex<ArtifactRegistry>>,
    artifacts: ArtifactStore,
    runs: RunStore,
}

impl fmt::Debug for Experiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Experiment")
            .field("name", &self.name)
            .field("artifacts", &self.artifacts.len())
            .field("runs", &self.runs.len())
            .finish()
    }
}

impl Experiment {
    /// Creates an experiment backed by a fresh in-memory database.
    ///
    /// # Panics
    ///
    /// Never panics for a fresh database; constraint installation on a
    /// fresh store is infallible.
    pub fn new(name: impl Into<String>) -> Experiment {
        Self::with_database(name, Database::in_memory()).expect("fresh database has no conflicts")
    }

    /// Creates an experiment over an existing database (e.g. one loaded
    /// from disk to extend previous results).
    ///
    /// # Errors
    ///
    /// Fails if the database's existing contents violate artifact or
    /// run uniqueness constraints.
    pub fn with_database(
        name: impl Into<String>,
        db: Database,
    ) -> Result<Experiment, ExperimentError> {
        let artifacts = ArtifactStore::new(&db)?;
        let runs = RunStore::new(&db)?;
        Ok(Experiment {
            name: name.into(),
            db,
            registry: Arc::new(Mutex::new(ArtifactRegistry::new())),
            artifacts,
            runs,
        })
    }

    /// The experiment's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying database handle.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The run store.
    pub fn runs(&self) -> &RunStore {
        &self.runs
    }

    /// Registers an artifact (workflow steps ① and ②: the registry
    /// assigns identity, the database archives the record).
    ///
    /// # Errors
    ///
    /// Propagates registry and persistence failures.
    pub fn register_artifact(
        &self,
        builder: ArtifactBuilder,
    ) -> Result<Arc<Artifact>, ExperimentError> {
        let artifact = self.registry.lock().register(builder)?;
        self.artifacts.save(&artifact, None)?;
        Ok(artifact)
    }

    /// Runs a closure with access to the artifact registry (for
    /// resource helpers that register several artifacts at once).
    ///
    /// # Errors
    ///
    /// Returns whatever the closure returns; newly registered artifacts
    /// are persisted afterwards.
    pub fn with_registry<T>(
        &self,
        f: impl FnOnce(&mut ArtifactRegistry) -> Result<T, ArtifactError>,
    ) -> Result<T, ExperimentError> {
        let mut registry = self.registry.lock();
        let result = f(&mut registry)?;
        // Persist anything new.
        for artifact in registry.iter() {
            self.artifacts.save(artifact, None)?;
        }
        Ok(result)
    }

    /// Number of registered artifacts.
    pub fn artifact_count(&self) -> usize {
        self.registry.lock().len()
    }

    /// Creates a full-system run builder against this experiment's
    /// registry, yielding the built run (workflow step ③).
    ///
    /// # Errors
    ///
    /// Propagates run-construction failures.
    pub fn create_fs_run(
        &self,
        configure: impl FnOnce(simart_run::FsRunBuilder<'_>) -> simart_run::FsRunBuilder<'_>,
    ) -> Result<FsRun, ExperimentError> {
        let registry = self.registry.lock();
        let builder = FsRun::create(&registry);
        Ok(configure(builder).build()?)
    }

    /// Launches runs through a scheduler (steps ④–⑦).
    ///
    /// `execute` maps a run to its [`ExecOutcome`]; typically it builds
    /// a [`simart_fullsim::system::SystemConfig`] from the run's
    /// parameters and simulates it. Runs whose hash is already in the
    /// database are *skipped* (the same experiment is never measured
    /// twice), mirroring the framework's dedup discipline.
    ///
    /// Equivalent to [`Experiment::launch_with`] with default
    /// [`LaunchOptions`] (one attempt, no fault injection, no resume).
    pub fn launch<S: Scheduler + ?Sized>(
        &self,
        runs: Vec<FsRun>,
        scheduler: &S,
        execute: impl Fn(&FsRun) -> Result<ExecOutcome, String> + Send + Sync + Clone + 'static,
    ) -> LaunchSummary {
        self.launch_with(runs, scheduler, execute, &LaunchOptions::default())
    }

    /// [`Experiment::launch`] with fault-tolerance options: a
    /// [`RetryPolicy`] honored by the task layer, an optional
    /// deterministic [`FaultInjector`], and resume mode.
    ///
    /// Provenance discipline: every status change and attempt is logged
    /// on the run record, and the *terminal* status (`Done`, `Failed`,
    /// `TimedOut`) is written exactly once per launched run — here,
    /// after the task's report arrives, never from inside the attempt
    /// closure. A detached attempt that straggles in after its run
    /// timed out cannot overwrite the terminal state because store
    /// transitions enforce the lifecycle.
    pub fn launch_with<S: Scheduler + ?Sized>(
        &self,
        runs: Vec<FsRun>,
        scheduler: &S,
        execute: impl Fn(&FsRun) -> Result<ExecOutcome, String> + Send + Sync + Clone + 'static,
        options: &LaunchOptions,
    ) -> LaunchSummary {
        let _span = observe::span(|| format!("experiment.launch:{}", self.name));
        let mut summary = LaunchSummary::default();
        let mut handles = Vec::new();
        for fs_run in runs {
            let Some(fs_run) = self.admit(fs_run, options, &mut summary) else {
                continue;
            };
            let store = self.runs.clone();
            let execute = execute.clone();
            let policy = options.retry_policy.clone();
            let fault = options.fault.clone();
            let timeout = fs_run.timeout();
            let run_id = fs_run.id();
            let name = format!("{}/{}", self.name, fs_run.run_hash());
            let fault_name = name.clone();
            // 1-based attempt counter for this run, shared across the
            // per-attempt invocations of the closure below.
            let attempt_counter = Arc::new(AtomicU32::new(0));
            let mut task = Task::new(name, move || {
                let attempt = attempt_counter.fetch_add(1, Ordering::SeqCst) + 1;
                let delay_before = policy.delay_before(attempt);
                let run = fs_run.clone();
                // Queued -> Running on the first attempt, Retrying ->
                // Running afterwards.
                let _ = store.transition(run.id(), RunStatus::Running);
                // Faults are injected around the executor (not around
                // the bookkeeping) so injected errors still leave a
                // complete provenance trail. Injected panics unwind
                // here and are caught by the task layer.
                let result = match &fault {
                    Some(injector) => injector
                        .inject(&fault_name, attempt)
                        .and_then(|()| execute(&run)),
                    None => execute(&run),
                };
                let (disposition, result) = match result {
                    Ok(outcome) => {
                        // Executor-provided provenance (e.g. the
                        // checkpoint save/restore trail) is journaled
                        // before the results land.
                        for event in &outcome.events {
                            let _ = store.log_event(run.id(), event);
                        }
                        let _ = store.attach_results(
                            run.id(),
                            outcome.sim_ticks,
                            &outcome.outcome,
                            &outcome.payload,
                        );
                        if outcome.success {
                            ("succeeded", Ok(outcome.outcome))
                        } else {
                            ("errored", Err(outcome.outcome))
                        }
                    }
                    Err(err) => ("errored", Err(err)),
                };
                let _ = store.record_attempt(run.id(), disposition, delay_before);
                if result.is_err() {
                    // Park the run for a possible retry; the terminal
                    // status (if retries are exhausted) is written by
                    // the post-wait loop, exactly once.
                    let _ = store.transition(run.id(), RunStatus::Retrying);
                }
                result
            })
            .timeout(timeout)
            .retry_policy(options.retry_policy.clone());
            if let Some(injector) = &options.worker_fault {
                // Consulted by supervised schedulers for worker-level
                // chaos; its attempt stream is expected to stay silent.
                task = task.fault_injector(Arc::clone(injector));
            }
            observe::count("experiment.runs_launched", 1);
            handles.push((run_id, scheduler.submit(task)));
        }
        for (run_id, handle) in handles {
            let report: TaskReport = handle.wait();
            match report.state {
                TaskState::Succeeded => {
                    summary.done += 1;
                    let _ = self.runs.transition(run_id, RunStatus::Done);
                }
                TaskState::Failed => {
                    summary.failed += 1;
                    let _ = self.runs.transition(run_id, RunStatus::Failed);
                }
                TaskState::TimedOut => {
                    summary.timed_out += 1;
                    // The attempt never returned, so record it here
                    // before sealing the terminal status.
                    let _ = self.runs.record_attempt(
                        run_id,
                        "timed-out",
                        options.retry_policy.delay_before(report.attempts),
                    );
                    let _ = self.runs.transition(run_id, RunStatus::TimedOut);
                }
                TaskState::Quarantined => self.seal_quarantine(run_id, &report, &mut summary),
            }
            if report.attempts > 1 {
                summary.retried += 1;
            }
        }
        summary
    }

    /// Admits one run for launch: records fresh runs (transitioning
    /// them to `Queued`), skips duplicates, and applies resume
    /// semantics to previously stored records. Returns the run object
    /// to execute (the *stored* record when resuming, so provenance
    /// accumulates on one document) or `None` when the run is skipped;
    /// `summary` is updated either way.
    fn admit(
        &self,
        mut fs_run: FsRun,
        options: &LaunchOptions,
        summary: &mut LaunchSummary,
    ) -> Option<FsRun> {
        match self.runs.record(&fs_run) {
            Ok(()) => {
                summary.fresh += 1;
                let _ = fs_run.transition(RunStatus::Queued);
                let _ = self.runs.transition(fs_run.id(), RunStatus::Queued);
                Some(fs_run)
            }
            Err(RunError::DuplicateRun { .. }) => {
                if !options.resume {
                    summary.skipped_duplicates += 1;
                    return None;
                }
                let stored = match self.runs.find_by_hash(fs_run.run_hash()) {
                    Ok(Some(stored)) => stored,
                    _ => {
                        summary.failed += 1;
                        return None;
                    }
                };
                match stored.status() {
                    RunStatus::Done => {
                        summary.skipped_done += 1;
                        return None;
                    }
                    RunStatus::Quarantined => {
                        // Dead-lettered runs wait for an explicit
                        // release; resume never takes that edge.
                        summary.skipped_quarantined += 1;
                        return None;
                    }
                    RunStatus::Queued => {
                        // Stranded in the queue; already in the right
                        // state to relaunch.
                        summary.requeued += 1;
                    }
                    RunStatus::Created
                    | RunStatus::Running
                    | RunStatus::Retrying
                    | RunStatus::Failed
                    | RunStatus::TimedOut => {
                        let _ = self.runs.transition(stored.id(), RunStatus::Queued);
                        summary.requeued += 1;
                    }
                }
                Some(stored)
            }
            Err(_) => {
                summary.failed += 1;
                None
            }
        }
    }

    /// Seals a dead-lettered run: the quarantine record is persisted
    /// *first* so it exists by the time the status flips to
    /// `Quarantined`.
    fn seal_quarantine(&self, run_id: Uuid, report: &TaskReport, summary: &mut LaunchSummary) {
        summary.quarantined += 1;
        let letter = crate::quarantine::DeadLetter {
            run_id,
            task: report.name.clone(),
            error: report.error.clone().unwrap_or_default(),
            redeliveries: report.redeliveries,
            lease_events: report.lease_events.clone(),
            attempts: report.attempts,
            released: false,
        };
        let _ = crate::quarantine::persist(&self.db, &letter);
        let _ = self.runs.transition(run_id, RunStatus::Quarantined);
    }

    /// Launches runs on the multi-process [`RemoteScheduler`] (steps
    /// ④–⑦ across a process boundary).
    ///
    /// Unlike [`Experiment::launch_with`], no executor closure crosses
    /// the pipe: each run is encoded as a
    /// [`crate::remote::CAMPAIGN_KIND`] task whose payload carries the
    /// run's sweep parameters, and the worker process resolves the
    /// kind through [`crate::remote::campaign_registry`]. Admission
    /// (dedup and `--resume` semantics) matches `launch_with`; results
    /// are decoded and archived here after the ack, and a
    /// dead-lettered delivery lands in the same quarantine records.
    ///
    /// Delivery provenance is journaled onto each run as
    /// `remote-dispatch:<delivery>:g<generation>` and
    /// `remote-ack:<delivery>:g<generation>` events — the trail
    /// `simart check`'s SA0015 audits for attempts orphaned by a
    /// coordinator crash — plus, over the TCP transport,
    /// `remote-reconnect:<session>:g<generation>` events whenever a
    /// worker session resumes while holding the run's lease (audited
    /// by SA0018 for session-resume divergence).
    ///
    /// `options.retry_policy`, `options.fault`, and
    /// `options.worker_fault` are ignored: across a process boundary,
    /// retries are the supervisor's redeliveries
    /// ([`simart_tasks::SupervisorConfig::max_redeliveries`]) and
    /// worker chaos is real SIGKILLs via
    /// [`simart_tasks::RemoteConfig::fault`]. A run whose submission
    /// is refused (backpressure deadline or scheduler shutdown) counts
    /// as failed in the summary but keeps its `Queued` record, so a
    /// `--resume` relaunch picks it up.
    pub fn launch_remote(
        &self,
        runs: Vec<FsRun>,
        scheduler: &RemoteScheduler,
        options: &LaunchOptions,
    ) -> LaunchSummary {
        let _span = observe::span(|| format!("experiment.launch_remote:{}", self.name));
        let mut summary = LaunchSummary::default();
        let mut admitted = Vec::new();
        for fs_run in runs {
            if let Some(fs_run) = self.admit(fs_run, options, &mut summary) {
                admitted.push(fs_run);
            }
        }

        // Task-name -> run-id map for the provenance hook. Names embed
        // the run hash, so they are unique within the experiment.
        let ids: Arc<HashMap<String, Uuid>> = Arc::new(
            admitted
                .iter()
                .map(|run| (format!("{}/{}", self.name, run.run_hash()), run.id()))
                .collect(),
        );
        let store = self.runs.clone();
        scheduler.set_event_hook(move |event| match event {
            RemoteEvent::Dispatched {
                task,
                delivery,
                generation,
                ..
            } => {
                if let Some(&id) = ids.get(task) {
                    let _ =
                        store.log_event(id, &format!("remote-dispatch:{delivery}:g{generation}"));
                    // Queued -> Running on the first delivery; later
                    // deliveries find the run already Running and the
                    // refused edge is simply dropped.
                    let _ = store.transition(id, RunStatus::Running);
                }
            }
            RemoteEvent::Acked {
                task,
                delivery,
                generation,
            } => {
                if let Some(&id) = ids.get(task) {
                    let _ = store.log_event(id, &format!("remote-ack:{delivery}:g{generation}"));
                }
            }
            RemoteEvent::Reconnected {
                task,
                session,
                generation,
            } => {
                // A worker session resumed over a fresh TCP connection
                // while holding this run's lease; journal the resume so
                // SA0018 can audit acks against live sessions.
                if let Some(&id) = ids.get(task) {
                    let _ =
                        store.log_event(id, &format!("remote-reconnect:{session}:g{generation}"));
                }
            }
            RemoteEvent::Redelivered { .. } | RemoteEvent::DeadLettered { .. } => {}
        });

        let mut handles = Vec::new();
        for fs_run in admitted {
            let name = format!("{}/{}", self.name, fs_run.run_hash());
            let spec = RemoteTaskSpec::new(
                name,
                crate::remote::CAMPAIGN_KIND,
                crate::remote::encode_run_payload(fs_run.params()),
            )
            .timeout(fs_run.timeout());
            observe::count("experiment.runs_launched", 1);
            match scheduler.submit(spec) {
                Ok(handle) => handles.push((fs_run.id(), handle)),
                Err(_) => summary.failed += 1,
            }
        }
        for (run_id, handle) in handles {
            let report: TaskReport = handle.wait();
            match report.state {
                TaskState::Succeeded => {
                    // The worker already ran the simulation; archive
                    // its outcome under the run record here. A worker
                    // reporting `success: false` (e.g. a kernel panic)
                    // still archived real results — only the terminal
                    // status differs.
                    match report.output.as_deref().map(crate::remote::decode_outcome) {
                        Some(Ok(outcome)) => {
                            for event in &outcome.events {
                                let _ = self.runs.log_event(run_id, event);
                            }
                            let _ = self.runs.attach_results(
                                run_id,
                                outcome.sim_ticks,
                                &outcome.outcome,
                                &outcome.payload,
                            );
                            let disposition = if outcome.success {
                                "succeeded"
                            } else {
                                "errored"
                            };
                            let _ = self
                                .runs
                                .record_attempt(run_id, disposition, Duration::ZERO);
                            if outcome.success {
                                summary.done += 1;
                                let _ = self.runs.transition(run_id, RunStatus::Done);
                            } else {
                                summary.failed += 1;
                                let _ = self.runs.transition(run_id, RunStatus::Failed);
                            }
                        }
                        _ => {
                            // Version-skewed or mangled outcome
                            // encoding: fail loudly, never archive a
                            // guess.
                            let _ = self.runs.record_attempt(run_id, "errored", Duration::ZERO);
                            summary.failed += 1;
                            let _ = self.runs.transition(run_id, RunStatus::Failed);
                        }
                    }
                }
                TaskState::Failed => {
                    summary.failed += 1;
                    let _ = self.runs.record_attempt(run_id, "errored", Duration::ZERO);
                    let _ = self.runs.transition(run_id, RunStatus::Failed);
                }
                TaskState::TimedOut => {
                    summary.timed_out += 1;
                    let _ = self
                        .runs
                        .record_attempt(run_id, "timed-out", Duration::ZERO);
                    let _ = self.runs.transition(run_id, RunStatus::TimedOut);
                }
                TaskState::Quarantined => self.seal_quarantine(run_id, &report, &mut summary),
            }
            if report.redeliveries > 0 {
                summary.retried += 1;
            }
        }
        summary
    }

    /// Queries run documents (workflow step ⑧).
    pub fn query_runs(&self, filter: &Filter) -> Vec<Value> {
        self.db.collection(RunStore::COLLECTION).find(filter)
    }

    /// Finds every run that used the given artifact — the
    /// reproducibility query.
    ///
    /// # Errors
    ///
    /// Propagates decode failures from corrupt records.
    pub fn runs_using(&self, artifact: ArtifactId) -> Result<Vec<FsRun>, ExperimentError> {
        Ok(self.runs.find_by_artifact(artifact)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simart_artifact::{ArtifactKind, ContentSource};
    use simart_tasks::PoolScheduler;

    fn experiment_with_components() -> (Experiment, [ArtifactId; 5]) {
        let experiment = Experiment::new("test");
        let repo = experiment
            .register_artifact(
                Artifact::builder("sim-repo", ArtifactKind::GitRepo)
                    .documentation("src")
                    .content(ContentSource::git("https://x", "rev1")),
            )
            .unwrap();
        let binary = experiment
            .register_artifact(
                Artifact::builder("sim", ArtifactKind::Binary)
                    .documentation("bin")
                    .content(ContentSource::bytes(b"elf".to_vec()))
                    .input(repo.id()),
            )
            .unwrap();
        let script = experiment
            .register_artifact(
                Artifact::builder("script", ArtifactKind::RunScript)
                    .documentation("cfg")
                    .content(ContentSource::bytes(b"py".to_vec())),
            )
            .unwrap();
        let kernel = experiment
            .register_artifact(
                Artifact::builder("vmlinux", ArtifactKind::Kernel)
                    .documentation("kernel")
                    .content(ContentSource::bytes(b"krn".to_vec())),
            )
            .unwrap();
        let disk = experiment
            .register_artifact(
                Artifact::builder("disk", ArtifactKind::DiskImage)
                    .documentation("img")
                    .content(ContentSource::bytes(b"img".to_vec())),
            )
            .unwrap();
        let ids = [binary.id(), repo.id(), script.id(), kernel.id(), disk.id()];
        (experiment, ids)
    }

    fn make_run(experiment: &Experiment, ids: [ArtifactId; 5], app: &str) -> FsRun {
        let [binary, repo, script, kernel, disk] = ids;
        experiment
            .create_fs_run(|b| {
                b.simulator(binary, "sim")
                    .simulator_repo(repo)
                    .run_script(script, "run.py")
                    .kernel(kernel, "vmlinux")
                    .disk_image(disk, "disk.img")
                    .param(app)
            })
            .unwrap()
    }

    #[test]
    fn artifacts_are_mirrored_into_the_database() {
        let (experiment, _) = experiment_with_components();
        assert_eq!(experiment.artifact_count(), 5);
        assert_eq!(
            experiment.database().collection("artifacts").len(),
            5,
            "registry and database stay in sync"
        );
    }

    #[test]
    fn launch_executes_and_archives_results() {
        let (experiment, ids) = experiment_with_components();
        let runs: Vec<FsRun> = ["a", "b", "c"]
            .iter()
            .map(|app| make_run(&experiment, ids, app))
            .collect();
        let run_ids: Vec<_> = runs.iter().map(|r| r.id()).collect();
        let pool = PoolScheduler::new(2);
        let summary = experiment.launch(runs, &pool, |run| {
            Ok(ExecOutcome {
                outcome: "success".into(),
                sim_ticks: 1000 + run.params()[0].len() as u64,
                payload: format!("stats for {}", run.params()[0]).into_bytes(),
                success: true,
                events: vec![],
            })
        });
        assert_eq!(summary.done, 3);
        assert_eq!(summary.total(), 3);
        for id in run_ids {
            let stored = experiment.runs().load(id).unwrap();
            assert_eq!(stored.status(), RunStatus::Done);
            assert!(experiment.runs().load_results(id).is_some());
        }
    }

    #[test]
    fn duplicate_runs_are_skipped() {
        let (experiment, ids) = experiment_with_components();
        let first = vec![make_run(&experiment, ids, "same")];
        let second = vec![make_run(&experiment, ids, "same")];
        let pool = PoolScheduler::new(1);
        let ok = |_: &FsRun| {
            Ok(ExecOutcome {
                outcome: "success".into(),
                sim_ticks: 1,
                payload: vec![],
                success: true,
                events: vec![],
            })
        };
        let s1 = experiment.launch(first, &pool, ok);
        assert_eq!(s1.done, 1);
        let s2 = experiment.launch(second, &pool, ok);
        assert_eq!(s2.skipped_duplicates, 1);
        assert_eq!(s2.done, 0);
    }

    #[test]
    fn failures_are_recorded() {
        let (experiment, ids) = experiment_with_components();
        let runs = vec![make_run(&experiment, ids, "doomed")];
        let id = runs[0].id();
        let pool = PoolScheduler::new(1);
        let summary = experiment.launch(runs, &pool, |_| Err("simulated crash".to_owned()));
        assert_eq!(summary.failed, 1);
        assert_eq!(
            experiment.runs().load(id).unwrap().status(),
            RunStatus::Failed
        );
    }

    #[test]
    fn retry_policy_reruns_flaky_executors() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let (experiment, ids) = experiment_with_components();
        let runs = vec![make_run(&experiment, ids, "flaky")];
        let id = runs[0].id();
        let pool = PoolScheduler::new(1);
        let calls = Arc::new(AtomicU32::new(0));
        let seen = Arc::clone(&calls);
        let options = LaunchOptions::default().retry_policy(RetryPolicy::immediate(3));
        let summary = experiment.launch_with(
            runs,
            &pool,
            move |_| {
                if seen.fetch_add(1, Ordering::SeqCst) < 2 {
                    Err("transient".to_owned())
                } else {
                    Ok(ExecOutcome {
                        outcome: "success".into(),
                        sim_ticks: 7,
                        payload: vec![],
                        success: true,
                        events: vec![],
                    })
                }
            },
            &options,
        );
        assert_eq!(summary.done, 1);
        assert_eq!(summary.retried, 1);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        assert_eq!(
            experiment.runs().load(id).unwrap().status(),
            RunStatus::Done
        );
        let history = experiment.runs().attempt_history(id).unwrap();
        assert_eq!(history.len(), 3);
        assert_eq!(history[2].disposition, "succeeded");
        // Terminal status appears exactly once in the provenance log.
        let terminal: Vec<_> = experiment
            .runs()
            .events(id)
            .into_iter()
            .filter(|e| ["status:done", "status:failed", "status:timed-out"].contains(&e.as_str()))
            .collect();
        assert_eq!(terminal, vec!["status:done"]);
    }

    #[test]
    fn resume_skips_done_and_requeues_failed() {
        let (experiment, ids) = experiment_with_components();
        let good = make_run(&experiment, ids, "good");
        let bad = make_run(&experiment, ids, "bad");
        let good_id = good.id();
        let bad_id = bad.id();
        let pool = PoolScheduler::new(2);
        let run_batch = |resume: bool, fail_bad: bool| {
            let runs = vec![
                make_run(&experiment, ids, "good"),
                make_run(&experiment, ids, "bad"),
            ];
            let options = if resume {
                LaunchOptions::resuming()
            } else {
                LaunchOptions::default()
            };
            experiment.launch_with(
                runs,
                &pool,
                move |run: &FsRun| {
                    if fail_bad && run.params()[0] == "bad" {
                        Err("boom".to_owned())
                    } else {
                        Ok(ExecOutcome {
                            outcome: "success".into(),
                            sim_ticks: 1,
                            payload: vec![],
                            success: true,
                            events: vec![],
                        })
                    }
                },
                &options,
            )
        };
        // First launch with the original run objects: good done, bad failed.
        let options = LaunchOptions::default();
        let s1 = experiment.launch_with(
            vec![good, bad],
            &pool,
            |run: &FsRun| {
                if run.params()[0] == "bad" {
                    Err("boom".to_owned())
                } else {
                    Ok(ExecOutcome {
                        outcome: "success".into(),
                        sim_ticks: 1,
                        payload: vec![],
                        success: true,
                        events: vec![],
                    })
                }
            },
            &options,
        );
        assert_eq!((s1.done, s1.failed, s1.fresh), (1, 1, 2));
        // Non-resume relaunch: both are duplicates, nothing runs.
        let s2 = run_batch(false, true);
        assert_eq!(s2.skipped_duplicates, 2);
        assert_eq!(s2.total(), 2);
        // Resume: the done run is skipped, the failed one re-queued and
        // (healed) succeeds on the same record.
        let s3 = run_batch(true, false);
        assert_eq!((s3.skipped_done, s3.requeued, s3.done), (1, 1, 1));
        assert_eq!(
            experiment.runs().load(bad_id).unwrap().status(),
            RunStatus::Done
        );
        assert_eq!(
            experiment.runs().load(good_id).unwrap().status(),
            RunStatus::Done
        );
        // The healed run kept one record: no duplicate documents.
        assert_eq!(experiment.runs().len(), 2);
    }

    #[test]
    fn resume_requeues_stranded_running_runs() {
        let (experiment, ids) = experiment_with_components();
        let run = make_run(&experiment, ids, "stranded");
        let id = run.id();
        experiment.runs().record(&run).unwrap();
        // Simulate a crashed session: the run was mid-flight.
        experiment
            .runs()
            .set_status(id, RunStatus::Running)
            .unwrap();
        let pool = PoolScheduler::new(1);
        let summary = experiment.launch_with(
            vec![make_run(&experiment, ids, "stranded")],
            &pool,
            |_| {
                Ok(ExecOutcome {
                    outcome: "success".into(),
                    sim_ticks: 9,
                    payload: vec![],
                    success: true,
                    events: vec![],
                })
            },
            &LaunchOptions::resuming(),
        );
        assert_eq!((summary.requeued, summary.done), (1, 1));
        assert_eq!(
            experiment.runs().load(id).unwrap().status(),
            RunStatus::Done
        );
    }

    #[test]
    fn fault_injection_flows_through_launch() {
        let (experiment, ids) = experiment_with_components();
        let runs = vec![make_run(&experiment, ids, "faulted")];
        let id = runs[0].id();
        let pool = PoolScheduler::new(1);
        let injector = Arc::new(simart_tasks::FaultInjector::new(5).errors(1.0));
        let options = LaunchOptions::default()
            .retry_policy(RetryPolicy::immediate(2))
            .fault(Arc::clone(&injector));
        let summary = experiment.launch_with(
            runs,
            &pool,
            |_| {
                Ok(ExecOutcome {
                    outcome: "success".into(),
                    sim_ticks: 1,
                    payload: vec![],
                    success: true,
                    events: vec![],
                })
            },
            &options,
        );
        assert_eq!(summary.failed, 1);
        assert_eq!(injector.injected_errors(), 2, "both attempts were injected");
        assert_eq!(
            experiment.runs().load(id).unwrap().status(),
            RunStatus::Failed
        );
    }

    #[test]
    fn query_runs_via_database() {
        let (experiment, ids) = experiment_with_components();
        let runs = vec![
            make_run(&experiment, ids, "q1"),
            make_run(&experiment, ids, "q2"),
        ];
        let pool = PoolScheduler::new(2);
        experiment.launch(runs, &pool, |_| {
            Ok(ExecOutcome {
                outcome: "success".into(),
                sim_ticks: 42,
                payload: vec![],
                success: true,
                events: vec![],
            })
        });
        let done = experiment.query_runs(&Filter::eq("status", "done"));
        assert_eq!(done.len(), 2);
        let with_results = experiment.query_runs(&Filter::gte("results.simTicks", 1i64));
        assert_eq!(with_results.len(), 2);
    }

    #[test]
    fn runs_using_traces_artifact_impact() {
        let (experiment, ids) = experiment_with_components();
        let runs = vec![make_run(&experiment, ids, "x")];
        let pool = PoolScheduler::new(1);
        experiment.launch(runs, &pool, |_| {
            Ok(ExecOutcome {
                outcome: "success".into(),
                sim_ticks: 1,
                payload: vec![],
                success: true,
                events: vec![],
            })
        });
        let kernel = ids[3];
        assert_eq!(experiment.runs_using(kernel).unwrap().len(), 1);
    }
}
