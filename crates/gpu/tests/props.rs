//! Property-based tests for the GPU model: register accounting,
//! instruction conservation, and determinism.

use proptest::prelude::*;
use simart_gpu::alloc::{AllocPolicy, RegisterFile};
use simart_gpu::config::GpuConfig;
use simart_gpu::cu::simulate;
use simart_gpu::kernel::{GpuInstMix, GpuKernel, SyncProfile};

fn kernel(workgroups: u32, wf_per_wg: u32, vregs: u32, insts: u32) -> GpuKernel {
    GpuKernel {
        name: format!("prop-{workgroups}-{wf_per_wg}-{vregs}-{insts}"),
        input: String::new(),
        workgroups,
        wavefronts_per_wg: wf_per_wg,
        threads_per_wf: 64,
        vregs_per_wf: vregs,
        sregs_per_wf: 16,
        lds_per_wg: 0,
        insts_per_wf: insts,
        mix: GpuInstMix::compute(),
        sync: SyncProfile::None,
        working_set_per_wf: 2048,
        shared_data: false,
    }
}

proptest! {
    /// The register file never overcommits under arbitrary
    /// admit/release sequences, for both policies.
    #[test]
    fn register_file_never_overcommits(
        ops in proptest::collection::vec(any::<bool>(), 0..128),
        vregs in 8u32..1024,
        dynamic in any::<bool>(),
    ) {
        let config = GpuConfig::table3();
        let policy = if dynamic { AllocPolicy::Dynamic } else { AllocPolicy::Simple };
        let mut rf = RegisterFile::new(&config, policy);
        let k = kernel(100, 1, vregs, 10);
        let mut held: Vec<usize> = Vec::new();
        for admit in ops {
            if admit {
                if let Some(simd) = rf.try_admit(&k) {
                    held.push(simd);
                }
            } else if let Some(simd) = held.pop() {
                rf.release(&k, simd);
            }
            prop_assert!(rf.vregs_used() <= config.vregs_per_cu);
            prop_assert_eq!(rf.vregs_used(), held.len() as u32 * vregs);
            prop_assert_eq!(rf.resident(), held.len() as u32);
            let cap = match policy {
                AllocPolicy::Simple => config.simds_per_cu as u32,
                AllocPolicy::Dynamic => config.max_wavefronts_per_cu() as u32,
            };
            prop_assert!(rf.resident() <= cap);
        }
    }

    /// Every dispatched instruction retires, exactly once, whatever the
    /// grid shape or policy (sync-free kernels).
    #[test]
    fn instruction_conservation(
        workgroups in 1u32..24,
        wf_per_wg in 1u32..4,
        insts in 8u32..80,
        dynamic in any::<bool>(),
    ) {
        let config = GpuConfig::table3();
        let policy = if dynamic { AllocPolicy::Dynamic } else { AllocPolicy::Simple };
        let k = kernel(workgroups, wf_per_wg, 64, insts);
        let result = simulate(&config, &k, policy);
        prop_assert_eq!(result.instructions, (workgroups * wf_per_wg * insts) as u64);
        prop_assert!(result.cycles > 0);
        prop_assert!(result.peak_occupancy as usize <= config.max_wavefronts_per_cu());
    }

    /// Simulation is a pure function of (kernel, policy).
    #[test]
    fn simulation_determinism(workgroups in 1u32..12, insts in 8u32..64) {
        let config = GpuConfig::table3();
        let k = kernel(workgroups, 2, 64, insts);
        for policy in [AllocPolicy::Simple, AllocPolicy::Dynamic] {
            let a = simulate(&config, &k, policy);
            let b = simulate(&config, &k, policy);
            prop_assert_eq!(a.cycles, b.cycles);
            prop_assert_eq!(a.stats.dump(), b.stats.dump());
        }
    }

    /// More work never takes (meaningfully) less time. The two grids
    /// share a kernel name so their common wavefronts execute identical
    /// streams; a small tolerance absorbs cache-warming interactions
    /// between wavefronts.
    #[test]
    fn monotonic_in_workgroups(base in 1u32..16, extra in 1u32..16) {
        let config = GpuConfig::table3();
        let mut small_kernel = kernel(base, 2, 64, 40);
        small_kernel.name = "prop-monotone".to_owned();
        let mut large_kernel = kernel(base + extra, 2, 64, 40);
        large_kernel.name = "prop-monotone".to_owned();
        let small = simulate(&config, &small_kernel, AllocPolicy::Simple);
        let large = simulate(&config, &large_kernel, AllocPolicy::Simple);
        prop_assert!(large.cycles * 20 >= small.cycles * 19,
            "{} wgs took {} cycles, {} wgs took {}",
            base, small.cycles, base + extra, large.cycles);
    }
}
