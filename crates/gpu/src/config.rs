//! GPU machine configuration (the paper's Table III).

use serde::{Deserialize, Serialize};
use simart_fullsim::ticks::Clock;

/// Fidelity of the GPU model's dependence tracking.
///
/// The paper attributes the dynamic allocator's surprising average loss
/// to the public model's *overly simplistic* dependence tracking, and
/// suggests improving it "could pay significant dividends". This knob
/// implements that ablation: [`DependenceTracking::Improved`] removes
/// the occupancy-scaled scoreboard/replay stalls (issue logic that can
/// disambiguate in-flight accesses precisely), letting the benefit of
/// extra wavefronts show undiluted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DependenceTracking {
    /// The public GCN3 model's behaviour (the paper's measurements).
    #[default]
    Simplistic,
    /// The hypothetical improved tracker of the paper's future work.
    Improved,
}

/// Configuration of the simulated GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Number of compute units.
    pub cus: usize,
    /// SIMD16 vector units per CU.
    pub simds_per_cu: usize,
    /// Lanes per SIMD unit.
    pub simd_width: usize,
    /// GPU clock in MHz.
    pub clock_mhz: u64,
    /// Maximum wavefronts resident per SIMD.
    pub max_wavefronts_per_simd: usize,
    /// Vector registers per CU.
    pub vregs_per_cu: u32,
    /// Scalar registers per CU.
    pub sregs_per_cu: u32,
    /// Local data share per CU, bytes.
    pub lds_bytes_per_cu: u64,
    /// L1 instruction cache shared between every 4 CUs, bytes.
    pub l1i_bytes: u64,
    /// L1 data cache per CU, bytes.
    pub l1d_bytes_per_cu: u64,
    /// Unified L2, bytes.
    pub l2_bytes: u64,
    /// Dependence-tracking fidelity (see [`DependenceTracking`]).
    pub dep_tracking: DependenceTracking,
}

impl GpuConfig {
    /// The exact configuration of the paper's Table III.
    pub fn table3() -> GpuConfig {
        GpuConfig {
            cus: 4,
            simds_per_cu: 4,
            simd_width: 16,
            clock_mhz: 1000,
            max_wavefronts_per_simd: 10,
            vregs_per_cu: 8 * 1024,
            sregs_per_cu: 8 * 1024,
            lds_bytes_per_cu: 64 * 1024,
            l1i_bytes: 32 * 1024,
            l1d_bytes_per_cu: 16 * 1024,
            l2_bytes: 256 * 1024,
            dep_tracking: DependenceTracking::Simplistic,
        }
    }

    /// The Table III machine with the future-work improved dependence
    /// tracker (for the ablation study).
    pub fn table3_improved_tracking() -> GpuConfig {
        GpuConfig {
            dep_tracking: DependenceTracking::Improved,
            ..Self::table3()
        }
    }

    /// Maximum wavefronts resident per CU.
    pub fn max_wavefronts_per_cu(&self) -> usize {
        self.max_wavefronts_per_simd * self.simds_per_cu
    }

    /// The GPU clock domain.
    pub fn clock(&self) -> Clock {
        Clock::from_mhz(self.clock_mhz)
    }

    /// Cycles a 64-thread wavefront occupies one SIMD16 per vector
    /// instruction.
    pub fn cycles_per_vector_inst(&self, threads_per_wf: usize) -> u64 {
        (threads_per_wf as u64).div_ceil(self.simd_width as u64)
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::table3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_values_match_the_paper() {
        let c = GpuConfig::table3();
        assert_eq!(c.cus, 4);
        assert_eq!(c.simds_per_cu, 4);
        assert_eq!(c.clock_mhz, 1000);
        assert_eq!(c.max_wavefronts_per_cu(), 40, "10 per SIMD16, 40 per CU");
        assert_eq!(c.vregs_per_cu, 8192);
        assert_eq!(c.sregs_per_cu, 8192);
        assert_eq!(c.lds_bytes_per_cu, 64 * 1024);
        assert_eq!(c.l1i_bytes, 32 * 1024);
        assert_eq!(c.l1d_bytes_per_cu, 16 * 1024);
        assert_eq!(c.l2_bytes, 256 * 1024);
    }

    #[test]
    fn wavefront_occupies_simd_for_four_cycles() {
        let c = GpuConfig::table3();
        assert_eq!(c.cycles_per_vector_inst(64), 4);
        assert_eq!(c.cycles_per_vector_inst(16), 1);
        assert_eq!(c.cycles_per_vector_inst(1), 1);
    }

    #[test]
    fn clock_is_one_ghz() {
        assert_eq!(GpuConfig::table3().clock().period(), 1000);
    }
}
