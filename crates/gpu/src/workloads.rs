//! The 29 GPU benchmarks of the paper's Table IV, as kernel
//! descriptors.
//!
//! Grid shapes and instruction counts are *scaled* (the real inputs run
//! billions of instructions) but preserve each application's character:
//! whether it oversubscribes the machine, its register demand, its
//! memory-vs-compute balance, its cache sensitivity, and its
//! synchronization behaviour. Those properties are what determine how
//! the two register allocators compare (Figure 9).

use crate::kernel::{GpuInstMix, GpuKernel, SyncProfile};

/// All 29 Table IV application names, in the table's order.
pub const ALL: [&str; 29] = [
    "2dshfl",
    "dynamic_shared",
    "inline_asm",
    "MatrixTranspose",
    "sharedMemory",
    "shfl",
    "stream",
    "unroll",
    "SpinMutexEBO",
    "FAMutex",
    "SleepMutex",
    "SpinMutexEBOUniq",
    "FAMutexUniq",
    "SleepMutexUniq",
    "LFTreeBarrUniq",
    "LFTreeBarrUniqLocalExch",
    "bwd_bypass",
    "bwd_bn",
    "bwd_composed_model",
    "bwd_pool",
    "bwd_softmax",
    "fwd_bypass",
    "fwd_bn",
    "fwd_composed_model",
    "fwd_pool",
    "fwd_softmax",
    "HACC",
    "LULESH",
    "PENNANT",
];

/// The benchmark suite an application belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// HIP sample applications.
    HipSamples,
    /// HeteroSync fine-grained synchronization microbenchmarks.
    HeteroSync,
    /// DNNMark DNN primitive layers.
    DnnMark,
    /// DOE proxy applications.
    Proxy,
}

/// Suite of a Table IV application.
pub fn suite_of(name: &str) -> Option<Suite> {
    let hip = [
        "2dshfl",
        "dynamic_shared",
        "inline_asm",
        "MatrixTranspose",
        "sharedMemory",
        "shfl",
        "stream",
        "unroll",
    ];
    let hs = [
        "SpinMutexEBO",
        "FAMutex",
        "SleepMutex",
        "SpinMutexEBOUniq",
        "FAMutexUniq",
        "SleepMutexUniq",
        "LFTreeBarrUniq",
        "LFTreeBarrUniqLocalExch",
    ];
    let dnn = [
        "bwd_bypass",
        "bwd_bn",
        "bwd_composed_model",
        "bwd_pool",
        "bwd_softmax",
        "fwd_bypass",
        "fwd_bn",
        "fwd_composed_model",
        "fwd_pool",
        "fwd_softmax",
    ];
    if hip.contains(&name) {
        Some(Suite::HipSamples)
    } else if hs.contains(&name) {
        Some(Suite::HeteroSync)
    } else if dnn.contains(&name) {
        Some(Suite::DnnMark)
    } else if ["HACC", "LULESH", "PENNANT"].contains(&name) {
        Some(Suite::Proxy)
    } else {
        None
    }
}

/// Input-size label from Table IV.
pub fn input_of(name: &str) -> &'static str {
    match name {
        "2dshfl" | "shfl" | "unroll" => "4x4",
        "dynamic_shared" => "16x16",
        "inline_asm" | "MatrixTranspose" => "1024x1024",
        "sharedMemory" => "64x64",
        "stream" => "32x32",
        name if name.starts_with("Spin")
            || name.starts_with("FAMutex")
            || name.starts_with("Sleep") =>
        {
            "10 Ld/St/thr/CS, 8 WGs/CU, 2 iters"
        }
        name if name.starts_with("LFTreeBarr") => "10 Ld/St/thr/barrier, 8 WGs/CU, 2 iters",
        "bwd_bypass" | "bwd_bn" | "bwd_softmax" | "fwd_bypass" | "fwd_bn" | "fwd_softmax" => {
            "NCHW = 100, 1000, 1, 1"
        }
        "bwd_composed_model" | "fwd_composed_model" => "NCHW = 32, 32, 3, 1",
        "bwd_pool" | "fwd_pool" => "NCHW = 100, 3, 256, 256",
        "HACC" => "0.5 0.1 64 0.1 100 N 12 rcb (forceTreeTest)",
        "LULESH" => "1 iteration",
        "PENNANT" => "noh",
        _ => "unknown",
    }
}

fn base(name: &str, workgroups: u32, wf_per_wg: u32, insts: u32, mix: GpuInstMix) -> GpuKernel {
    GpuKernel {
        name: name.to_owned(),
        input: input_of(name).to_owned(),
        workgroups,
        wavefronts_per_wg: wf_per_wg,
        threads_per_wf: 64,
        vregs_per_wf: 96,
        sregs_per_wf: 24,
        lds_per_wg: 0,
        insts_per_wf: insts,
        mix,
        sync: SyncProfile::None,
        working_set_per_wf: 2048,
        shared_data: false,
    }
}

fn mutex(name: &str, spin_intensity: f64, unique_locks: bool) -> GpuKernel {
    // 8 WGs/CU x 4 CUs, 256-thread WGs (4 wavefronts), 2 iterations with
    // several critical sections each ("10 Ld/St per thread per CS").
    let mut k = base(
        name,
        32,
        4,
        360,
        GpuInstMix {
            valu: 0.30,
            salu: 0.08,
            global_mem: 0.42,
            lds: 0.10,
            atomic: 0.10,
        },
    );
    k.sync = SyncProfile::Mutex {
        hold_insts: 30,
        acquisitions: 6,
        unique_locks,
        spin_intensity,
    };
    k.working_set_per_wf = 1024;
    k.vregs_per_wf = 64;
    k
}

/// Builds the kernel descriptor for a Table IV application, or `None`
/// for an unknown name.
pub fn by_name(name: &str) -> Option<GpuKernel> {
    let k = match name {
        // ---- HIP samples ----
        // Tiny grids: a handful of wavefronts, nothing to oversubscribe.
        "2dshfl" | "shfl" | "unroll" => base(name, 1, 1, 220, GpuInstMix::compute()),
        "dynamic_shared" => {
            let mut k = base(name, 1, 4, 260, GpuInstMix::lds_tiled());
            k.lds_per_wg = 2048;
            k
        }
        "sharedMemory" => {
            let mut k = base(name, 4, 4, 260, GpuInstMix::lds_tiled());
            k.lds_per_wg = 4096;
            k
        }
        // Large grids with plenty of independent work: the dynamic
        // allocator's best case.
        "inline_asm" => {
            let mut k = base(name, 96, 4, 300, GpuInstMix::compute());
            k.vregs_per_wf = 48; // lean kernels, occupancy-friendly
            k
        }
        "MatrixTranspose" => {
            let mut k = base(
                name,
                128,
                4,
                280,
                GpuInstMix {
                    valu: 0.30,
                    salu: 0.05,
                    global_mem: 0.42,
                    lds: 0.22,
                    atomic: 0.01,
                },
            );
            k.vregs_per_wf = 56;
            k.lds_per_wg = 2048;
            // All wavefronts walk the same matrix tiles: L2-resident.
            k.working_set_per_wf = 12 * 1024;
            k.shared_data = true;
            k
        }
        "stream" => {
            let mut k = base(name, 64, 4, 320, GpuInstMix::streaming());
            k.vregs_per_wf = 40;
            k.working_set_per_wf = 12 * 1024;
            k.shared_data = true;
            k
        }
        // ---- HeteroSync ----
        "SpinMutexEBO" => mutex(name, 1.0, false),
        "FAMutex" => mutex(name, 0.08, false), // ticket lock polls hardest
        "SleepMutex" => mutex(name, 2.6, false),
        "SpinMutexEBOUniq" => mutex(name, 1.0, true),
        "FAMutexUniq" => mutex(name, 0.08, true),
        "SleepMutexUniq" => mutex(name, 2.6, true),
        "LFTreeBarrUniq" | "LFTreeBarrUniqLocalExch" => {
            let mut k = base(
                name,
                32,
                4,
                360,
                GpuInstMix {
                    valu: 0.32,
                    salu: 0.08,
                    global_mem: 0.40,
                    lds: if name.ends_with("LocalExch") {
                        0.16
                    } else {
                        0.10
                    },
                    atomic: 0.10,
                },
            );
            k.sync = SyncProfile::Barrier { episodes: 4 };
            k.working_set_per_wf = 1024;
            k.vregs_per_wf = 64;
            k
        }
        // ---- DNNMark ----
        // Elementwise layers over 100k activations: oversubscribed,
        // streaming, cache-insensitive.
        "bwd_bypass" | "fwd_bypass" => {
            let mut k = base(name, 64, 4, 260, GpuInstMix::streaming());
            k.vregs_per_wf = 40;
            k.working_set_per_wf = 12 * 1024;
            k.shared_data = true;
            k
        }
        "bwd_bn" | "fwd_bn" => {
            let mut k = base(
                name,
                64,
                4,
                300,
                GpuInstMix {
                    valu: 0.44,
                    salu: 0.06,
                    global_mem: 0.40,
                    lds: 0.08,
                    atomic: 0.02,
                },
            );
            k.vregs_per_wf = 48;
            k.working_set_per_wf = 12 * 1024;
            k.shared_data = true;
            k
        }
        // Tiny composed models: everything resident at once either way.
        "bwd_composed_model" | "fwd_composed_model" => {
            let mut k = base(name, 4, 4, 280, GpuInstMix::compute());
            k.vregs_per_wf = 96;
            k
        }
        // Pooling over 100x3x256x256: hot per-wavefront tiles that fit
        // the L1 at low occupancy and thrash it at full occupancy.
        "bwd_pool" | "fwd_pool" => {
            let mut k = base(
                name,
                160,
                4,
                280,
                GpuInstMix {
                    valu: 0.34,
                    salu: 0.05,
                    global_mem: 0.48,
                    lds: 0.12,
                    atomic: 0.01,
                },
            );
            k.vregs_per_wf = 48;
            k.working_set_per_wf = 1024;
            k
        }
        "bwd_softmax" | "fwd_softmax" => {
            let mut k = base(
                name,
                48,
                4,
                280,
                GpuInstMix {
                    valu: 0.46,
                    salu: 0.06,
                    global_mem: 0.38,
                    lds: 0.08,
                    atomic: 0.02,
                },
            );
            k.vregs_per_wf = 48;
            k.working_set_per_wf = 12 * 1024;
            k.shared_data = true;
            k
        }
        // ---- DOE proxy apps ----
        // Limited additional work to schedule: flat.
        "HACC" => {
            let mut k = base(name, 24, 4, 340, GpuInstMix::compute());
            k.vregs_per_wf = 1400; // force-kernel register pressure caps occupancy
            k
        }
        "LULESH" => {
            let mut k = base(
                name,
                36,
                4,
                340,
                GpuInstMix {
                    valu: 0.58,
                    salu: 0.08,
                    global_mem: 0.26,
                    lds: 0.06,
                    atomic: 0.02,
                },
            );
            k.vregs_per_wf = 1800; // register-hungry hydrodynamics kernels cap occupancy
            k
        }
        // Plenty of mesh zones to overlap: dynamic wins.
        "PENNANT" => {
            let mut k = base(
                name,
                120,
                4,
                300,
                GpuInstMix {
                    valu: 0.46,
                    salu: 0.06,
                    global_mem: 0.38,
                    lds: 0.08,
                    atomic: 0.02,
                },
            );
            k.vregs_per_wf = 56;
            k.working_set_per_wf = 12 * 1024;
            k.shared_data = true;
            k
        }
        _ => return None,
    };
    Some(k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_29_applications_resolve() {
        assert_eq!(ALL.len(), 29);
        for name in ALL {
            let k = by_name(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(k.name, name);
            assert!(suite_of(name).is_some(), "{name} has no suite");
            assert!(!input_of(name).is_empty());
        }
        assert!(by_name("not-a-kernel").is_none());
    }

    #[test]
    fn suite_membership_counts() {
        let count = |suite: Suite| ALL.iter().filter(|n| suite_of(n) == Some(suite)).count();
        assert_eq!(count(Suite::HipSamples), 8);
        assert_eq!(count(Suite::HeteroSync), 8);
        assert_eq!(count(Suite::DnnMark), 10);
        assert_eq!(count(Suite::Proxy), 3);
    }

    #[test]
    fn heterosync_uses_table_iv_grid() {
        // "8 WGs/CU" on a 4-CU machine.
        let k = by_name("FAMutex").unwrap();
        assert_eq!(k.workgroups, 32);
        assert!(matches!(
            k.sync,
            SyncProfile::Mutex {
                unique_locks: false,
                ..
            }
        ));
        let uniq = by_name("FAMutexUniq").unwrap();
        assert!(matches!(
            uniq.sync,
            SyncProfile::Mutex {
                unique_locks: true,
                ..
            }
        ));
    }

    #[test]
    fn small_kernels_do_not_oversubscribe() {
        for name in ["2dshfl", "shfl", "unroll", "dynamic_shared", "sharedMemory"] {
            let k = by_name(name).unwrap();
            assert!(!k.oversubscribes(160), "{name}");
        }
        for name in ["inline_asm", "MatrixTranspose", "bwd_pool", "PENNANT"] {
            let k = by_name(name).unwrap();
            assert!(k.oversubscribes(160), "{name}");
        }
    }

    #[test]
    fn inputs_match_table_iv() {
        assert_eq!(input_of("MatrixTranspose"), "1024x1024");
        assert_eq!(input_of("fwd_pool"), "NCHW = 100, 3, 256, 256");
        assert_eq!(input_of("PENNANT"), "noh");
        assert_eq!(input_of("FAMutex"), "10 Ld/St/thr/CS, 8 WGs/CU, 2 iters");
    }
}
