//! The top-level GPU object.

use crate::alloc::AllocPolicy;
use crate::config::GpuConfig;
use crate::cu::{simulate, MachineResult};
use crate::kernel::GpuKernel;
use simart_fullsim::stats::Stats;
use simart_fullsim::ticks::Tick;

/// A simulated GPU ready to run kernel dispatches.
#[derive(Debug, Clone, Default)]
pub struct Gpu {
    config: GpuConfig,
    /// Divides per-wavefront instruction counts, for fast smoke tests.
    scale_down: u32,
}

/// Result of running one kernel on the GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuRunResult {
    /// Simulated time in ticks (gem5 convention: shader ticks).
    pub ticks: Tick,
    /// GPU cycles.
    pub cycles: u64,
    /// Instructions executed.
    pub instructions: u64,
    /// Failed lock acquisitions.
    pub lock_retries: u64,
    /// Peak wavefronts resident on any CU.
    pub peak_occupancy: u32,
    /// Full statistics.
    pub stats: Stats,
}

impl Gpu {
    /// A GPU with the paper's Table III configuration.
    pub fn table3() -> Gpu {
        Gpu {
            config: GpuConfig::table3(),
            scale_down: 1,
        }
    }

    /// A GPU with a custom configuration.
    pub fn with_config(config: GpuConfig) -> Gpu {
        Gpu {
            config,
            scale_down: 1,
        }
    }

    /// Returns a copy whose kernel instruction counts are divided by
    /// `factor` — cheaper simulations with the same qualitative
    /// behaviour, for tests.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn scaled_down(mut self, factor: u32) -> Gpu {
        assert!(factor > 0, "scale factor must be positive");
        self.scale_down = factor;
        self
    }

    /// The machine configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Runs `kernel` under the given register-allocation policy.
    pub fn run(&self, kernel: &GpuKernel, policy: AllocPolicy) -> GpuRunResult {
        let mut scaled = kernel.clone();
        scaled.insts_per_wf = (kernel.insts_per_wf / self.scale_down).max(8);
        if let crate::kernel::SyncProfile::Mutex {
            hold_insts,
            acquisitions,
            unique_locks,
            spin_intensity,
        } = scaled.sync
        {
            scaled.sync = crate::kernel::SyncProfile::Mutex {
                hold_insts: (hold_insts / self.scale_down).max(2),
                acquisitions,
                unique_locks,
                spin_intensity,
            };
        }
        let MachineResult {
            cycles,
            instructions,
            lock_retries,
            peak_occupancy,
            stats,
            ..
        } = simulate(&self.config, &scaled, policy);
        let ticks = self.config.clock().cycles_to_ticks(cycles);
        GpuRunResult {
            ticks,
            cycles,
            instructions,
            lock_retries,
            peak_occupancy,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{GpuInstMix, SyncProfile};

    fn kernel() -> GpuKernel {
        GpuKernel {
            name: "g".into(),
            input: String::new(),
            workgroups: 16,
            wavefronts_per_wg: 4,
            threads_per_wf: 64,
            vregs_per_wf: 64,
            sregs_per_wf: 16,
            lds_per_wg: 0,
            insts_per_wf: 200,
            mix: GpuInstMix::compute(),
            sync: SyncProfile::None,
            working_set_per_wf: 2048,
            shared_data: false,
        }
    }

    #[test]
    fn ticks_follow_one_ghz_clock() {
        let result = Gpu::table3().run(&kernel(), AllocPolicy::Simple);
        assert_eq!(result.ticks, result.cycles * 1000);
    }

    #[test]
    fn scaled_down_runs_fewer_instructions() {
        let full = Gpu::table3().run(&kernel(), AllocPolicy::Simple);
        let scaled = Gpu::table3()
            .scaled_down(4)
            .run(&kernel(), AllocPolicy::Simple);
        assert!(scaled.instructions < full.instructions);
        assert!(scaled.cycles < full.cycles);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_panics() {
        let _ = Gpu::table3().scaled_down(0);
    }
}
