//! # simart-gpu
//!
//! A GCN3-like GPU timing model — the reproduction's stand-in for the
//! gem5 GPU model used by the paper's use-case 3.
//!
//! The model is a real (scaled) cycle simulator, not a latency table:
//!
//! * [`config::GpuConfig`] — the Table III machine: 4 compute units,
//!   4 SIMD16s per CU, 1 GHz, up to 10 wavefronts per SIMD, 8K vector +
//!   8K scalar registers per CU, 16 KB L1D per CU, shared 256 KB L2,
//!   one DDR3-1600 channel;
//! * [`alloc`] — the two register-allocation policies the paper
//!   compares: **simple** (one wavefront per SIMD at a time, limiting
//!   stalls) and **dynamic** (admit wavefronts while registers remain);
//! * [`cu`] — per-CU wavefront scheduling with *deliberately simplistic
//!   dependence tracking* (a wavefront blocks on its own outstanding
//!   memory op, and scoreboard scan cost grows with resident
//!   wavefronts) — the modeling property the paper identifies as the
//!   reason the dynamic allocator loses on average;
//! * [`workloads`] — the 29 Table IV benchmarks (HIP samples,
//!   HeteroSync, DNNMark, HACC, LULESH, PENNANT) as kernel descriptors.
//!
//! ```
//! use simart_gpu::{Gpu, alloc::AllocPolicy, workloads};
//!
//! # fn main() {
//! let kernel = workloads::by_name("MatrixTranspose").unwrap();
//! let simple = Gpu::table3().run(&kernel, AllocPolicy::Simple);
//! let dynamic = Gpu::table3().run(&kernel, AllocPolicy::Dynamic);
//! // Plenty of independent workgroups: the dynamic allocator overlaps
//! // them and wins on this kernel.
//! assert!(dynamic.ticks < simple.ticks);
//! # }
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod config;
pub mod cu;
pub mod kernel;
pub mod memory;
pub mod workloads;

mod gpu;

pub use gpu::{Gpu, GpuRunResult};
