//! The GPU machine simulator: wavefront scheduling across compute
//! units.
//!
//! Event-driven at instruction granularity: at every step the wavefront
//! that can issue earliest (its own readiness vs. its SIMD's
//! availability) executes one instruction. This captures exactly the
//! trade-off the paper's use-case 3 studies:
//!
//! * more resident wavefronts → memory latency hides behind other
//!   wavefronts' issue (the dynamic allocator's win);
//! * but the model's *simplistic dependence tracking* charges a
//!   scoreboard-scan penalty that grows with occupancy, spinning
//!   mutexes burn SIMD issue slots, atomics to hot lines serialize, and
//!   tiny L1s thrash (the dynamic allocator's losses).
//!
//! All time is tracked in millicycles (1/1000 GPU cycle) in integer
//! arithmetic, keeping the simulation deterministic.

use crate::alloc::{AllocPolicy, RegisterFile};
use crate::config::{DependenceTracking, GpuConfig};
use crate::kernel::{GpuKernel, GpuOp, SyncProfile};
use crate::memory::GpuMemory;
use simart_fullsim::rng::DetRng;
use simart_fullsim::stats::Stats;
use std::collections::HashMap;

/// Millicycles per cycle.
const MC: u64 = 1000;
/// Scoreboard-scan penalty per *issued instruction* per extra resident
/// wavefront beyond one per SIMD, in millicycles. The penalty extends
/// the SIMD's busy time (issue logic serializes), so it only bites at
/// high occupancy. This is the "overly simplistic dependence tracking"
/// knob.
const SCOREBOARD_MC_PER_WF: u64 = 90;
/// Memory-pipe replay: when an access misses the L1, the simplistic
/// dependence tracking re-issues the memory instruction while the miss
/// is outstanding, burning SIMD issue slots in proportion to how many
/// wavefronts are resident (they all replay against the same busy
/// pipe). Millicycles of extra SIMD busy time per miss per resident
/// wavefront beyond one per SIMD.
const MISS_REPLAY_MC_PER_WF: u64 = 400;
/// Atomics always occupy the (single, per-CU) memory pipe and are
/// replayed while pending, like misses but costlier.
const ATOMIC_REPLAY_MC_PER_WF: u64 = 1800;
/// Probability that an instruction consumes an outstanding memory
/// result and must wait for it (`s_waitcnt`). Below 1.0 because the
/// compiler schedules independent work between loads and uses.
const CONSUMER_FRACTION: f64 = 0.30;
/// Extra cycles before a vector ALU result is ready (in-order
/// wavefronts wait for it before their next issue when the compiler
/// could not schedule independent work in between). A lone wavefront
/// loses some SIMD slots to this; resident peers fill them.
const VALU_RESULT_MC: u64 = 4 * MC;
/// Base address of the kernel-wide shared data region.
const SHARED_BASE: u64 = 0x2000_0000;
/// Base cost of a lock acquire/release atomic, cycles.
const LOCK_ATOMIC_CYCLES: f64 = 90.0;
/// Additional cycles per unit of interference at the lock line. The
/// interference from N spinners polling at rate 1/spin_intensity grows
/// sub-linearly (they back off), hence the square root.
const LOCK_CONFLICT_CYCLES: f64 = 60.0;

/// Cost in cycles of touching a lock line while `waiters` wavefronts
/// poll it with the given spin intensity (lower intensity = harder
/// polling = more interference at the atomic unit).
fn lock_op_cycles(waiters: u32, spin_intensity: f64) -> u64 {
    let interference = (waiters as f64 / spin_intensity.max(0.05)).sqrt();
    (LOCK_ATOMIC_CYCLES + LOCK_CONFLICT_CYCLES * interference) as u64
}

/// Aggregate result of simulating one kernel dispatch.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineResult {
    /// Total GPU cycles to drain the dispatch.
    pub cycles: u64,
    /// Instructions executed (excluding spin retries).
    pub instructions: u64,
    /// Failed lock-acquire attempts.
    pub lock_retries: u64,
    /// Barrier episodes completed.
    pub barriers: u64,
    /// Peak wavefronts resident on any CU.
    pub peak_occupancy: u32,
    /// Detailed statistics.
    pub stats: Stats,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum WfState {
    Active,
    AtBarrier,
    Done,
}

#[derive(Debug)]
struct Wavefront {
    cu: usize,
    simd: usize,
    wg: usize,
    ready_mc: u64,
    /// When this wavefront last issued (for round-robin arbitration
    /// among wavefronts that are ready at the same time).
    last_issue_mc: u64,
    /// Completion time of the newest outstanding global memory access;
    /// the wavefront only stalls on it at consumer instructions.
    pending_mem_mc: u64,
    executed: u32,
    state: WfState,
    rng: DetRng,
    stride_pos: u64,
    base_addr: u64,
    // Mutex bookkeeping.
    acquisitions_left: u32,
    next_acquire_at: u32,
    holding: bool,
    hold_remaining: u32,
    lock_line: u64,
    spinning: bool,
    // Barrier bookkeeping.
    barriers_left: u32,
    next_barrier_at: u32,
}

/// Simulates one kernel dispatch on the configured machine.
pub fn simulate(config: &GpuConfig, kernel: &GpuKernel, policy: AllocPolicy) -> MachineResult {
    Machine::new(config, kernel, policy).run()
}

struct Machine<'a> {
    config: &'a GpuConfig,
    kernel: &'a GpuKernel,
    mem: GpuMemory,
    regs: Vec<RegisterFile>,
    lds_used: Vec<u64>,
    simd_free_mc: Vec<Vec<u64>>,
    wavefronts: Vec<Wavefront>,
    wg_remaining_wfs: HashMap<usize, u32>,
    next_wg: usize,
    lock_holder: HashMap<u64, usize>,
    lock_waiters: HashMap<u64, u32>,
    lock_retries: u64,
    barriers_done: u64,
    instructions: u64,
    scoreboard_stall_mc: u64,
}

impl<'a> Machine<'a> {
    fn new(config: &'a GpuConfig, kernel: &'a GpuKernel, policy: AllocPolicy) -> Machine<'a> {
        let mut machine = Machine {
            config,
            kernel,
            mem: GpuMemory::new(config.cus, config.l1d_bytes_per_cu, config.l2_bytes),
            regs: (0..config.cus)
                .map(|_| RegisterFile::new(config, policy))
                .collect(),
            lds_used: vec![0; config.cus],
            simd_free_mc: vec![vec![0; config.simds_per_cu]; config.cus],
            wavefronts: Vec::new(),
            wg_remaining_wfs: HashMap::new(),
            next_wg: 0,
            lock_holder: HashMap::new(),
            lock_waiters: HashMap::new(),
            lock_retries: 0,
            barriers_done: 0,
            instructions: 0,
            scoreboard_stall_mc: 0,
        };
        machine.fill_all_cus(0);
        machine
    }

    /// Admits pending workgroups wherever they fit, starting at `now`.
    fn fill_all_cus(&mut self, now_mc: u64) {
        loop {
            let mut admitted_any = false;
            for cu in 0..self.config.cus {
                if self.next_wg >= self.kernel.workgroups as usize {
                    return;
                }
                if self.try_admit_wg(cu, now_mc) {
                    admitted_any = true;
                }
            }
            if !admitted_any {
                return;
            }
        }
    }

    /// Tries to admit one whole workgroup onto `cu`.
    fn try_admit_wg(&mut self, cu: usize, now_mc: u64) -> bool {
        if self.next_wg >= self.kernel.workgroups as usize {
            return false;
        }
        let wfs = self.kernel.wavefronts_per_wg;
        if self.lds_used[cu] + self.kernel.lds_per_wg > self.config.lds_bytes_per_cu {
            return false;
        }
        // Tentatively admit; roll back if the whole WG does not fit.
        let mut placed: Vec<usize> = Vec::with_capacity(wfs as usize);
        for _ in 0..wfs {
            match self.regs[cu].try_admit(self.kernel) {
                Some(simd) => placed.push(simd),
                None => {
                    for simd in placed {
                        self.regs[cu].release(self.kernel, simd);
                    }
                    return false;
                }
            }
        }
        let wg = self.next_wg;
        self.next_wg += 1;
        self.lds_used[cu] += self.kernel.lds_per_wg;
        self.wg_remaining_wfs.insert(wg, wfs);
        for (i, simd) in placed.into_iter().enumerate() {
            let global_id = (wg as u32) * wfs + i as u32;
            let wavefront = self.make_wavefront(global_id, cu, simd, wg, now_mc);
            self.wavefronts.push(wavefront);
        }
        true
    }

    fn make_wavefront(
        &self,
        global_id: u32,
        cu: usize,
        simd: usize,
        wg: usize,
        now_mc: u64,
    ) -> Wavefront {
        let insts = self.kernel.insts_per_wf;
        let (acquisitions, first_acquire, lock_line) = match self.kernel.sync {
            SyncProfile::Mutex {
                acquisitions,
                unique_locks,
                ..
            } => {
                let gap = insts / (acquisitions + 1);
                let line = if unique_locks {
                    0x4000 + global_id as u64
                } else {
                    1
                };
                (acquisitions, gap, line)
            }
            _ => (0, u32::MAX, 0),
        };
        let (barriers, first_barrier) = match self.kernel.sync {
            SyncProfile::Barrier { episodes } => (episodes, insts / (episodes + 1)),
            _ => (0, u32::MAX),
        };
        Wavefront {
            cu,
            simd,
            wg,
            ready_mc: now_mc,
            last_issue_mc: 0,
            pending_mem_mc: 0,
            executed: 0,
            state: WfState::Active,
            // Seeded independently of the allocation policy: the same
            // wavefront executes the same instructions either way.
            rng: DetRng::from_label(&format!("{}/wf{global_id}", self.kernel.name)),
            stride_pos: 0,
            base_addr: 0x1000_0000 + global_id as u64 * self.kernel.working_set_per_wf.max(64),
            acquisitions_left: acquisitions,
            next_acquire_at: first_acquire,
            holding: false,
            hold_remaining: 0,
            lock_line,
            spinning: false,
            barriers_left: barriers,
            next_barrier_at: first_barrier,
        }
    }

    fn run(mut self) -> MachineResult {
        let mut finish_mc: u64 = 0;
        loop {
            // Pick the wavefront that can issue earliest; break ties in
            // favour of the one that has waited longest (round-robin),
            // then by index for determinism.
            let mut best: Option<(u64, u64, usize)> = None;
            for (idx, wf) in self.wavefronts.iter().enumerate() {
                if wf.state != WfState::Active {
                    continue;
                }
                let t = wf.ready_mc.max(self.simd_free_mc[wf.cu][wf.simd]);
                let key = (t, wf.last_issue_mc, idx);
                if best.map(|b| key < b).unwrap_or(true) {
                    best = Some(key);
                }
            }
            let Some((t, _, idx)) = best else {
                // No active wavefront: release a waiting barrier cohort,
                // or we are done.
                if self.release_barrier() {
                    continue;
                }
                break;
            };
            let end = self.step(idx, t);
            finish_mc = finish_mc.max(end);
        }
        let peak = self
            .regs
            .iter()
            .map(RegisterFile::peak_resident)
            .max()
            .unwrap_or(0);
        let cycles = finish_mc.div_ceil(MC).max(1);
        let mut stats = Stats::new();
        stats.set_count("gpu.cycles", cycles);
        stats.set_count("gpu.instructions", self.instructions);
        stats.set_count("gpu.lockRetries", self.lock_retries);
        stats.set_count("gpu.barriers", self.barriers_done);
        stats.set_count("gpu.peakOccupancyPerCu", peak as u64);
        stats.set_count("gpu.scoreboardStallCycles", self.scoreboard_stall_mc / MC);
        self.mem.dump_stats("gpu.mem", &mut stats);
        MachineResult {
            cycles,
            instructions: self.instructions,
            lock_retries: self.lock_retries,
            barriers: self.barriers_done,
            peak_occupancy: peak,
            stats,
        }
    }

    /// Millicycles of occupancy-scaled issue stall, zero under the
    /// improved dependence tracker.
    fn tracking_penalty_mc(&self, per_wf_mc: u64, resident: u64) -> u64 {
        match self.config.dep_tracking {
            DependenceTracking::Simplistic => {
                per_wf_mc * resident.saturating_sub(self.config.simds_per_cu as u64)
            }
            DependenceTracking::Improved => 0,
        }
    }

    /// Executes one issue slot for wavefront `idx` at time `t`; returns
    /// the completion time of whatever it did.
    fn step(&mut self, idx: usize, t: u64) -> u64 {
        // Scoreboard scan: the simplistic dependence-tracking logic
        // serializes issue, so every instruction extends the SIMD's busy
        // time in proportion to CU occupancy beyond one WF per SIMD.
        let cu = self.wavefronts[idx].cu;
        let resident = self.regs[cu].resident() as u64;
        let sb_mc = self.tracking_penalty_mc(SCOREBOARD_MC_PER_WF, resident);
        self.scoreboard_stall_mc += sb_mc;
        let occupancy_mc = sb_mc
            + self
                .config
                .cycles_per_vector_inst(self.kernel.threads_per_wf as usize)
                * MC;

        self.wavefronts[idx].last_issue_mc = t;

        // Mutex protocol first: acquire attempts gate progress.
        if let SyncProfile::Mutex {
            hold_insts,
            spin_intensity,
            ..
        } = self.kernel.sync
        {
            let wf = &self.wavefronts[idx];
            if !wf.holding && wf.acquisitions_left > 0 && wf.executed >= wf.next_acquire_at {
                return self.attempt_lock(idx, t, hold_insts, spin_intensity, occupancy_mc);
            }
        }

        // Regular instruction.
        let weights = self.kernel.mix.weights();
        let ops = [
            GpuOp::Valu,
            GpuOp::Salu,
            GpuOp::GlobalMem,
            GpuOp::Lds,
            GpuOp::Atomic,
        ];
        let (op, addr) = {
            let wf = &mut self.wavefronts[idx];
            let op = ops[wf.rng.weighted_index(&weights)];
            let addr = if op == GpuOp::GlobalMem {
                let ws = self.kernel.working_set_per_wf.max(64);
                if self.kernel.shared_data {
                    // Kernel-wide tiles/tables: every wavefront walks the
                    // same region, so caches stay effective at any
                    // occupancy.
                    SHARED_BASE + wf.rng.below(ws / 64) * 64
                } else {
                    wf.stride_pos = (wf.stride_pos + 64) % ws;
                    wf.base_addr + wf.stride_pos
                }
            } else {
                0
            };
            (op, addr)
        };
        let (busy_mc, complete_mc) = match op {
            GpuOp::Valu => (occupancy_mc, t + occupancy_mc + VALU_RESULT_MC),
            GpuOp::Salu => (MC, t + MC),
            GpuOp::GlobalMem => {
                let is_write = self.wavefronts[idx].rng.chance(0.3);
                let (latency, l1_hit) = self.mem.global_access(cu, addr, is_write, t);
                let replay_mc = if l1_hit {
                    0
                } else {
                    self.tracking_penalty_mc(MISS_REPLAY_MC_PER_WF, resident)
                };
                self.scoreboard_stall_mc += replay_mc;
                let done = t + occupancy_mc + latency * MC;
                let wf = &mut self.wavefronts[idx];
                wf.pending_mem_mc = wf.pending_mem_mc.max(done);
                // With probability CONSUMER_FRACTION the next instruction
                // uses this result immediately (`s_waitcnt` right after
                // the load): the wavefront blocks until the data lands.
                // Otherwise the access completes in the background and
                // only the end-of-kernel drain waits for it.
                let blocking = wf.rng.chance(CONSUMER_FRACTION);
                let next_ready = if blocking { done } else { t + occupancy_mc };
                (occupancy_mc + replay_mc, next_ready)
            }
            GpuOp::Lds => (occupancy_mc, t + occupancy_mc + self.mem.lds_access() * MC),
            GpuOp::Atomic => {
                let line = self.wavefronts[idx].rng.below(16);
                let latency = self.mem.atomic_access(0x8000 + line);
                let replay_mc = self.tracking_penalty_mc(ATOMIC_REPLAY_MC_PER_WF, resident);
                self.scoreboard_stall_mc += replay_mc;
                // Atomics wait for completion (waitcnt 0 semantics).
                (occupancy_mc + replay_mc, t + occupancy_mc + latency * MC)
            }
        };
        self.simd_free_mc[cu][self.wavefronts[idx].simd] = t + busy_mc;
        self.instructions += 1;

        let wf = &mut self.wavefronts[idx];
        wf.ready_mc = complete_mc;
        wf.executed += 1;
        if wf.holding {
            wf.hold_remaining = wf.hold_remaining.saturating_sub(1);
        }
        let release_needed = wf.holding && wf.hold_remaining == 0;
        if release_needed {
            self.release_lock(idx, complete_mc);
        }
        self.after_instruction(idx, complete_mc);
        let wf = &self.wavefronts[idx];
        if wf.state == WfState::Done || wf.state == WfState::AtBarrier {
            // Kernel end / barrier implies `s_waitcnt 0`: all outstanding
            // memory must land (this is where a saturated DRAM channel's
            // queue becomes visible).
            let drained = complete_mc.max(wf.pending_mem_mc);
            self.wavefronts[idx].ready_mc = drained;
            drained
        } else {
            complete_mc
        }
    }

    fn attempt_lock(
        &mut self,
        idx: usize,
        t: u64,
        hold_insts: u32,
        spin_intensity: f64,
        occupancy_mc: u64,
    ) -> u64 {
        let line = self.wavefronts[idx].lock_line;
        let waiters_now = self.lock_waiters.get(&line).copied().unwrap_or(0);
        let atomic_latency = lock_op_cycles(waiters_now, spin_intensity) * MC;
        let cu = self.wavefronts[idx].cu;
        let simd = self.wavefronts[idx].simd;
        // The acquire attempt is a vector atomic: it occupies the SIMD
        // whether or not it succeeds — spinning burns issue slots — and
        // replays against the memory pipe like any other atomic.
        let resident = self.regs[cu].resident() as u64;
        let replay_mc = self.tracking_penalty_mc(ATOMIC_REPLAY_MC_PER_WF, resident);
        self.scoreboard_stall_mc += replay_mc;
        self.simd_free_mc[cu][simd] = t + occupancy_mc + replay_mc;
        match self.lock_holder.get(&line) {
            None => {
                self.lock_holder.insert(line, idx);
                if self.wavefronts[idx].spinning {
                    if let Some(w) = self.lock_waiters.get_mut(&line) {
                        *w = w.saturating_sub(1);
                    }
                }
                let wf = &mut self.wavefronts[idx];
                wf.spinning = false;
                wf.holding = true;
                wf.hold_remaining = hold_insts.max(1);
                wf.acquisitions_left -= 1;
                wf.ready_mc = t + occupancy_mc + atomic_latency;
                wf.ready_mc
            }
            Some(_) => {
                self.lock_retries += 1;
                let already_counted = self.wavefronts[idx].spinning;
                let entry = self.lock_waiters.entry(line).or_insert(0);
                if !already_counted {
                    *entry += 1;
                }
                let waiters = *entry;
                let backoff_mc =
                    (spin_intensity * (35.0 + 14.0 * waiters as f64) * MC as f64) as u64;
                let wf = &mut self.wavefronts[idx];
                wf.spinning = true;
                wf.ready_mc = t + occupancy_mc + atomic_latency + backoff_mc;
                wf.ready_mc
            }
        }
    }

    fn release_lock(&mut self, idx: usize, t: u64) {
        let line = self.wavefronts[idx].lock_line;
        let spin = match self.kernel.sync {
            SyncProfile::Mutex { spin_intensity, .. } => spin_intensity,
            _ => 1.0,
        };
        let waiters = self.lock_waiters.get(&line).copied().unwrap_or(0);
        // The holder's release competes with every poll in flight.
        let release_latency = lock_op_cycles(waiters, spin) * MC;
        debug_assert_eq!(
            self.lock_holder.get(&line),
            Some(&idx),
            "release by non-holder"
        );
        self.lock_holder.remove(&line);
        let wf = &mut self.wavefronts[idx];
        wf.holding = false;
        wf.ready_mc = t + release_latency;
        let gap = self.kernel.insts_per_wf / (wf.acquisitions_left.max(1) + 1);
        wf.next_acquire_at = wf.executed + gap.max(1);
    }

    fn after_instruction(&mut self, idx: usize, now_mc: u64) {
        let insts_per_wf = self.kernel.insts_per_wf;
        let wf = &mut self.wavefronts[idx];
        if wf.barriers_left > 0 && wf.executed >= wf.next_barrier_at {
            wf.state = WfState::AtBarrier;
            return;
        }
        if wf.executed >= insts_per_wf && !wf.holding {
            wf.state = WfState::Done;
            let (cu, simd, wg) = (wf.cu, wf.simd, wf.wg);
            self.regs[cu].release(self.kernel, simd);
            let remaining = self
                .wg_remaining_wfs
                .get_mut(&wg)
                .expect("workgroup registered at admission");
            *remaining -= 1;
            if *remaining == 0 {
                self.lds_used[cu] -= self.kernel.lds_per_wg;
                self.wg_remaining_wfs.remove(&wg);
            }
            self.fill_all_cus(now_mc);
        }
    }

    /// Releases the waiting barrier cohort (all currently resident
    /// wavefronts), returning whether anything was released.
    fn release_barrier(&mut self) -> bool {
        let waiting: Vec<usize> = self
            .wavefronts
            .iter()
            .enumerate()
            .filter(|(_, wf)| wf.state == WfState::AtBarrier)
            .map(|(i, _)| i)
            .collect();
        if waiting.is_empty() {
            return false;
        }
        self.barriers_done += 1;
        let arrival = waiting
            .iter()
            .map(|i| self.wavefronts[*i].ready_mc)
            .max()
            .unwrap_or(0);
        // Tree barrier: log2(n) rounds of atomics.
        let rounds = (waiting.len() as f64).log2().ceil().max(1.0) as u64;
        let cost_mc = rounds * self.mem.atomic_access(0x7fff) * MC;
        let insts_per_wf = self.kernel.insts_per_wf;
        for i in waiting {
            let wf = &mut self.wavefronts[i];
            wf.state = WfState::Active;
            wf.ready_mc = arrival + cost_mc;
            wf.barriers_left -= 1;
            let gap = insts_per_wf / (wf.barriers_left + 1).max(1);
            wf.next_barrier_at = if wf.barriers_left == 0 {
                u32::MAX
            } else {
                wf.executed + gap.max(1)
            };
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::GpuInstMix;

    fn kernel(wgs: u32, sync: SyncProfile) -> GpuKernel {
        GpuKernel {
            name: "cu-test".into(),
            input: String::new(),
            workgroups: wgs,
            wavefronts_per_wg: 4,
            threads_per_wf: 64,
            vregs_per_wf: 64,
            sregs_per_wf: 16,
            lds_per_wg: 1024,
            insts_per_wf: 120,
            mix: GpuInstMix::compute(),
            sync,
            working_set_per_wf: 2048,
            shared_data: false,
        }
    }

    #[test]
    fn all_instructions_retire() {
        let config = GpuConfig::table3();
        let k = kernel(8, SyncProfile::None);
        let result = simulate(&config, &k, AllocPolicy::Simple);
        assert_eq!(result.instructions, 8 * 4 * 120);
        assert!(result.cycles > 0);
    }

    #[test]
    fn dynamic_reaches_higher_occupancy() {
        let config = GpuConfig::table3();
        let k = kernel(40, SyncProfile::None);
        let simple = simulate(&config, &k, AllocPolicy::Simple);
        let dynamic = simulate(&config, &k, AllocPolicy::Dynamic);
        assert_eq!(simple.peak_occupancy, 4, "one per SIMD");
        assert!(dynamic.peak_occupancy > 16, "dynamic fills the CU");
        assert_eq!(simple.instructions, dynamic.instructions);
    }

    #[test]
    fn simulation_is_deterministic() {
        let config = GpuConfig::table3();
        let k = kernel(
            12,
            SyncProfile::Mutex {
                hold_insts: 10,
                acquisitions: 3,
                unique_locks: false,
                spin_intensity: 1.0,
            },
        );
        let a = simulate(&config, &k, AllocPolicy::Dynamic);
        let b = simulate(&config, &k, AllocPolicy::Dynamic);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.lock_retries, b.lock_retries);
    }

    #[test]
    fn contended_mutex_produces_retries_and_they_grow_with_occupancy() {
        let config = GpuConfig::table3();
        let k = kernel(
            16,
            SyncProfile::Mutex {
                hold_insts: 15,
                acquisitions: 4,
                unique_locks: false,
                spin_intensity: 0.5,
            },
        );
        let simple = simulate(&config, &k, AllocPolicy::Simple);
        let dynamic = simulate(&config, &k, AllocPolicy::Dynamic);
        assert!(
            dynamic.lock_retries > simple.lock_retries * 2,
            "dynamic {} vs simple {}",
            dynamic.lock_retries,
            simple.lock_retries
        );
    }

    #[test]
    fn unique_locks_avoid_retries() {
        let config = GpuConfig::table3();
        let k = kernel(
            16,
            SyncProfile::Mutex {
                hold_insts: 15,
                acquisitions: 4,
                unique_locks: true,
                spin_intensity: 0.5,
            },
        );
        let result = simulate(&config, &k, AllocPolicy::Dynamic);
        assert_eq!(result.lock_retries, 0);
        // Critical sections may extend a wavefront slightly past its
        // nominal instruction budget.
        assert!(result.instructions >= 16 * 4 * 120);
    }

    #[test]
    fn barriers_complete_without_deadlock() {
        let config = GpuConfig::table3();
        let k = kernel(8, SyncProfile::Barrier { episodes: 3 });
        for policy in [AllocPolicy::Simple, AllocPolicy::Dynamic] {
            let result = simulate(&config, &k, policy);
            assert!(result.barriers > 0, "{policy}");
            assert_eq!(result.instructions, 8 * 4 * 120, "{policy}");
        }
    }

    #[test]
    fn lds_capacity_limits_residency() {
        let config = GpuConfig::table3();
        let mut k = kernel(40, SyncProfile::None);
        k.lds_per_wg = 40 * 1024; // only one WG per CU fits
        let result = simulate(&config, &k, AllocPolicy::Dynamic);
        assert!(result.peak_occupancy <= 4, "one WG (4 WFs) per CU");
        assert_eq!(result.instructions, 40 * 4 * 120);
    }
}
