//! Register allocation policies.
//!
//! The paper's use-case 3 compares the two allocators of the public
//! GCN3 GPU model:
//!
//! * **simple** — schedule one wavefront per SIMD16 at a time. Low
//!   occupancy, but it limits the stalls the model's simplistic
//!   dependence tracking produces.
//! * **dynamic** — admit wavefronts up to the per-CU maximum (40)
//!   whenever enough vector and scalar registers remain, monitoring
//!   per-wavefront register requirements.

use crate::config::GpuConfig;
use crate::kernel::GpuKernel;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which register allocator to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AllocPolicy {
    /// One wavefront per SIMD16 at a time.
    Simple,
    /// Up to the maximum wavefronts per CU, bounded by registers.
    Dynamic,
}

impl fmt::Display for AllocPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocPolicy::Simple => f.write_str("simple"),
            AllocPolicy::Dynamic => f.write_str("dynamic"),
        }
    }
}

/// Tracks the register files of one compute unit and admits wavefronts
/// according to the configured policy.
#[derive(Debug, Clone)]
pub struct RegisterFile {
    policy: AllocPolicy,
    vregs_total: u32,
    sregs_total: u32,
    vregs_used: u32,
    sregs_used: u32,
    resident_per_simd: Vec<u32>,
    max_per_simd: u32,
    peak_resident: u32,
}

impl RegisterFile {
    /// Creates the register file of one CU.
    pub fn new(config: &GpuConfig, policy: AllocPolicy) -> RegisterFile {
        RegisterFile {
            policy,
            vregs_total: config.vregs_per_cu,
            sregs_total: config.sregs_per_cu,
            vregs_used: 0,
            sregs_used: 0,
            resident_per_simd: vec![0; config.simds_per_cu],
            max_per_simd: config.max_wavefronts_per_simd as u32,
            peak_resident: 0,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> AllocPolicy {
        self.policy
    }

    /// Currently resident wavefronts on the CU.
    pub fn resident(&self) -> u32 {
        self.resident_per_simd.iter().sum()
    }

    /// Highest resident count observed.
    pub fn peak_resident(&self) -> u32 {
        self.peak_resident
    }

    /// Vector registers currently allocated.
    pub fn vregs_used(&self) -> u32 {
        self.vregs_used
    }

    /// Tries to admit one wavefront of `kernel`, returning the SIMD it
    /// was placed on.
    ///
    /// Admission requires free registers under both policies; the
    /// simple policy additionally caps each SIMD at one resident
    /// wavefront.
    pub fn try_admit(&mut self, kernel: &GpuKernel) -> Option<usize> {
        if self.vregs_used + kernel.vregs_per_wf > self.vregs_total
            || self.sregs_used + kernel.sregs_per_wf > self.sregs_total
        {
            return None;
        }
        let cap = match self.policy {
            AllocPolicy::Simple => 1,
            AllocPolicy::Dynamic => self.max_per_simd,
        };
        let simd = self
            .resident_per_simd
            .iter()
            .enumerate()
            .filter(|(_, count)| **count < cap)
            .min_by_key(|(_, count)| **count)
            .map(|(simd, _)| simd)?;
        self.resident_per_simd[simd] += 1;
        self.vregs_used += kernel.vregs_per_wf;
        self.sregs_used += kernel.sregs_per_wf;
        self.peak_resident = self.peak_resident.max(self.resident());
        Some(simd)
    }

    /// Releases a completed wavefront's registers and SIMD slot.
    ///
    /// # Panics
    ///
    /// Panics on accounting underflow — releasing a wavefront that was
    /// never admitted is a simulator bug.
    pub fn release(&mut self, kernel: &GpuKernel, simd: usize) {
        assert!(
            self.resident_per_simd[simd] > 0,
            "no resident wavefront on SIMD {simd}"
        );
        assert!(
            self.vregs_used >= kernel.vregs_per_wf,
            "vreg accounting underflow"
        );
        assert!(
            self.sregs_used >= kernel.sregs_per_wf,
            "sreg accounting underflow"
        );
        self.resident_per_simd[simd] -= 1;
        self.vregs_used -= kernel.vregs_per_wf;
        self.sregs_used -= kernel.sregs_per_wf;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{GpuInstMix, SyncProfile};

    fn kernel(vregs: u32) -> GpuKernel {
        GpuKernel {
            name: "k".into(),
            input: String::new(),
            workgroups: 100,
            wavefronts_per_wg: 1,
            threads_per_wf: 64,
            vregs_per_wf: vregs,
            sregs_per_wf: 16,
            lds_per_wg: 0,
            insts_per_wf: 10,
            mix: GpuInstMix::compute(),
            sync: SyncProfile::None,
            working_set_per_wf: 1024,
            shared_data: false,
        }
    }

    #[test]
    fn simple_caps_one_wavefront_per_simd() {
        let config = GpuConfig::table3();
        let mut rf = RegisterFile::new(&config, AllocPolicy::Simple);
        let k = kernel(64);
        let mut admitted = 0;
        while rf.try_admit(&k).is_some() {
            admitted += 1;
        }
        assert_eq!(admitted, 4, "one per SIMD16");
    }

    #[test]
    fn dynamic_admits_up_to_register_capacity() {
        let config = GpuConfig::table3();
        let mut rf = RegisterFile::new(&config, AllocPolicy::Dynamic);
        // 512 vregs per wavefront: 8192/512 = 16 fit by registers,
        // which is below the 40-wavefront occupancy cap.
        let k = kernel(512);
        let mut admitted = 0;
        while rf.try_admit(&k).is_some() {
            admitted += 1;
        }
        assert_eq!(admitted, 16);
        assert_eq!(rf.vregs_used(), 8192);
    }

    #[test]
    fn dynamic_caps_at_max_wavefronts() {
        let config = GpuConfig::table3();
        let mut rf = RegisterFile::new(&config, AllocPolicy::Dynamic);
        // Tiny register demand: occupancy cap (40) binds first.
        let k = kernel(8);
        let mut admitted = 0;
        while rf.try_admit(&k).is_some() {
            admitted += 1;
        }
        assert_eq!(admitted, 40);
        assert_eq!(rf.peak_resident(), 40);
    }

    #[test]
    fn release_frees_capacity() {
        let config = GpuConfig::table3();
        let mut rf = RegisterFile::new(&config, AllocPolicy::Simple);
        let k = kernel(64);
        let simd = rf.try_admit(&k).unwrap();
        assert_eq!(rf.resident(), 1);
        rf.release(&k, simd);
        assert_eq!(rf.resident(), 0);
        assert_eq!(rf.vregs_used(), 0);
        assert!(rf.try_admit(&k).is_some());
    }

    #[test]
    #[should_panic(expected = "no resident wavefront")]
    fn double_release_panics() {
        let config = GpuConfig::table3();
        let mut rf = RegisterFile::new(&config, AllocPolicy::Simple);
        let k = kernel(64);
        let simd = rf.try_admit(&k).unwrap();
        rf.release(&k, simd);
        rf.release(&k, simd);
    }

    #[test]
    fn admission_balances_across_simds() {
        let config = GpuConfig::table3();
        let mut rf = RegisterFile::new(&config, AllocPolicy::Dynamic);
        let k = kernel(8);
        let mut placements = vec![0u32; config.simds_per_cu];
        for _ in 0..8 {
            placements[rf.try_admit(&k).unwrap()] += 1;
        }
        assert_eq!(placements, vec![2, 2, 2, 2]);
    }
}
