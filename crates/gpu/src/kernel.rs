//! GPU kernel descriptors.
//!
//! A [`GpuKernel`] is what a dispatch looks like to the machine: a grid
//! of workgroups, per-wavefront register demand, an instruction mix,
//! and a synchronization profile. These are the knobs that decide how
//! the two register allocators behave on a given application.

use serde::{Deserialize, Serialize};

/// Instruction categories the GPU pipeline distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuOp {
    /// Vector ALU op (occupies a SIMD16 for 4 cycles per wavefront).
    Valu,
    /// Scalar ALU op.
    Salu,
    /// Global memory access (through L1D/L2/DRAM).
    GlobalMem,
    /// Local data share access.
    Lds,
    /// Atomic/synchronization op on global memory.
    Atomic,
}

/// Relative frequency of each [`GpuOp`] in a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuInstMix {
    /// Weight of vector ALU work.
    pub valu: f64,
    /// Weight of scalar work.
    pub salu: f64,
    /// Weight of global memory accesses.
    pub global_mem: f64,
    /// Weight of LDS accesses.
    pub lds: f64,
    /// Weight of atomics (outside explicit lock sections).
    pub atomic: f64,
}

impl GpuInstMix {
    /// A compute-dominated mix.
    pub fn compute() -> GpuInstMix {
        GpuInstMix {
            valu: 0.72,
            salu: 0.10,
            global_mem: 0.12,
            lds: 0.05,
            atomic: 0.01,
        }
    }

    /// A memory-streaming mix.
    pub fn streaming() -> GpuInstMix {
        GpuInstMix {
            valu: 0.40,
            salu: 0.06,
            global_mem: 0.45,
            lds: 0.08,
            atomic: 0.01,
        }
    }

    /// An LDS-tiled mix (shared-memory kernels).
    pub fn lds_tiled() -> GpuInstMix {
        GpuInstMix {
            valu: 0.48,
            salu: 0.07,
            global_mem: 0.18,
            lds: 0.26,
            atomic: 0.01,
        }
    }

    /// Weights in [`GpuOp`] declaration order.
    pub fn weights(&self) -> [f64; 5] {
        [self.valu, self.salu, self.global_mem, self.lds, self.atomic]
    }
}

/// How a kernel synchronizes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SyncProfile {
    /// No inter-workgroup synchronization.
    None,
    /// Wavefronts repeatedly acquire a global mutex, perform a critical
    /// section, and release it.
    Mutex {
        /// Critical-section length in instructions.
        hold_insts: u32,
        /// Lock acquisitions per wavefront.
        acquisitions: u32,
        /// Whether each wavefront locks its *own* lock (the HeteroSync
        /// `Uniq` local-access variants) instead of one global lock.
        unique_locks: bool,
        /// Relative cost of one acquire attempt (sleep mutexes back off
        /// more gently than spin mutexes).
        spin_intensity: f64,
    },
    /// Tree barrier across all wavefronts, repeated per iteration.
    Barrier {
        /// Barrier episodes per wavefront.
        episodes: u32,
    },
}

/// A GPU kernel dispatch descriptor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuKernel {
    /// Kernel/application name.
    pub name: String,
    /// Input-size label (Table IV).
    pub input: String,
    /// Number of workgroups in the grid.
    pub workgroups: u32,
    /// Wavefronts per workgroup.
    pub wavefronts_per_wg: u32,
    /// Threads per wavefront (≤ 64).
    pub threads_per_wf: u32,
    /// Vector registers demanded by each wavefront.
    pub vregs_per_wf: u32,
    /// Scalar registers demanded by each wavefront.
    pub sregs_per_wf: u32,
    /// LDS bytes per workgroup.
    pub lds_per_wg: u64,
    /// Dynamic instructions per wavefront (scaled).
    pub insts_per_wf: u32,
    /// Instruction mix.
    pub mix: GpuInstMix,
    /// Synchronization behaviour.
    pub sync: SyncProfile,
    /// Per-wavefront global working set in bytes (drives cache
    /// contention as occupancy grows).
    pub working_set_per_wf: u64,
    /// Whether global accesses target a kernel-wide shared region
    /// (read-mostly tiles/tables every wavefront walks) instead of
    /// private per-wavefront buffers.
    pub shared_data: bool,
}

impl GpuKernel {
    /// Total wavefronts in the dispatch.
    pub fn total_wavefronts(&self) -> u32 {
        self.workgroups * self.wavefronts_per_wg
    }

    /// Whether the grid offers more wavefronts than the machine can
    /// hold at once (the precondition for the dynamic allocator to
    /// help, per the paper).
    pub fn oversubscribes(&self, max_resident: u32) -> bool {
        self.total_wavefronts() > max_resident
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel(workgroups: u32, wf_per_wg: u32) -> GpuKernel {
        GpuKernel {
            name: "test".into(),
            input: "n/a".into(),
            workgroups,
            wavefronts_per_wg: wf_per_wg,
            threads_per_wf: 64,
            vregs_per_wf: 64,
            sregs_per_wf: 16,
            lds_per_wg: 0,
            insts_per_wf: 100,
            mix: GpuInstMix::compute(),
            sync: SyncProfile::None,
            working_set_per_wf: 4096,
            shared_data: false,
        }
    }

    #[test]
    fn total_wavefronts_multiplies() {
        assert_eq!(kernel(8, 4).total_wavefronts(), 32);
    }

    #[test]
    fn oversubscription_check() {
        // Table III machine: 4 CUs x 40 WFs = 160 resident max.
        assert!(!kernel(8, 4).oversubscribes(160));
        assert!(kernel(100, 2).oversubscribes(160));
    }

    #[test]
    fn mixes_are_plausible() {
        for mix in [
            GpuInstMix::compute(),
            GpuInstMix::streaming(),
            GpuInstMix::lds_tiled(),
        ] {
            let sum: f64 = mix.weights().iter().sum();
            assert!((0.9..=1.1).contains(&sum), "weights {sum}");
        }
        assert!(GpuInstMix::streaming().global_mem > GpuInstMix::compute().global_mem);
        assert!(GpuInstMix::lds_tiled().lds > GpuInstMix::compute().lds);
    }
}
