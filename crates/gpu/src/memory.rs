//! The GPU memory path: per-CU L1D, shared L2, DRAM, and atomics.
//!
//! GPU latencies are long (hundreds of cycles to DRAM) and the L1s are
//! tiny (16 KB), so cache behaviour under rising occupancy is what
//! separates the two register allocators on memory-bound kernels: more
//! resident wavefronts thrash the L1 and queue at the atomic unit.

use simart_fullsim::mem::cache::SetAssocCache;
use simart_fullsim::mem::dram::Ddr3Channel;
use simart_fullsim::stats::Stats;

/// GPU-scale latency constants, in GPU cycles.
mod lat {
    /// L1D hit (GPU L1s are not latency-optimized).
    pub const L1: u64 = 12;
    /// L2 hit, beyond L1.
    pub const L2: u64 = 60;
    /// DRAM fixed overhead beyond the DDR3 device timing.
    pub const DRAM_EXTRA: u64 = 120;
    /// Base cost of a global atomic (L2-resident atomic unit).
    pub const ATOMIC: u64 = 30;
    /// Additional serialization per recent atomic on the same line.
    pub const ATOMIC_CONFLICT: u64 = 25;
    /// LDS access.
    pub const LDS: u64 = 8;
    /// DRAM channel service time per access (bandwidth bound): one 64B
    /// burst on the single DDR3-1600 channel, in GPU cycles.
    pub const DRAM_SERVICE: u64 = 9;
    /// L2 port service time per L1-missing access (bandwidth bound).
    pub const L2_SERVICE: u64 = 4;
}

/// The GPU's memory system (all CUs share L2 and DRAM).
#[derive(Debug)]
pub struct GpuMemory {
    l1: Vec<SetAssocCache<()>>,
    l2: SetAssocCache<()>,
    dram: Ddr3Channel,
    /// Sliding pressure counter per atomic line: decays as other
    /// accesses happen, grows with conflicts.
    atomic_pressure: std::collections::HashMap<u64, u64>,
    /// The single DRAM channel is busy until this time (millicycles):
    /// requests arriving faster than one burst per [`lat::DRAM_SERVICE`]
    /// cycles queue behind it. This is what bounds the benefit of piling
    /// on wavefronts for bandwidth-bound kernels.
    channel_busy_mc: u64,
    /// L2 port occupancy, same mechanism as the DRAM channel.
    l2_busy_mc: u64,
    accesses: u64,
    l1_hits: u64,
    l2_hits: u64,
    dram_accesses: u64,
    queue_delay_mc: u64,
    atomics: u64,
}

impl GpuMemory {
    /// Builds the memory path for `cus` compute units with the given
    /// L1/L2 capacities.
    pub fn new(cus: usize, l1_bytes: u64, l2_bytes: u64) -> GpuMemory {
        GpuMemory {
            l1: (0..cus).map(|_| SetAssocCache::new(l1_bytes, 8)).collect(),
            l2: SetAssocCache::new(l2_bytes, 16),
            dram: Ddr3Channel::new(),
            atomic_pressure: std::collections::HashMap::new(),
            channel_busy_mc: 0,
            l2_busy_mc: 0,
            accesses: 0,
            l1_hits: 0,
            l2_hits: 0,
            dram_accesses: 0,
            queue_delay_mc: 0,
            atomics: 0,
        }
    }

    /// A global load/store from `cu` issued at `now_mc` (millicycles),
    /// returning `(latency_cycles, l1_hit)`.
    pub fn global_access(
        &mut self,
        cu: usize,
        addr: u64,
        is_write: bool,
        now_mc: u64,
    ) -> (u64, bool) {
        self.accesses += 1;
        if self.l1[cu].probe(addr).is_some() {
            self.l1_hits += 1;
            return (lat::L1, true);
        }
        let mut latency = lat::L1 + lat::L2;
        // Every L1 miss crosses the shared L2 port.
        let l2_queue_mc = self.l2_busy_mc.saturating_sub(now_mc);
        self.queue_delay_mc += l2_queue_mc;
        self.l2_busy_mc = self.l2_busy_mc.max(now_mc) + lat::L2_SERVICE * 1000;
        latency += l2_queue_mc / 1000;
        if self.l2.probe(addr).is_none() {
            self.dram_accesses += 1;
            // Bandwidth: queue behind the channel's current burst.
            let queue_mc = self.channel_busy_mc.saturating_sub(now_mc);
            self.queue_delay_mc += queue_mc;
            self.channel_busy_mc = self.channel_busy_mc.max(now_mc) + lat::DRAM_SERVICE * 1000;
            latency += queue_mc / 1000;
            latency += lat::DRAM_EXTRA + self.dram.access(addr, is_write);
            if let Some((victim, _)) = self.l2.insert(addr, ()) {
                for l1 in &mut self.l1 {
                    l1.invalidate(victim);
                }
            }
        } else {
            self.l2_hits += 1;
        }
        if self.l1[cu].peek(addr).is_none() {
            self.l1[cu].insert(addr, ());
        }
        (latency, false)
    }

    /// An LDS access (never leaves the CU).
    pub fn lds_access(&self) -> u64 {
        lat::LDS
    }

    /// A global atomic on `line`: serializes against recent atomics to
    /// the same line.
    pub fn atomic_access(&mut self, line: u64) -> u64 {
        self.atomics += 1;
        let pressure = self.atomic_pressure.entry(line).or_insert(0);
        let latency = lat::ATOMIC + *pressure * lat::ATOMIC_CONFLICT;
        *pressure = (*pressure + 1).min(12);
        // Other lines relax as this one is hammered.
        if self.atomics.is_multiple_of(4) {
            for (other, p) in self.atomic_pressure.iter_mut() {
                if *other != line && *p > 0 {
                    *p -= 1;
                }
            }
        }
        latency
    }

    /// Fraction of global accesses served by the L1.
    pub fn l1_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.l1_hits as f64 / self.accesses as f64
        }
    }

    /// Dumps statistics under `prefix`.
    pub fn dump_stats(&self, prefix: &str, stats: &mut Stats) {
        stats.set_count(&format!("{prefix}.accesses"), self.accesses);
        stats.set_count(&format!("{prefix}.l1Hits"), self.l1_hits);
        stats.set_count(&format!("{prefix}.l2Hits"), self.l2_hits);
        stats.set_count(&format!("{prefix}.dramAccesses"), self.dram_accesses);
        stats.set_count(&format!("{prefix}.atomics"), self.atomics);
        stats.set_count(
            &format!("{prefix}.queueDelayCycles"),
            self.queue_delay_mc / 1000,
        );
        stats.set_scalar(&format!("{prefix}.l1HitRate"), self.l1_hit_rate());
        self.dram.dump_stats(&format!("{prefix}.dram"), stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality_hits_l1() {
        let mut mem = GpuMemory::new(4, 16 * 1024, 256 * 1024);
        let (cold, cold_hit) = mem.global_access(0, 0x1000, false, 0);
        let (warm, warm_hit) = mem.global_access(0, 0x1000, false, 1_000_000);
        assert!(cold > warm);
        assert!(!cold_hit && warm_hit);
        assert_eq!(warm, lat::L1);
    }

    #[test]
    fn l2_shared_across_cus() {
        let mut mem = GpuMemory::new(4, 16 * 1024, 256 * 1024);
        mem.global_access(0, 0x2000, false, 0);
        let (other_cu, _) = mem.global_access(1, 0x2000, false, 1_000_000);
        assert_eq!(other_cu, lat::L1 + lat::L2);
    }

    #[test]
    fn thrash_grows_with_working_set() {
        // Stream 8 wavefront-sized regions (fits 16 KB) vs 64 (thrashes).
        let run = |regions: u64| {
            let mut mem = GpuMemory::new(1, 16 * 1024, 256 * 1024);
            for _round in 0..4 {
                for r in 0..regions {
                    for line in 0..16u64 {
                        mem.global_access(0, r * 0x10_0000 + line * 64, false, 0);
                    }
                }
            }
            mem.l1_hit_rate()
        };
        assert!(run(8) > 0.7);
        assert!(run(64) < 0.2);
    }

    #[test]
    fn atomic_contention_escalates_and_decays() {
        let mut mem = GpuMemory::new(1, 16 * 1024, 256 * 1024);
        let first = mem.atomic_access(7);
        let second = mem.atomic_access(7);
        let third = mem.atomic_access(7);
        assert!(first < second && second < third);
        // A different line starts cheap.
        assert_eq!(mem.atomic_access(9), first);
        // Hammering line 9 decays line 7's pressure.
        for _ in 0..40 {
            mem.atomic_access(9);
        }
        let relaxed = mem.atomic_access(7);
        assert!(relaxed < third);
    }

    #[test]
    fn stats_dump() {
        let mut mem = GpuMemory::new(2, 16 * 1024, 256 * 1024);
        mem.global_access(0, 0, false, 0);
        mem.atomic_access(1);
        let mut stats = Stats::new();
        mem.dump_stats("gpu.mem", &mut stats);
        assert_eq!(stats.count("gpu.mem.accesses"), 1);
        assert_eq!(stats.count("gpu.mem.atomics"), 1);
    }
}
