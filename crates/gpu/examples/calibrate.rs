use simart_gpu::{alloc::AllocPolicy, workloads, Gpu};

fn main() {
    let gpu = Gpu::table3();
    let mut ratios = Vec::new();
    for name in workloads::ALL {
        let k = workloads::by_name(name).unwrap();
        let s = gpu.run(&k, AllocPolicy::Simple);
        let d = gpu.run(&k, AllocPolicy::Dynamic);
        // Fig 9 metric: speedup of dynamic normalized to simple.
        let ratio = s.ticks as f64 / d.ticks as f64;

        ratios.push(ratio);
        println!("{name:28} simple={:>12} dynamic={:>12} dyn/simple speedup={ratio:.3} (retries s={} d={}, occ s={} d={}, l1 s={:.2} d={:.2}, dram s={} d={})",
            s.ticks, d.ticks, s.lock_retries, d.lock_retries, s.peak_occupancy, d.peak_occupancy,
            s.stats.scalar("gpu.mem.l1HitRate"), d.stats.scalar("gpu.mem.l1HitRate"),
            s.stats.count("gpu.mem.dramAccesses"), d.stats.count("gpu.mem.dramAccesses"));
    }
    let geo: f64 = ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64;
    println!(
        "geomean dynamic speedup vs simple = {:.3} (paper: simple ~8% better => ~0.926)",
        geo.exp()
    );
}
