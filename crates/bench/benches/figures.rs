//! Criterion benches: one per paper figure, measuring the simulation
//! machinery that regenerates it (small, fast slices — the full
//! regeneration binaries are `usecase1`/`usecase2`/`usecase3`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simart::gpu::alloc::AllocPolicy;
use simart::gpu::{workloads, Gpu};
use simart::sim::compat::{evaluate, figure8_configs};
use simart::sim::os::OsImage;
use simart::sim::system::Fidelity;
use simart::sim::workload::{parsec_profile, InputSize};
use simart_bench::{usecase1, usecase2};

/// Figure 6: one PARSEC run per OS at smoke fidelity.
fn fig6_parsec_run(c: &mut Criterion) {
    let profile = parsec_profile("blackscholes").expect("profile exists");
    let mut group = c.benchmark_group("fig6_parsec_exec_time");
    group.sample_size(10);
    for os in OsImage::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(os), &os, |b, os| {
            let config = usecase1::system_config(*os, 2, Fidelity::Smoke);
            b.iter(|| {
                config
                    .run_workload(&profile, InputSize::SimSmall)
                    .expect("runs")
            });
        });
    }
    group.finish();
}

/// Figure 7: the 8-core scaling run that anchors the speedup series.
fn fig7_scaling_run(c: &mut Criterion) {
    let profile = parsec_profile("ferret").expect("profile exists");
    let mut group = c.benchmark_group("fig7_scaling");
    group.sample_size(10);
    for cores in [1u32, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(cores), &cores, |b, cores| {
            let config = usecase1::system_config(OsImage::Ubuntu2004, *cores, Fidelity::Smoke);
            b.iter(|| {
                config
                    .run_workload(&profile, InputSize::SimSmall)
                    .expect("runs")
            });
        });
    }
    group.finish();
}

/// Figure 8: evaluating the full 480-configuration compatibility
/// matrix, plus one representative detailed boot.
fn fig8_boot_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_boot_matrix");
    group.sample_size(10);
    group.bench_function("compat_eval_480", |b| {
        b.iter(|| {
            figure8_configs()
                .iter()
                .filter(|config| evaluate(config).is_success())
                .count()
        })
    });
    let config = figure8_configs()
        .into_iter()
        .find(|c| evaluate(c).is_success())
        .expect("some boot succeeds");
    group.bench_function("detailed_boot", |b| {
        let system = usecase2::system_config(&config, Fidelity::Smoke);
        b.iter(|| system.boot_only().expect("boots"));
    });
    group.finish();
}

/// Figure 9: one contended and one oversubscribed kernel under both
/// allocators.
fn fig9_register_allocators(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_register_allocators");
    group.sample_size(10);
    let gpu = Gpu::table3().scaled_down(8);
    for app in ["FAMutex", "MatrixTranspose"] {
        let kernel = workloads::by_name(app).expect("workload exists");
        for policy in [AllocPolicy::Simple, AllocPolicy::Dynamic] {
            group.bench_with_input(BenchmarkId::new(app, policy), &policy, |b, policy| {
                b.iter(|| gpu.run(&kernel, *policy))
            });
        }
    }
    group.finish();
}

/// Ablation: the same kernel under simplistic vs improved dependence
/// tracking (the design choice DESIGN.md calls out as the root cause of
/// Figure 9's surprise).
fn ablation_dependence_tracking(c: &mut Criterion) {
    use simart::gpu::config::GpuConfig;
    let mut group = c.benchmark_group("ablation_dependence_tracking");
    group.sample_size(10);
    let kernel = workloads::by_name("fwd_pool").expect("workload exists");
    for (label, config) in [
        ("simplistic", GpuConfig::table3()),
        ("improved", GpuConfig::table3_improved_tracking()),
    ] {
        let gpu = Gpu::with_config(config).scaled_down(8);
        group.bench_function(label, |b| b.iter(|| gpu.run(&kernel, AllocPolicy::Dynamic)));
    }
    group.finish();
}

criterion_group!(
    figures,
    fig6_parsec_run,
    fig7_scaling_run,
    fig8_boot_matrix,
    fig9_register_allocators,
    ablation_dependence_tracking
);
criterion_main!(figures);
