//! Analysis cost: full-database lint scan versus incremental re-check.
//!
//! Before the incremental engine, `simart check` re-derived every lint
//! from scratch on each invocation — O(database), painful at campaign
//! scale. With journal-aware lints, a re-check replays only the records
//! appended since the last analysis cursor — O(delta), independent of
//! database size. This bench measures both on the same data so the
//! asymptotic claim is a number, not an assertion.
//!
//! Run modes:
//!
//! - `cargo bench -p simart-bench --bench lint` — print the timing
//!   table.
//! - `... --bench lint -- --test` — additionally assert the O(delta)
//!   property (replaying a small delta beats a full scan by a wide
//!   margin and stays flat as the database grows), exiting nonzero on
//!   regression.

use simart::analyze::Engine;
use simart::artifact::Uuid;
use simart::db::{read_journal_from, Database, Value};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Best-of repetitions per measurement (first runs warm caches).
const REPEATS: usize = 9;

/// Journal records replayed per incremental re-check.
const DELTA: usize = 10;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("simart-bench-lint-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn artifact_id(i: usize) -> String {
    Uuid::new_v3("bench-lint", &format!("artifact-{i}")).to_string()
}

fn artifact(i: usize) -> Value {
    // A shallow dependency chain so the full scan pays for real DAG
    // construction and validation, like a campaign database would.
    let inputs = if i == 0 {
        Value::array([])
    } else {
        Value::array([Value::from(artifact_id(i - 1))])
    };
    Value::map([
        ("_id", Value::from(artifact_id(i))),
        ("name", Value::from("bench")),
        ("kind", Value::from("binary")),
        ("hash", Value::from(format!("hash-{i:06}"))),
        ("inputs", inputs),
    ])
}

fn run(i: usize) -> Value {
    Value::map([
        ("_id", Value::from(format!("run-{i:06}"))),
        ("hash", Value::from(format!("{i:032x}"))),
        ("status", Value::from("done")),
        ("inputs", Value::array([Value::from(artifact_id(i % 64))])),
        (
            "events",
            Value::from(vec![
                Value::from("status:queued"),
                Value::from("status:running"),
                Value::from("status:done"),
            ]),
        ),
    ])
}

fn populate(db: &Database, docs: usize) {
    let artifacts = db.collection("artifacts");
    for i in 0..docs.min(64) {
        artifacts.insert(artifact(i)).expect("insert artifact");
    }
    let runs = db.collection("runs");
    for i in 0..docs {
        runs.insert(run(i)).expect("insert run");
    }
}

/// Best-of-`REPEATS` timing of a fresh engine scanning the whole
/// database — the pre-refactor cost of every `simart check`.
fn measure_full_scan(docs: usize) -> Duration {
    let db = Database::in_memory();
    populate(&db, docs);
    let mut best = Duration::MAX;
    for _ in 0..REPEATS {
        let start = Instant::now();
        let mut engine = Engine::new();
        engine.full_scan(&db);
        let diagnostics = engine.diagnostics();
        best = best.min(start.elapsed());
        assert!(diagnostics.is_empty(), "bench fixture must be lint-clean");
    }
    best
}

/// Best-of-`REPEATS` timing of a warm engine replaying `DELTA` freshly
/// journaled records and re-emitting its report — the cost of `simart
/// check --incremental` after a short burst of campaign activity.
fn measure_incremental(docs: usize) -> Duration {
    let dir = temp_dir(&format!("incr-{docs}"));
    let db = Database::open(&dir).expect("open");
    populate(&db, docs);
    db.checkpoint().expect("checkpoint");
    let mut engine = Engine::new();
    engine.full_scan(&db);
    let runs = db.collection("runs");
    let mut offset = 0u64;
    let mut best = Duration::MAX;
    for r in 0..REPEATS {
        for d in 0..DELTA {
            runs.insert(run(1_000_000 + r * DELTA + d))
                .expect("journaled insert");
        }
        let start = Instant::now();
        let replay = read_journal_from(&dir, offset).expect("read journal suffix");
        for op in &replay.ops {
            engine.apply_op(op);
        }
        let diagnostics = engine.diagnostics();
        best = best.min(start.elapsed());
        offset = replay.valid_bytes;
        assert_eq!(
            replay.ops.len(),
            DELTA,
            "each round replays exactly its delta"
        );
        assert!(diagnostics.is_empty(), "bench fixture must stay lint-clean");
    }
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
    best
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");

    let sizes = [100usize, 1000];
    let mut fulls = Vec::new();
    let mut deltas = Vec::new();
    println!(
        "lint: full database scan vs incremental re-check of {DELTA} records (best of {REPEATS})"
    );
    println!(
        "{:>8}  {:>14}  {:>18}  {:>7}",
        "docs", "full scan", "incremental", "ratio"
    );
    for &docs in &sizes {
        let full = measure_full_scan(docs);
        let delta = measure_incremental(docs);
        println!(
            "{docs:>8}  {:>12.1}us  {:>16.2}us  {:>6.0}x",
            full.as_secs_f64() * 1e6,
            delta.as_secs_f64() * 1e6,
            full.as_secs_f64() / delta.as_secs_f64().max(1e-9),
        );
        fulls.push(full);
        deltas.push(delta);
    }

    if test_mode {
        // O(delta) claim, with generous margins against CI noise:
        // 1. replaying a small delta is much cheaper than rescanning a
        //    1000-doc database;
        assert!(
            deltas[1] * 5 < fulls[1],
            "incremental re-check ({:?}) should be far cheaper than a full scan ({:?})",
            deltas[1],
            fulls[1],
        );
        // 2. re-check cost scales with the delta, not the database
        //    (allow a wide band — these are microsecond numbers).
        assert!(
            deltas[1] < deltas[0] * 20 + Duration::from_micros(200),
            "incremental cost must stay flat as the database grows: {:?} at 100 docs, {:?} at 1000",
            deltas[0],
            deltas[1],
        );
        // 3. full scans *do* scale with size — the contrast that makes
        //    the incremental engine worth having.
        assert!(
            fulls[1] > fulls[0],
            "full scan should grow with database size: {:?} at 100 docs, {:?} at 1000",
            fulls[0],
            fulls[1],
        );
        println!("lint bench assertions passed");
    }
}
