//! Persistence cost: whole-snapshot `save` versus journaled writes.
//!
//! Before the write-ahead journal, persisting a campaign after every
//! mutation meant rewriting every `.jsonl` file — O(database). With the
//! journal, each mutation appends one CRC-framed record — O(delta),
//! independent of database size. This bench measures both on the same
//! data so the asymptotic claim is a number, not an assertion.
//!
//! The query half makes the same kind of claim for secondary indexes:
//! an indexed point lookup resolves through a hash probe — O(log n) in
//! practice, flat for any campaign you can store — while a filter over
//! an unindexed path scans every shard, O(n). Both are measured on the
//! same documents at 1k and 100k so the planner's benefit is a number
//! too. Built with `--features observe`, the bench also proves the
//! planner took the index route by reading the
//! `db.query_planned_index` / `db.query_scans` counters.
//!
//! Run modes:
//!
//! - `cargo bench -p simart-bench --bench persistence` — print the
//!   timing tables.
//! - `... --bench persistence -- --test` — additionally assert the
//!   O(delta) and index-asymptotics properties (appends beat full
//!   saves and stay flat as the database grows; indexed lookups stay
//!   flat from 1k to 100k docs while unindexed scans grow ≥10x),
//!   exiting nonzero on regression.
//! - `... --bench persistence -- --json PATH` — also write the
//!   measured numbers as JSON (the tracked `BENCH_db.json` at the
//!   repo root is this output).

use simart_db::{Database, Filter, IndexSpec, Value};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Best-of repetitions per measurement (first runs warm caches).
const REPEATS: usize = 9;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "simart-bench-persistence-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn doc(i: usize) -> Value {
    Value::map([
        ("_id", Value::from(format!("run-{i:06}"))),
        ("hash", Value::from(format!("{i:032x}"))),
        ("status", Value::from("done")),
        (
            "events",
            Value::from(vec![
                Value::from("status:queued"),
                Value::from("status:running"),
                Value::from("status:done"),
            ]),
        ),
        (
            "results",
            Value::map([
                ("sim_ticks", Value::from(91_000_000 + i as i64)),
                ("outcome", Value::from("success")),
            ]),
        ),
    ])
}

fn populate(db: &Database, docs: usize) {
    let runs = db.collection("runs");
    for i in 0..docs {
        runs.insert(doc(i)).expect("insert");
    }
}

/// Best-of-`REPEATS` timing of one full snapshot `save` for a database
/// holding `docs` documents.
fn measure_save(docs: usize) -> Duration {
    let db = Database::in_memory();
    populate(&db, docs);
    let dir = temp_dir(&format!("save-{docs}"));
    std::fs::create_dir_all(&dir).unwrap();
    let mut best = Duration::MAX;
    for _ in 0..REPEATS {
        let start = Instant::now();
        db.save(&dir).expect("save");
        best = best.min(start.elapsed());
    }
    std::fs::remove_dir_all(&dir).unwrap();
    best
}

/// Best-of-`REPEATS` timing of a single journaled insert against an
/// attached, freshly checkpointed database holding `docs` documents —
/// the per-mutation persistence cost after the refactor.
fn measure_journaled_insert(docs: usize) -> Duration {
    let dir = temp_dir(&format!("journal-{docs}"));
    let db = Database::open(&dir).expect("open");
    populate(&db, docs);
    db.checkpoint().expect("checkpoint");
    let runs = db.collection("runs");
    let mut best = Duration::MAX;
    for r in 0..REPEATS {
        let start = Instant::now();
        runs.insert(doc(1_000_000 + r)).expect("journaled insert");
        best = best.min(start.elapsed());
    }
    std::fs::remove_dir_all(&dir).unwrap();
    best
}

/// Sizes for the query-asymptotics half: the lookup/scan contrast
/// needs two decades of growth to be unambiguous.
const QUERY_SIZES: [usize; 2] = [1_000, 100_000];

/// In-memory database with a hash index on the (unique per document)
/// `hash` field, populated with `docs` documents. The index is
/// declared first, so the fill also exercises write-through
/// maintenance at scale.
fn indexed_db(docs: usize) -> Database {
    let db = Database::in_memory();
    let runs = db.collection("runs");
    runs.ensure_index(IndexSpec::hash("hash")).expect("index");
    populate(&db, docs);
    db
}

/// Best-of-`REPEATS` per-query cost of an indexed point lookup,
/// averaged over a rotating batch of keys so no single BTree path is
/// artificially hot.
fn measure_point_lookup(db: &Database, docs: usize) -> Duration {
    const BATCH: usize = 64;
    let runs = db.collection("runs");
    let mut best = Duration::MAX;
    for r in 0..REPEATS {
        let start = Instant::now();
        for k in 0..BATCH {
            let i = (r * BATCH + k * 97) % docs;
            let hits = runs.find(&Filter::eq("hash", format!("{i:032x}")));
            assert_eq!(hits.len(), 1, "point lookup finds its document");
        }
        best = best.min(start.elapsed() / BATCH as u32);
    }
    best
}

/// Best-of-`REPEATS` cost of a filter over an unindexed path — the
/// planner finds no probe and falls back to a full shard scan.
fn measure_scan(db: &Database, docs: usize) -> Duration {
    let runs = db.collection("runs");
    let mut best = Duration::MAX;
    for _ in 0..REPEATS {
        let start = Instant::now();
        let n = runs.count(&Filter::eq("results.outcome", "success"));
        best = best.min(start.elapsed());
        assert_eq!(n, docs, "scan sees every document");
    }
    best
}

/// With observability compiled in: run a known mix of planned and
/// scanned queries inside a capture window and return the
/// (`db.query_planned_index`, `db.query_scans`) counters.
#[cfg(feature = "observe")]
fn planner_counters(db: &Database) -> (u64, u64) {
    use simart_observe as observe;
    let runs = db.collection("runs");
    observe::reset();
    observe::enable();
    for i in 0..40usize {
        let _ = runs.find(&Filter::eq("hash", format!("{i:032x}")));
    }
    for _ in 0..10 {
        let _ = runs.count(&Filter::eq("results.outcome", "success"));
    }
    observe::disable();
    let snapshot = observe::snapshot();
    let counter = |name: &str| match snapshot.metrics.get(name) {
        Some(observe::MetricValue::Counter(n)) => *n,
        _ => 0,
    };
    let counts = (counter("db.query_planned_index"), counter("db.query_scans"));
    observe::reset();
    counts
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_mode = args.iter().any(|a| a == "--test");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1));

    let sizes = [100usize, 1000];
    let mut saves = Vec::new();
    let mut appends = Vec::new();
    println!("persistence: full snapshot save vs journaled append (best of {REPEATS})");
    println!(
        "{:>8}  {:>14}  {:>18}  {:>7}",
        "docs", "save (full)", "append (journal)", "ratio"
    );
    for &docs in &sizes {
        let save = measure_save(docs);
        let append = measure_journaled_insert(docs);
        println!(
            "{docs:>8}  {:>12.1}us  {:>16.2}us  {:>6.0}x",
            save.as_secs_f64() * 1e6,
            append.as_secs_f64() * 1e6,
            save.as_secs_f64() / append.as_secs_f64().max(1e-9),
        );
        saves.push(save);
        appends.push(append);
    }

    println!("\nquery: indexed point lookup vs unindexed scan (best of {REPEATS})");
    println!(
        "{:>8}  {:>16}  {:>14}  {:>7}",
        "docs", "indexed lookup", "scan", "ratio"
    );
    let mut lookups = Vec::new();
    let mut scans = Vec::new();
    for &docs in &QUERY_SIZES {
        let db = indexed_db(docs);
        let lookup = measure_point_lookup(&db, docs);
        let scan = measure_scan(&db, docs);
        println!(
            "{docs:>8}  {:>14.2}us  {:>12.1}us  {:>6.0}x",
            lookup.as_secs_f64() * 1e6,
            scan.as_secs_f64() * 1e6,
            scan.as_secs_f64() / lookup.as_secs_f64().max(1e-9),
        );
        lookups.push(lookup);
        scans.push(scan);
    }

    #[cfg(feature = "observe")]
    let (planned, scanned) = {
        let db = indexed_db(QUERY_SIZES[0]);
        let counts = planner_counters(&db);
        println!(
            "\nplanner counters over a 40 lookup / 10 scan mix: \
             db.query_planned_index={} db.query_scans={}",
            counts.0, counts.1
        );
        counts
    };
    #[cfg(not(feature = "observe"))]
    let (planned, scanned) = (0u64, 0u64);

    if let Some(path) = json_path {
        let persistence: Vec<String> = sizes
            .iter()
            .zip(saves.iter().zip(&appends))
            .map(|(docs, (save, append))| {
                format!(
                    "    {{\"docs\": {docs}, \"saveUs\": {:.1}, \"appendUs\": {:.2}}}",
                    save.as_secs_f64() * 1e6,
                    append.as_secs_f64() * 1e6,
                )
            })
            .collect();
        let query: Vec<String> = QUERY_SIZES
            .iter()
            .zip(lookups.iter().zip(&scans))
            .map(|(docs, (lookup, scan))| {
                format!(
                    "    {{\"docs\": {docs}, \"indexedLookupUs\": {:.2}, \"scanUs\": {:.1}}}",
                    lookup.as_secs_f64() * 1e6,
                    scan.as_secs_f64() * 1e6,
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"bench\": \"persistence\",\n  \"schema\": 1,\n  \
             \"persistence\": [\n{}\n  ],\n  \"query\": [\n{}\n  ],\n  \
             \"planner\": {{\"plannedIndex\": {planned}, \"scans\": {scanned}}}\n}}\n",
            persistence.join(",\n"),
            query.join(",\n"),
        );
        std::fs::write(path, json).expect("write bench json");
        println!("\nwrote {path}");
    }

    if test_mode {
        // O(delta) claim, with generous margins against CI noise:
        // 1. persisting one mutation is much cheaper than rewriting the
        //    snapshot of a 1000-doc database;
        assert!(
            appends[1] * 5 < saves[1],
            "journaled append ({:?}) should be far cheaper than a full save ({:?})",
            appends[1],
            saves[1],
        );
        // 2. append cost does not scale with database size (allow a
        //    wide band — both numbers are single-digit microseconds).
        assert!(
            appends[1] < appends[0] * 20 + Duration::from_micros(200),
            "append cost must stay flat as the database grows: {:?} at 100 docs, {:?} at 1000",
            appends[0],
            appends[1],
        );
        // 3. full saves *do* scale with size — the contrast that makes
        //    the journal worth having.
        assert!(
            saves[1] > saves[0],
            "full save should grow with database size: {:?} at 100 docs, {:?} at 1000",
            saves[0],
            saves[1],
        );
        // 4. Indexed point lookups stay flat across two decades of
        //    growth: within 2x from 1k to 100k documents (plus a small
        //    absolute allowance for timer noise — both numbers are
        //    single-digit microseconds, while an O(n) lookup at 100k
        //    would be milliseconds).
        assert!(
            lookups[1] < lookups[0] * 2 + Duration::from_micros(20),
            "indexed point lookup must stay flat: {:?} at {} docs, {:?} at {}",
            lookups[0],
            QUERY_SIZES[0],
            lookups[1],
            QUERY_SIZES[1],
        );
        // 5. Unindexed scans do scale with size — the contrast that
        //    makes the planner worth having. (100x the documents must
        //    cost at least 10x the time; the slack absorbs cache
        //    effects and CI noise.)
        assert!(
            scans[1] >= scans[0] * 10,
            "unindexed scan should grow with database size: {:?} at {} docs, {:?} at {}",
            scans[0],
            QUERY_SIZES[0],
            scans[1],
            QUERY_SIZES[1],
        );
        // 6. With observability compiled in, the planner counters prove
        //    the lookups actually took the index route and the
        //    unindexed filter actually scanned.
        #[cfg(feature = "observe")]
        {
            assert!(
                planned >= 40,
                "point lookups must be planned through the index: planned={planned}"
            );
            assert!(
                scanned >= 10,
                "unindexed filters must be counted as scans: scans={scanned}"
            );
        }
        #[cfg(not(feature = "observe"))]
        let _ = (planned, scanned);
        println!("persistence bench assertions passed");
    }
}
