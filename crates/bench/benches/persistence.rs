//! Persistence cost: whole-snapshot `save` versus journaled writes.
//!
//! Before the write-ahead journal, persisting a campaign after every
//! mutation meant rewriting every `.jsonl` file — O(database). With the
//! journal, each mutation appends one CRC-framed record — O(delta),
//! independent of database size. This bench measures both on the same
//! data so the asymptotic claim is a number, not an assertion.
//!
//! Run modes:
//!
//! - `cargo bench -p simart-bench --bench persistence` — print the
//!   timing table.
//! - `... --bench persistence -- --test` — additionally assert the
//!   O(delta) property (appends beat full saves by a wide margin and
//!   stay flat as the database grows), exiting nonzero on regression.

use simart_db::{Database, Value};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Best-of repetitions per measurement (first runs warm caches).
const REPEATS: usize = 9;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "simart-bench-persistence-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn doc(i: usize) -> Value {
    Value::map([
        ("_id", Value::from(format!("run-{i:06}"))),
        ("hash", Value::from(format!("{i:032x}"))),
        ("status", Value::from("done")),
        (
            "events",
            Value::from(vec![
                Value::from("status:queued"),
                Value::from("status:running"),
                Value::from("status:done"),
            ]),
        ),
        (
            "results",
            Value::map([
                ("sim_ticks", Value::from(91_000_000 + i as i64)),
                ("outcome", Value::from("success")),
            ]),
        ),
    ])
}

fn populate(db: &Database, docs: usize) {
    let runs = db.collection("runs");
    for i in 0..docs {
        runs.insert(doc(i)).expect("insert");
    }
}

/// Best-of-`REPEATS` timing of one full snapshot `save` for a database
/// holding `docs` documents.
fn measure_save(docs: usize) -> Duration {
    let db = Database::in_memory();
    populate(&db, docs);
    let dir = temp_dir(&format!("save-{docs}"));
    std::fs::create_dir_all(&dir).unwrap();
    let mut best = Duration::MAX;
    for _ in 0..REPEATS {
        let start = Instant::now();
        db.save(&dir).expect("save");
        best = best.min(start.elapsed());
    }
    std::fs::remove_dir_all(&dir).unwrap();
    best
}

/// Best-of-`REPEATS` timing of a single journaled insert against an
/// attached, freshly checkpointed database holding `docs` documents —
/// the per-mutation persistence cost after the refactor.
fn measure_journaled_insert(docs: usize) -> Duration {
    let dir = temp_dir(&format!("journal-{docs}"));
    let db = Database::open(&dir).expect("open");
    populate(&db, docs);
    db.checkpoint().expect("checkpoint");
    let runs = db.collection("runs");
    let mut best = Duration::MAX;
    for r in 0..REPEATS {
        let start = Instant::now();
        runs.insert(doc(1_000_000 + r)).expect("journaled insert");
        best = best.min(start.elapsed());
    }
    std::fs::remove_dir_all(&dir).unwrap();
    best
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");

    let sizes = [100usize, 1000];
    let mut saves = Vec::new();
    let mut appends = Vec::new();
    println!("persistence: full snapshot save vs journaled append (best of {REPEATS})");
    println!(
        "{:>8}  {:>14}  {:>18}  {:>7}",
        "docs", "save (full)", "append (journal)", "ratio"
    );
    for &docs in &sizes {
        let save = measure_save(docs);
        let append = measure_journaled_insert(docs);
        println!(
            "{docs:>8}  {:>12.1}us  {:>16.2}us  {:>6.0}x",
            save.as_secs_f64() * 1e6,
            append.as_secs_f64() * 1e6,
            save.as_secs_f64() / append.as_secs_f64().max(1e-9),
        );
        saves.push(save);
        appends.push(append);
    }

    if test_mode {
        // O(delta) claim, with generous margins against CI noise:
        // 1. persisting one mutation is much cheaper than rewriting the
        //    snapshot of a 1000-doc database;
        assert!(
            appends[1] * 5 < saves[1],
            "journaled append ({:?}) should be far cheaper than a full save ({:?})",
            appends[1],
            saves[1],
        );
        // 2. append cost does not scale with database size (allow a
        //    wide band — both numbers are single-digit microseconds).
        assert!(
            appends[1] < appends[0] * 20 + Duration::from_micros(200),
            "append cost must stay flat as the database grows: {:?} at 100 docs, {:?} at 1000",
            appends[0],
            appends[1],
        );
        // 3. full saves *do* scale with size — the contrast that makes
        //    the journal worth having.
        assert!(
            saves[1] > saves[0],
            "full save should grow with database size: {:?} at 100 docs, {:?} at 1000",
            saves[0],
            saves[1],
        );
        println!("persistence bench assertions passed");
    }
}
