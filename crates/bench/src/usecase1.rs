//! Use-case 1: PARSEC across Ubuntu LTS releases (Table II, Figures 6
//! and 7).
//!
//! Runs the full framework pipeline exactly as the paper's launch
//! script does: register the simulator, kernels, run script and both
//! PARSEC disk images as artifacts; create one [`FsRun`] per
//! (OS × application × core count) combination; execute the cross
//! product through a scheduler; then answer Figures 6 and 7 from the
//! database.

use simart::artifact::ArtifactId;
use simart::db::{Filter, Value};
use simart::resources::{disks, kernels::KernelResource, suite};
use simart::run::FsRun;
use simart::sim::cpu::CpuKind;
use simart::sim::kernel::{BootKind, KernelVersion};
use simart::sim::mem::MemKind;
use simart::sim::os::OsImage;
use simart::sim::system::{Fidelity, SystemConfig};
use simart::sim::ticks::Tick;
use simart::sim::workload::{parsec_profile, InputSize, PARSEC_APPS};
use simart::tasks::PoolScheduler;
use simart::{ExecOutcome, Experiment};

/// Core counts evaluated by Table II.
pub const CORE_COUNTS: [u32; 3] = [1, 2, 8];

/// One measured data point.
#[derive(Debug, Clone, PartialEq)]
pub struct Uc1Row {
    /// PARSEC application.
    pub app: String,
    /// OS image the run used.
    pub os: OsImage,
    /// Core count.
    pub cores: u32,
    /// Benchmark execution time in ticks.
    pub exec_ticks: Tick,
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// CPU utilization (instructions per core-cycle).
    pub utilization: f64,
}

/// Complete use-case 1 results.
#[derive(Debug, Clone, PartialEq)]
pub struct Uc1Data {
    /// All 60 data points.
    pub rows: Vec<Uc1Row>,
}

impl Uc1Data {
    /// Looks up one data point.
    pub fn get(&self, app: &str, os: OsImage, cores: u32) -> Option<&Uc1Row> {
        self.rows
            .iter()
            .find(|r| r.app == app && r.os == os && r.cores == cores)
    }

    /// Figure 6 series: per-app absolute execution-time difference
    /// (Ubuntu 18.04 minus 20.04, in simulated seconds) for each core
    /// count. Positive = 18.04 slower.
    pub fn figure6(&self) -> Vec<(String, u32, f64)> {
        let mut series = Vec::new();
        for app in PARSEC_APPS {
            for cores in CORE_COUNTS {
                if let (Some(bionic), Some(focal)) = (
                    self.get(app, OsImage::Ubuntu1804, cores),
                    self.get(app, OsImage::Ubuntu2004, cores),
                ) {
                    let diff = seconds(bionic.exec_ticks) - seconds(focal.exec_ticks);
                    series.push((app.to_owned(), cores, diff));
                }
            }
        }
        series
    }

    /// Figure 7 series: per-app speedup from 1 to 8 cores, per OS.
    pub fn figure7(&self) -> Vec<(String, OsImage, f64)> {
        let mut series = Vec::new();
        for app in PARSEC_APPS {
            for os in OsImage::ALL {
                if let (Some(one), Some(eight)) = (self.get(app, os, 1), self.get(app, os, 8)) {
                    series.push((
                        app.to_owned(),
                        os,
                        one.exec_ticks as f64 / eight.exec_ticks as f64,
                    ));
                }
            }
        }
        series
    }
}

/// Ticks to simulated seconds.
pub fn seconds(ticks: Tick) -> f64 {
    ticks as f64 / simart::sim::ticks::TICKS_PER_SECOND as f64
}

/// Registered artifact handles for the use-case 1 experiment.
struct Uc1Artifacts {
    simulator: ArtifactId,
    repo: ArtifactId,
    script: ArtifactId,
    kernel_bionic: ArtifactId,
    kernel_focal: ArtifactId,
    disk_bionic: ArtifactId,
    disk_focal: ArtifactId,
}

fn register_artifacts(experiment: &Experiment) -> Uc1Artifacts {
    experiment
        .with_registry(|registry| {
            let [repo, binary, script] = suite::register_simulator(registry, "20.1.0.4", "X86")?;
            let kernel_bionic =
                suite::register_kernel(registry, &KernelResource::standard(KernelVersion::V4_15))?;
            let kernel_focal =
                suite::register_kernel(registry, &KernelResource::standard(KernelVersion::V5_4))?;
            let disk_bionic =
                suite::register_disk_image(registry, &disks::parsec_image(OsImage::Ubuntu1804))?;
            let disk_focal =
                suite::register_disk_image(registry, &disks::parsec_image(OsImage::Ubuntu2004))?;
            Ok(Uc1Artifacts {
                simulator: binary.id(),
                repo: repo.id(),
                script: script.id(),
                kernel_bionic: kernel_bionic.id(),
                kernel_focal: kernel_focal.id(),
                disk_bionic: disk_bionic.id(),
                disk_focal: disk_focal.id(),
            })
        })
        .expect("use-case 1 artifact registration is conflict-free")
}

/// The Table II system configuration for one run.
pub fn system_config(os: OsImage, cores: u32, fidelity: Fidelity) -> SystemConfig {
    SystemConfig::builder()
        .cpu(CpuKind::TimingSimple)
        .cores(cores)
        .memory(MemKind::classic_coherent())
        .kernel(os.profile().default_kernel)
        .os(os)
        .boot(BootKind::Systemd)
        .fidelity(fidelity)
        .build()
        .expect("Table II configuration is valid")
}

/// Runs the full use-case 1 experiment, returning the measured data.
///
/// `fidelity` selects sample sizes (use [`Fidelity::Smoke`] in tests).
pub fn run(fidelity: Fidelity) -> Uc1Data {
    let experiment = Experiment::new("usecase1-parsec");
    let artifacts = register_artifacts(&experiment);

    // The cross product of Figure 5's launch script ("for each
    // combination P in [cpus, benchmarks, ...]").
    let sweep = simart::cross::CrossProduct::new()
        .axis("app", PARSEC_APPS)
        .axis("os", OsImage::ALL.map(|os| os.to_string()))
        .axis("cores", CORE_COUNTS.map(|c| c.to_string()));
    let mut runs: Vec<FsRun> = Vec::new();
    for combo in sweep.iter() {
        let os = match combo.get("os").expect("os axis") {
            "ubuntu-18.04" => OsImage::Ubuntu1804,
            _ => OsImage::Ubuntu2004,
        };
        let (kernel, disk) = match os {
            OsImage::Ubuntu1804 => (artifacts.kernel_bionic, artifacts.disk_bionic),
            OsImage::Ubuntu2004 => (artifacts.kernel_focal, artifacts.disk_focal),
        };
        let run = experiment
            .create_fs_run(|b| {
                b.simulator(artifacts.simulator, "gem5/build/X86/gem5.opt")
                    .simulator_repo(artifacts.repo)
                    .run_script(artifacts.script, "configs/run_parsec.py")
                    .kernel(kernel, format!("vmlinux-{}", os.profile().default_kernel))
                    .disk_image(disk, format!("disks/parsec-{os}.img"))
                    .output_dir(format!("results/{}", combo.label()))
                    .params(combo.params())
                    .param(InputSize::SimMedium.to_string())
                    .timeout_seconds(24 * 3600)
            })
            .expect("valid use-case 1 run");
        runs.push(run);
    }

    let pool = PoolScheduler::new(
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4),
    );
    let summary = experiment.launch(runs, &pool, move |run| {
        let params = run.params();
        let app = params[0].clone();
        let os = match params[1].as_str() {
            "ubuntu-18.04" => OsImage::Ubuntu1804,
            "ubuntu-20.04" => OsImage::Ubuntu2004,
            other => return Err(format!("unknown OS image {other}")),
        };
        let cores: u32 = params[2]
            .parse()
            .map_err(|e| format!("bad core count: {e}"))?;
        let profile = parsec_profile(&app).ok_or_else(|| format!("unknown PARSEC app {app}"))?;
        let config = system_config(os, cores, fidelity);
        let output = config
            .run_workload(&profile, InputSize::SimMedium)
            .map_err(|e| e.to_string())?;
        Ok(ExecOutcome {
            outcome: output.outcome.label().to_owned(),
            sim_ticks: output.sim_ticks,
            payload: output.stats.dump().into_bytes(),
            success: output.outcome.is_success(),
            events: vec![],
        })
    });
    assert_eq!(
        summary.failed + summary.timed_out,
        0,
        "use-case 1 runs all succeed"
    );

    // Step 8: answer the figures from the database.
    let mut rows = Vec::new();
    for doc in experiment.query_runs(&Filter::eq("status", "done")) {
        let params = doc
            .at("params")
            .and_then(Value::as_array)
            .expect("params stored");
        let app = params[0].as_str().expect("app param").to_owned();
        let os = match params[1].as_str().expect("os param") {
            "ubuntu-18.04" => OsImage::Ubuntu1804,
            _ => OsImage::Ubuntu2004,
        };
        let cores = params[2]
            .as_str()
            .expect("cores param")
            .parse()
            .expect("cores number");
        let exec_ticks = doc
            .at("results.simTicks")
            .and_then(Value::as_int)
            .expect("ticks") as u64;
        // Details live in the archived stats payload.
        let run_id = doc
            .at("_id")
            .and_then(Value::as_str)
            .expect("id")
            .parse()
            .expect("uuid");
        let payload = experiment
            .runs()
            .load_results(run_id)
            .expect("results archived");
        let stats = simart::sim::stats::Stats::parse_dump(&String::from_utf8_lossy(&payload));
        let instructions = stats.count("workload.instructions");
        let utilization = stats.scalar("workload.utilization");
        rows.push(Uc1Row {
            app,
            os,
            cores,
            exec_ticks,
            instructions,
            utilization,
        });
    }
    rows.sort_by(|a, b| (&a.app, a.os as u8, a.cores).cmp(&(&b.app, b.os as u8, b.cores)));
    Uc1Data { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_pipeline_produces_sixty_rows() {
        let data = run(Fidelity::Smoke);
        assert_eq!(data.rows.len(), 60, "2 OS x 10 apps x 3 core counts");
        assert_eq!(data.figure6().len(), 30);
        assert_eq!(data.figure7().len(), 20);
    }

    #[test]
    fn shape_bionic_slower_and_gap_shrinks_with_cores() {
        let data = run(Fidelity::Smoke);
        let fig6 = data.figure6();
        let positive = fig6.iter().filter(|(_, _, diff)| *diff > 0.0).count();
        assert!(
            positive as f64 / fig6.len() as f64 > 0.9,
            "applications typically take longer on 18.04 ({positive}/{})",
            fig6.len()
        );
        for app in PARSEC_APPS {
            let at = |cores| {
                fig6.iter()
                    .find(|(a, c, _)| a == app && *c == cores)
                    .map(|(_, _, d)| *d)
                    .unwrap()
            };
            assert!(
                at(8) < at(1),
                "{app}: difference shrinks with cores ({} vs {})",
                at(8),
                at(1)
            );
        }
    }

    #[test]
    fn shape_focal_more_instructions_higher_utilization() {
        let data = run(Fidelity::Smoke);
        for app in PARSEC_APPS {
            let bionic = data.get(app, OsImage::Ubuntu1804, 2).unwrap();
            let focal = data.get(app, OsImage::Ubuntu2004, 2).unwrap();
            assert!(
                focal.instructions > bionic.instructions,
                "{app}: more instructions"
            );
            assert!(
                focal.utilization > bionic.utilization,
                "{app}: higher utilization"
            );
        }
    }

    #[test]
    fn shape_focal_speedups_higher_especially_blackscholes_ferret() {
        let data = run(Fidelity::Smoke);
        let speedup = |app: &str, os| {
            data.figure7()
                .into_iter()
                .find(|(a, o, _)| a == app && *o == os)
                .map(|(_, _, s)| s)
                .unwrap()
        };
        let mut focal_higher = 0;
        for app in PARSEC_APPS {
            if speedup(app, OsImage::Ubuntu2004) > speedup(app, OsImage::Ubuntu1804) {
                focal_higher += 1;
            }
        }
        assert!(
            focal_higher >= 7,
            "20.04 generally achieves greater speedup ({focal_higher}/10)"
        );
        for app in ["blackscholes", "ferret"] {
            let gain = speedup(app, OsImage::Ubuntu2004) / speedup(app, OsImage::Ubuntu1804);
            assert!(
                gain > 1.02,
                "{app} shows a pronounced 20.04 speedup gain ({gain:.3})"
            );
        }
    }
}
