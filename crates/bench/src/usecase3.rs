//! Use-case 3: GPU register-allocation study (Tables III/IV, Figure 9).
//!
//! Runs every Table IV application on the Table III machine under both
//! register allocators (inside the pinned ROCm environment the
//! GCN-docker resource provides) and reports the speedup of each
//! allocator normalized to *simple* — the paper's Figure 9.

use simart::gpu::alloc::AllocPolicy;
use simart::gpu::{workloads, Gpu};
use simart::resources::environment::RocmStack;

/// One Figure 9 data point.
#[derive(Debug, Clone, PartialEq)]
pub struct Uc3Row {
    /// Application name.
    pub app: String,
    /// Table IV input size label.
    pub input: String,
    /// Shader ticks under the simple allocator.
    pub simple_ticks: u64,
    /// Shader ticks under the dynamic allocator.
    pub dynamic_ticks: u64,
    /// Peak occupancy under each allocator.
    pub occupancy: (u32, u32),
    /// Lock retries under each allocator.
    pub lock_retries: (u64, u64),
}

impl Uc3Row {
    /// Dynamic-allocator speedup normalized to simple (>1 = dynamic
    /// faster), the Figure 9 metric.
    pub fn dynamic_speedup(&self) -> f64 {
        self.simple_ticks as f64 / self.dynamic_ticks as f64
    }
}

/// Complete use-case 3 results.
#[derive(Debug, Clone, PartialEq)]
pub struct Uc3Data {
    /// One row per Table IV application.
    pub rows: Vec<Uc3Row>,
}

impl Uc3Data {
    /// Looks up one application's row.
    pub fn get(&self, app: &str) -> Option<&Uc3Row> {
        self.rows.iter().find(|r| r.app == app)
    }

    /// Geometric-mean dynamic speedup across all applications. The
    /// paper reports the *simple* allocator ahead by ≈8 % on average,
    /// i.e. a value around 0.92.
    pub fn geomean_dynamic_speedup(&self) -> f64 {
        let log_sum: f64 = self.rows.iter().map(|r| r.dynamic_speedup().ln()).sum();
        (log_sum / self.rows.len() as f64).exp()
    }
}

/// Runs the full study. `scale_down` divides per-wavefront instruction
/// counts (1 = full fidelity; tests use 4).
///
/// # Panics
///
/// Panics if the pinned ROCm environment cannot build a workload — the
/// exact failure mode the GCN-docker resource exists to prevent.
pub fn run(scale_down: u32) -> Uc3Data {
    let environment = RocmStack::gcn_docker();
    let unsupported = environment.unsupported_workloads();
    assert!(
        unsupported.is_empty(),
        "environment {environment} cannot build {unsupported:?}"
    );

    let gpu = Gpu::table3().scaled_down(scale_down);
    let mut rows = Vec::new();
    for name in workloads::ALL {
        let kernel = workloads::by_name(name).expect("Table IV workload resolves");
        let simple = gpu.run(&kernel, AllocPolicy::Simple);
        let dynamic = gpu.run(&kernel, AllocPolicy::Dynamic);
        rows.push(Uc3Row {
            app: name.to_owned(),
            input: kernel.input.clone(),
            simple_ticks: simple.ticks,
            dynamic_ticks: dynamic.ticks,
            occupancy: (simple.peak_occupancy, dynamic.peak_occupancy),
            lock_retries: (simple.lock_retries, dynamic.lock_retries),
        });
    }
    Uc3Data { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Uc3Data {
        // Full scale: the calibrated operating point of the GPU model.
        run(1)
    }

    #[test]
    fn covers_all_29_applications() {
        let d = data();
        assert_eq!(d.rows.len(), 29);
        for row in &d.rows {
            assert!(row.simple_ticks > 0 && row.dynamic_ticks > 0, "{}", row.app);
        }
    }

    #[test]
    fn shape_simple_wins_on_average() {
        let d = data();
        let geomean = d.geomean_dynamic_speedup();
        assert!(
            (0.80..1.0).contains(&geomean),
            "simple allocator ahead on average (paper ≈8%), got geomean {geomean:.3}"
        );
    }

    #[test]
    fn shape_famutex_suffers_most_among_mutexes() {
        let d = data();
        let famutex = d.get("FAMutex").unwrap().dynamic_speedup();
        assert!(
            famutex < 0.65,
            "dynamic much worse on FAMutex (paper 61% worse): {famutex:.3}"
        );
        for other in ["SpinMutexEBO", "SleepMutex"] {
            let s = d.get(other).unwrap().dynamic_speedup();
            assert!(s < 0.85, "{other} suffers: {s:.3}");
            assert!(
                famutex <= s + 0.05,
                "FAMutex worst: {famutex:.3} vs {other} {s:.3}"
            );
        }
    }

    #[test]
    fn shape_pool_layers_suffer() {
        let d = data();
        for app in ["bwd_pool", "fwd_pool"] {
            let s = d.get(app).unwrap().dynamic_speedup();
            assert!(
                (0.6..0.95).contains(&s),
                "{app} dynamic worse (paper ~22%): {s:.3}"
            );
        }
    }

    #[test]
    fn shape_small_kernels_are_flat() {
        let d = data();
        for app in ["2dshfl", "dynamic_shared", "sharedMemory", "shfl", "unroll"] {
            let s = d.get(app).unwrap().dynamic_speedup();
            assert!(
                (0.99..1.01).contains(&s),
                "{app} has too little work to differ: {s:.3}"
            );
        }
    }

    #[test]
    fn shape_oversubscribed_compute_kernels_benefit() {
        let d = data();
        for app in ["inline_asm", "MatrixTranspose", "stream", "PENNANT"] {
            let s = d.get(app).unwrap().dynamic_speedup();
            assert!(
                s > 1.05,
                "{app} benefits from the dynamic allocator: {s:.3}"
            );
        }
        // And some of the DNNMark layers ("some", per the paper).
        let dnn_winners = ["bwd_bypass", "fwd_bypass", "bwd_bn", "fwd_bn"]
            .iter()
            .filter(|app| d.get(app).unwrap().dynamic_speedup() > 1.05)
            .count();
        assert!(
            dnn_winners >= 2,
            "some DNNMark layers benefit ({dnn_winners})"
        );
    }

    #[test]
    fn dynamic_reaches_higher_occupancy_when_oversubscribed() {
        let d = data();
        let row = d.get("PENNANT").unwrap();
        assert_eq!(row.occupancy.0, 4, "simple: one wavefront per SIMD");
        assert!(row.occupancy.1 >= 32, "dynamic fills the machine");
    }

    #[test]
    fn mutex_contention_shows_up_as_lock_retries() {
        let d = data();
        let row = d.get("FAMutex").unwrap();
        assert!(row.lock_retries.1 > row.lock_retries.0 * 3);
    }
}
