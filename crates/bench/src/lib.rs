//! # simart-bench
//!
//! The benchmark harness: drivers that regenerate **every table and
//! figure** of the paper's evaluation, shared by the runnable binaries
//! (`usecase1`, `usecase2`, `usecase3`, `table1`, `table4`), the
//! Criterion benches, and the workspace integration tests.
//!
//! | paper item | driver | binary |
//! |---|---|---|
//! | Table I | [`simart_resources::catalog`] | `table1` |
//! | Table II + Figs 6,7 | [`usecase1`] | `usecase1` |
//! | Fig 8 | [`usecase2`] | `usecase2` |
//! | Tables III, IV + Fig 9 | [`usecase3`] | `usecase3`, `table4` |

#![warn(missing_docs)]

pub mod ablation;
pub mod usecase1;
pub mod usecase2;
pub mod usecase3;
