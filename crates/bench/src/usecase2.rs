//! Use-case 2: Linux boot tests (Figure 8).
//!
//! Boots the 480-configuration cross product — 5 LTS kernels × 4 CPU
//! models × {1,2,4,8} cores × 3 memory systems × 2 boot targets — and
//! classifies every outcome, reproducing the aggregate pattern the
//! paper reports (kvm everywhere, Atomic only on Classic, Timing
//! everywhere but multi-core Classic, O3 ≈40 % success with 27 kernel
//! panics / 11 simulator crashes / 4 MI_example deadlocks and the rest
//! timeouts).

use simart::db::Filter;
use simart::resources::{disks, kernels::KernelResource, suite};
use simart::run::FsRun;
use simart::sim::compat::{figure8_configs, BootConfig, BootOutcome};
use simart::sim::cpu::CpuKind;
use simart::sim::kernel::{BootKind, KernelVersion};
use simart::sim::mem::MemKind;
use simart::sim::system::{Fidelity, SystemConfig};
use simart::tasks::PoolScheduler;
use simart::{ExecOutcome, Experiment};
use std::collections::BTreeMap;

/// One boot-test result.
#[derive(Debug, Clone, PartialEq)]
pub struct Uc2Row {
    /// The configuration.
    pub config: BootConfig,
    /// What happened.
    pub outcome: BootOutcome,
    /// Boot time in ticks (0 for non-successful runs).
    pub boot_ticks: u64,
}

/// Complete use-case 2 results.
#[derive(Debug, Clone, PartialEq)]
pub struct Uc2Data {
    /// All 480 results.
    pub rows: Vec<Uc2Row>,
}

impl Uc2Data {
    /// Aggregate outcome counts for one CPU model.
    pub fn outcome_counts(&self, cpu: CpuKind) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for row in self.rows.iter().filter(|r| r.config.cpu == cpu) {
            *counts.entry(row.outcome.label()).or_insert(0) += 1;
        }
        counts
    }

    /// Success rate for one CPU model over configurations that are not
    /// structurally unsupported.
    pub fn success_rate(&self, cpu: CpuKind) -> f64 {
        let supported: Vec<&Uc2Row> = self
            .rows
            .iter()
            .filter(|r| {
                r.config.cpu == cpu && !matches!(r.outcome, BootOutcome::Unsupported { .. })
            })
            .collect();
        if supported.is_empty() {
            return 0.0;
        }
        supported.iter().filter(|r| r.outcome.is_success()).count() as f64 / supported.len() as f64
    }
}

/// Translates a boot configuration into simulator system config.
pub fn system_config(config: &BootConfig, fidelity: Fidelity) -> SystemConfig {
    SystemConfig::builder()
        .cpu(config.cpu)
        .cores(config.cores)
        .memory(config.mem)
        .kernel(config.kernel)
        .boot(config.boot)
        .fidelity(fidelity)
        .build()
        .expect("figure 8 configurations are structurally buildable")
}

/// Runs all 480 boot tests through the framework, returning outcomes.
pub fn run(fidelity: Fidelity) -> Uc2Data {
    let experiment = Experiment::new("usecase2-boot-tests");

    // Artifacts: simulator, boot-exit image, five kernels, run script.
    let (simulator, repo, script, disk, kernel_ids) = experiment
        .with_registry(|registry| {
            let [repo, binary, script] = suite::register_simulator(registry, "20.1.0.4", "X86")?;
            let disk = suite::register_disk_image(registry, &disks::boot_exit_image())?;
            let mut kernel_ids = Vec::new();
            for version in KernelVersion::FIGURE8 {
                let kernel = suite::register_kernel(registry, &KernelResource::standard(version))?;
                kernel_ids.push((version, kernel.id()));
            }
            Ok((binary.id(), repo.id(), script.id(), disk.id(), kernel_ids))
        })
        .expect("use-case 2 artifact registration is conflict-free");

    let mut runs: Vec<FsRun> = Vec::new();
    for config in figure8_configs() {
        let kernel_artifact = kernel_ids
            .iter()
            .find(|(v, _)| *v == config.kernel)
            .map(|(_, id)| *id)
            .expect("all Figure 8 kernels registered");
        let run = experiment
            .create_fs_run(|b| {
                b.simulator(simulator, "gem5/build/X86/gem5.opt")
                    .simulator_repo(repo)
                    .run_script(script, "configs/run_exit.py")
                    .kernel(
                        kernel_artifact,
                        format!("vmlinux-{}", config.kernel.release()),
                    )
                    .disk_image(disk, "disks/boot-exit.img")
                    .param(config.cpu.to_string())
                    .param(config.mem.to_string())
                    .param(config.cores.to_string())
                    .param(config.boot.to_string())
                    .param(config.kernel.release())
                    .timeout_seconds(24 * 3600)
            })
            .expect("valid boot-test run");
        runs.push(run);
    }

    let pool = PoolScheduler::new(
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4),
    );
    experiment.launch(runs, &pool, move |run| {
        let config = config_from_params(run.params())?;
        let output = system_config(&config, fidelity)
            .boot_only()
            .map_err(|e| e.to_string())?;
        Ok(ExecOutcome {
            outcome: encode_outcome(&output.outcome),
            sim_ticks: output.sim_ticks,
            payload: output.stats.dump().into_bytes(),
            // Workflow-level success: the *measurement* completed; the
            // boot outcome itself is the datum.
            success: true,
            events: vec![],
        })
    });

    // Reconstruct the matrix from the database.
    let mut rows = Vec::new();
    for doc in experiment.query_runs(&Filter::eq("status", "done")) {
        let params: Vec<String> = doc
            .at("params")
            .and_then(simart::db::Value::as_array)
            .expect("params stored")
            .iter()
            .map(|p| p.as_str().expect("string param").to_owned())
            .collect();
        let config = config_from_params(&params).expect("stored params decode");
        let outcome = decode_outcome(
            doc.at("results.outcome")
                .and_then(simart::db::Value::as_str)
                .expect("outcome"),
        );
        let boot_ticks = doc
            .at("results.simTicks")
            .and_then(simart::db::Value::as_int)
            .unwrap_or(0) as u64;
        rows.push(Uc2Row {
            config,
            outcome,
            boot_ticks,
        });
    }
    rows.sort_by_key(|r| {
        (
            r.config.kernel,
            r.config.cpu.to_string(),
            r.config.mem.to_string(),
            r.config.cores,
            r.config.boot.to_string(),
        )
    });
    assert_eq!(rows.len(), 480, "all boot tests recorded");
    Uc2Data { rows }
}

fn config_from_params(params: &[String]) -> Result<BootConfig, String> {
    let cpu = match params[0].as_str() {
        "kvmCPU" => CpuKind::Kvm,
        "AtomicSimpleCPU" => CpuKind::AtomicSimple,
        "TimingSimpleCPU" => CpuKind::TimingSimple,
        "O3CPU" => CpuKind::O3,
        other => return Err(format!("unknown cpu {other}")),
    };
    let mem = match params[1].as_str() {
        "Classic" => MemKind::classic_fast(),
        "Classic(coherent)" => MemKind::classic_coherent(),
        "MI_example" => MemKind::RubyMi,
        "MESI_Two_Level" => MemKind::RubyMesiTwoLevel,
        other => return Err(format!("unknown memory system {other}")),
    };
    let cores: u32 = params[2].parse().map_err(|e| format!("bad cores: {e}"))?;
    let boot = match params[3].as_str() {
        "kernel-only" => BootKind::KernelOnly,
        "systemd-runlevel5" => BootKind::Systemd,
        other => return Err(format!("unknown boot kind {other}")),
    };
    let kernel = KernelVersion::FIGURE8
        .iter()
        .copied()
        .find(|v| v.release() == params[4])
        .ok_or_else(|| format!("unknown kernel {}", params[4]))?;
    Ok(BootConfig {
        cpu,
        cores,
        mem,
        kernel,
        boot,
    })
}

/// Encodes a boot outcome into the stored outcome string.
fn encode_outcome(outcome: &BootOutcome) -> String {
    match outcome {
        BootOutcome::KernelPanic { stage } => format!("kernel-panic:{stage}"),
        BootOutcome::Unsupported { reason } => format!("unsupported:{reason}"),
        other => other.label().to_owned(),
    }
}

/// Decodes the stored outcome string.
fn decode_outcome(text: &str) -> BootOutcome {
    if let Some(reason) = text.strip_prefix("unsupported:") {
        return BootOutcome::Unsupported {
            reason: reason.to_owned(),
        };
    }
    if let Some(stage) = text.strip_prefix("kernel-panic:") {
        use simart::sim::kernel::BootStage;
        let stage = [
            BootStage::Decompress,
            BootStage::EarlyMm,
            BootStage::SchedInit,
            BootStage::DriverProbe,
            BootStage::RootfsMount,
            BootStage::InitSystem,
        ]
        .into_iter()
        .find(|s| s.to_string() == stage)
        .unwrap_or(BootStage::DriverProbe);
        return BootOutcome::KernelPanic { stage };
    }
    match text {
        "success" => BootOutcome::Success,
        "sim-crash" => BootOutcome::SimulatorCrash,
        "deadlock" => BootOutcome::ProtocolDeadlock,
        "timeout" => BootOutcome::Timeout,
        other => BootOutcome::Unsupported {
            reason: format!("undecodable outcome {other}"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simart::sim::compat::o3_counts;

    #[test]
    fn figure8_matrix_matches_the_paper() {
        let data = run(Fidelity::Smoke);
        assert_eq!(data.rows.len(), 480);

        // kvm works in all cases.
        assert_eq!(data.success_rate(CpuKind::Kvm), 1.0);
        assert_eq!(data.outcome_counts(CpuKind::Kvm)["success"], 120);

        // Atomic works in all supported (Classic) cases.
        let atomic = data.outcome_counts(CpuKind::AtomicSimple);
        assert_eq!(atomic["success"], 40);
        assert_eq!(atomic["unsupported"], 80, "Ruby rejects the atomic CPU");

        // Timing fails only >1 core on incoherent Classic.
        let timing = data.outcome_counts(CpuKind::TimingSimple);
        assert_eq!(timing["unsupported"], 30);
        assert_eq!(timing["success"], 90);

        // O3: the paper's exact failure counts.
        let o3 = data.outcome_counts(CpuKind::O3);
        assert_eq!(o3["kernel-panic"], o3_counts::PANICS);
        assert_eq!(o3["sim-crash"], o3_counts::CRASHES);
        assert_eq!(o3["deadlock"], o3_counts::DEADLOCKS);
        assert_eq!(o3["timeout"], o3_counts::TIMEOUTS);
        let rate = data.success_rate(CpuKind::O3);
        assert!((0.35..=0.45).contains(&rate), "O3 ≈40% success, got {rate}");
    }

    #[test]
    fn deadlocks_only_on_mi_example() {
        let data = run(Fidelity::Smoke);
        for row in &data.rows {
            if row.outcome == BootOutcome::ProtocolDeadlock {
                assert_eq!(row.config.mem, MemKind::RubyMi);
                assert_eq!(row.config.cpu, CpuKind::O3);
            }
        }
    }

    #[test]
    fn successful_boots_have_positive_times() {
        let data = run(Fidelity::Smoke);
        for row in &data.rows {
            if row.outcome.is_success() {
                assert!(row.boot_ticks > 0, "{:?}", row.config);
            }
        }
    }
}
