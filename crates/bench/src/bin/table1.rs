//! Prints Table I: the resource catalog.
//!
//! ```text
//! cargo run -p simart-bench --bin table1
//! ```

use simart::report::Table;
use simart::resources::Catalog;

fn main() {
    let catalog = Catalog::standard();
    let mut table = Table::new(
        "Table I: The Resources",
        &["Name", "Type", "Variant", "Prebuilt?", "Description"],
    );
    for resource in catalog.iter() {
        let description: String = if resource.description.len() > 72 {
            format!("{}…", &resource.description[..72])
        } else {
            resource.description.to_owned()
        };
        table.row(&[
            resource.name.to_owned(),
            resource.kind.to_string(),
            resource.variant.to_owned(),
            if resource.prebuilt_distributable {
                "yes".into()
            } else {
                "scripts only".into()
            },
            description,
        ]);
    }
    println!("{}", table.render());
    println!("{} resources registered.", catalog.len());
}
