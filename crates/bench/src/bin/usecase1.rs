//! Regenerates Table II context plus Figures 6 and 7 (use-case 1).
//!
//! ```text
//! cargo run -p simart-bench --bin usecase1 --release [-- --quick]
//! ```

use simart::report::{BarChart, Table};
use simart::sim::os::OsImage;
use simart::sim::system::Fidelity;
use simart::sim::workload::PARSEC_APPS;
use simart_bench::usecase1::{self, CORE_COUNTS};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let fidelity = if quick {
        Fidelity::Smoke
    } else {
        Fidelity::Standard
    };

    let mut table2 = Table::new(
        "Table II: Configuration Parameters for Use-Case 1",
        &["Component", "Options"],
    );
    table2.row_strs(&["CPU", "TimingSimpleCPU"]);
    table2.row_strs(&["Number of CPUs", "1, 2, 8"]);
    table2.row_strs(&["Memory", "1 channel, DDR3_1600_8x8"]);
    table2.row_strs(&[
        "OS",
        "Ubuntu 20.04 (kernel 5.4.51), Ubuntu 18.04 (kernel 4.15.18)",
    ]);
    table2.row_strs(&["Workloads", "10 PARSEC applications"]);
    table2.row_strs(&["Input sizes", "simmedium"]);
    println!("{}", table2.render());

    eprintln!("running 60 full-system simulations ({fidelity:?} fidelity)...");
    let data = usecase1::run(fidelity);

    let mut results = Table::new(
        "Use-case 1 raw results",
        &[
            "app",
            "os",
            "cores",
            "exec time (sim s)",
            "instructions",
            "utilization",
        ],
    );
    for row in &data.rows {
        results.row(&[
            row.app.clone(),
            row.os.to_string(),
            row.cores.to_string(),
            format!("{:.4}", usecase1::seconds(row.exec_ticks)),
            row.instructions.to_string(),
            format!("{:.3}", row.utilization),
        ]);
    }
    println!("{}", results.render());

    for cores in CORE_COUNTS {
        let mut chart = BarChart::new(
            format!("Figure 6 ({cores} core(s)): exec-time difference, Ubuntu 18.04 - 20.04"),
            "s",
        );
        for (app, c, diff) in data.figure6() {
            if c == cores {
                chart.bar(app, diff);
            }
        }
        println!("{}", chart.render(48));
    }

    for os in OsImage::ALL {
        let mut chart = BarChart::new(format!("Figure 7 ({os}): speedup from 1 to 8 cores"), "x");
        for app in PARSEC_APPS {
            if let Some((_, _, speedup)) = data
                .figure7()
                .into_iter()
                .find(|(a, o, _)| a == app && *o == os)
            {
                chart.bar(app, speedup);
            }
        }
        println!("{}", chart.render(48));
    }
}
