//! The dependence-tracking ablation: Figure 9 re-run with the improved
//! tracker the paper's conclusion calls for.
//!
//! ```text
//! cargo run -p simart-bench --bin ablation --release [-- --quick]
//! ```

use simart::report::Table;
use simart_bench::ablation;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { 4 } else { 1 };

    eprintln!("running 116 GPU simulations (29 workloads x 2 allocators x 2 trackers)...");
    let data = ablation::run(scale);

    let mut table = Table::new(
        "Dynamic-allocator speedup vs simple, by dependence tracker",
        &[
            "application",
            "simplistic (paper model)",
            "improved (future work)",
            "delta",
        ],
    );
    for row in &data.rows {
        table.row(&[
            row.app.clone(),
            format!("{:.3}", row.simplistic),
            format!("{:.3}", row.improved),
            format!("{:+.3}", row.improved - row.simplistic),
        ]);
    }
    println!("{}", table.render());
    println!(
        "geomean: simplistic {:.3} -> improved {:.3}\n\
         With the public model's simplistic dependence tracking the simple allocator wins \
         on average (the paper's surprising result); with improved tracking the dynamic \
         allocator's extra occupancy pays off — quantifying the paper's closing claim that \
         better dependence tracking \"could pay significant dividends\".",
        data.geomean(false),
        data.geomean(true)
    );
}
