//! Regenerates Table III and Figure 9 (use-case 3): GPU register
//! allocation.
//!
//! ```text
//! cargo run -p simart-bench --bin usecase3 --release [-- --quick]
//! ```

use simart::gpu::config::GpuConfig;
use simart::report::{BarChart, Table};
use simart_bench::usecase3;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { 4 } else { 1 };

    let config = GpuConfig::table3();
    let mut table3 = Table::new(
        "Table III: Key Configuration Parameters for Use-Case 3",
        &["Component", "Value"],
    );
    table3.row_strs(&["Number of CUs", "4"]);
    table3.row(&[
        "SIMD16s (vector ALUs)".into(),
        format!("{} per CU", config.simds_per_cu),
    ]);
    table3.row(&["GPU Frequency".into(), format!("{} MHz", config.clock_mhz)]);
    table3.row(&[
        "Max Wavefronts".into(),
        format!(
            "{} per SIMD16 ({} per CU)",
            config.max_wavefronts_per_simd,
            config.max_wavefronts_per_cu()
        ),
    ]);
    table3.row(&[
        "Vector Registers".into(),
        format!("{}K per CU", config.vregs_per_cu / 1024),
    ]);
    table3.row(&[
        "Scalar Registers".into(),
        format!("{}K per CU", config.sregs_per_cu / 1024),
    ]);
    table3.row(&[
        "LDS".into(),
        format!("{} KB per CU", config.lds_bytes_per_cu / 1024),
    ]);
    table3.row(&[
        "L1 instruction cache".into(),
        format!("{} KB shared between every 4 CUs", config.l1i_bytes / 1024),
    ]);
    table3.row(&[
        "L1 data caches (1 per CU)".into(),
        format!("{} KB per CU", config.l1d_bytes_per_cu / 1024),
    ]);
    table3.row(&[
        "Unified L2 cache".into(),
        format!("{} KB", config.l2_bytes / 1024),
    ]);
    table3.row_strs(&["Main Memory", "1 channel, DDR3_1600_8x8"]);
    println!("{}", table3.render());

    eprintln!("running 58 GPU simulations (29 workloads x 2 allocators)...");
    let data = usecase3::run(scale);

    let mut results = Table::new(
        "Use-case 3 raw results (shader ticks)",
        &[
            "application",
            "input",
            "simple",
            "dynamic",
            "dyn speedup",
            "occupancy s/d",
            "retries s/d",
        ],
    );
    for row in &data.rows {
        results.row(&[
            row.app.clone(),
            row.input.clone(),
            row.simple_ticks.to_string(),
            row.dynamic_ticks.to_string(),
            format!("{:.3}", row.dynamic_speedup()),
            format!("{}/{}", row.occupancy.0, row.occupancy.1),
            format!("{}/{}", row.lock_retries.0, row.lock_retries.1),
        ]);
    }
    println!("{}", results.render());

    let mut chart = BarChart::new(
        "Figure 9: dynamic register allocator speedup, normalized to simple (1.0 = parity)",
        "x",
    );
    for row in &data.rows {
        chart.bar(row.app.clone(), row.dynamic_speedup());
    }
    println!("{}", chart.render(48));

    println!(
        "geomean dynamic/simple = {:.3}  (paper: simple ahead by ~8% on average => ~0.93)",
        data.geomean_dynamic_speedup()
    );
}
