//! Prints Table IV: GPU benchmarks and input sizes for use-case 3.
//!
//! ```text
//! cargo run -p simart-bench --bin table4
//! ```

use simart::gpu::workloads::{self, Suite};
use simart::report::Table;

fn suite_name(suite: Suite) -> &'static str {
    match suite {
        Suite::HipSamples => "HIP samples",
        Suite::HeteroSync => "HeteroSync",
        Suite::DnnMark => "DNNMark",
        Suite::Proxy => "DOE proxy app",
    }
}

fn main() {
    let mut table = Table::new(
        "Table IV: Benchmarks & Input Sizes for Use-Case 3",
        &[
            "Application",
            "Suite",
            "Input Size",
            "WGs",
            "WF/WG",
            "vregs/WF",
        ],
    );
    for name in workloads::ALL {
        let kernel = workloads::by_name(name).expect("Table IV entry resolves");
        let suite = workloads::suite_of(name).expect("suite known");
        table.row(&[
            name.to_owned(),
            suite_name(suite).to_owned(),
            kernel.input.clone(),
            kernel.workgroups.to_string(),
            kernel.wavefronts_per_wg.to_string(),
            kernel.vregs_per_wf.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("{} applications.", workloads::ALL.len());
}
