//! Regenerates Figure 8 (use-case 2): the 480-configuration Linux
//! boot-test matrix.
//!
//! ```text
//! cargo run -p simart-bench --bin usecase2 --release
//! ```

use simart::report::Table;
use simart::sim::compat::FIGURE8_CORE_COUNTS;
use simart::sim::cpu::CpuKind;
use simart::sim::kernel::{BootKind, KernelVersion};
use simart::sim::mem::MemKind;
use simart::sim::system::Fidelity;
use simart_bench::usecase2;

fn cell(outcome: &simart::sim::compat::BootOutcome) -> &'static str {
    match outcome.label() {
        "success" => "ok",
        "unsupported" => ".",
        "kernel-panic" => "P",
        "sim-crash" => "C",
        "deadlock" => "D",
        "timeout" => "T",
        _ => "?",
    }
}

fn main() {
    eprintln!("running 480 boot tests...");
    let data = usecase2::run(Fidelity::Smoke);

    for boot in [BootKind::KernelOnly, BootKind::Systemd] {
        println!("==== Figure 8 ({boot}) ====");
        println!("legend: ok=success  .=unsupported  P=kernel panic  C=sim crash  D=deadlock  T=timeout\n");
        for mem in MemKind::FIGURE8 {
            let mut table = Table::new(
                format!("memory system: {mem} ({boot})"),
                &[
                    "kernel \\ cpu,cores",
                    "kvm 1/2/4/8",
                    "Atomic 1/2/4/8",
                    "Timing 1/2/4/8",
                    "O3 1/2/4/8",
                ],
            );
            for kernel in KernelVersion::FIGURE8 {
                let mut cells = vec![kernel.to_string()];
                for cpu in CpuKind::FIGURE8 {
                    let marks: Vec<&str> = FIGURE8_CORE_COUNTS
                        .iter()
                        .map(|cores| {
                            data.rows
                                .iter()
                                .find(|r| {
                                    r.config.cpu == cpu
                                        && r.config.mem == mem
                                        && r.config.kernel == kernel
                                        && r.config.cores == *cores
                                        && r.config.boot == boot
                                })
                                .map(|r| cell(&r.outcome))
                                .unwrap_or("?")
                        })
                        .collect();
                    cells.push(marks.join("/"));
                }
                table.row(&cells);
            }
            println!("{}", table.render());
        }
    }

    let mut summary = Table::new(
        "Outcome summary per CPU model",
        &[
            "cpu",
            "success",
            "unsupported",
            "panic",
            "crash",
            "deadlock",
            "timeout",
            "success rate*",
        ],
    );
    for cpu in CpuKind::FIGURE8 {
        let counts = data.outcome_counts(cpu);
        let get = |k: &str| counts.get(k).copied().unwrap_or(0).to_string();
        summary.row(&[
            cpu.to_string(),
            get("success"),
            get("unsupported"),
            get("kernel-panic"),
            get("sim-crash"),
            get("deadlock"),
            get("timeout"),
            format!("{:.0}%", data.success_rate(cpu) * 100.0),
        ]);
    }
    println!("{}", summary.render());
    println!("* success rate over configurations the simulator supports");
}
