//! Ablation study: what if the GPU model's dependence tracking were
//! improved?
//!
//! The paper closes use-case 3 with: *"this highlights how optimizing
//! the register allocator in isolation is insufficient, and how future
//! contributions to gem5 that improve the dependence tracking could pay
//! significant dividends."* This study quantifies that claim in the
//! reproduction: re-run Figure 9 with
//! [`DependenceTracking::Improved`](simart::gpu::config::DependenceTracking)
//! and compare.

use simart::gpu::alloc::AllocPolicy;
use simart::gpu::config::GpuConfig;
use simart::gpu::{workloads, Gpu};

/// Figure 9's metric under both dependence trackers.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Application name.
    pub app: String,
    /// dynamic/simple speedup with the paper's simplistic tracker.
    pub simplistic: f64,
    /// dynamic/simple speedup with the improved tracker.
    pub improved: f64,
}

/// Complete ablation results.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationData {
    /// One row per Table IV application.
    pub rows: Vec<AblationRow>,
}

impl AblationData {
    /// Geometric mean of the dynamic speedup under a tracker.
    pub fn geomean(&self, improved: bool) -> f64 {
        let log_sum: f64 = self
            .rows
            .iter()
            .map(|r| if improved { r.improved } else { r.simplistic }.ln())
            .sum();
        (log_sum / self.rows.len() as f64).exp()
    }

    /// Looks up one application's row.
    pub fn get(&self, app: &str) -> Option<&AblationRow> {
        self.rows.iter().find(|r| r.app == app)
    }
}

fn speedup(gpu: &Gpu, app: &str) -> f64 {
    let kernel = workloads::by_name(app).expect("Table IV workload");
    let simple = gpu.run(&kernel, AllocPolicy::Simple);
    let dynamic = gpu.run(&kernel, AllocPolicy::Dynamic);
    simple.ticks as f64 / dynamic.ticks as f64
}

/// Runs the ablation across all Table IV applications.
pub fn run(scale_down: u32) -> AblationData {
    let simplistic_gpu = Gpu::table3().scaled_down(scale_down);
    let improved_gpu =
        Gpu::with_config(GpuConfig::table3_improved_tracking()).scaled_down(scale_down);
    let rows = workloads::ALL
        .iter()
        .map(|app| AblationRow {
            app: (*app).to_owned(),
            simplistic: speedup(&simplistic_gpu, app),
            improved: speedup(&improved_gpu, app),
        })
        .collect();
    AblationData { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improved_tracking_pays_significant_dividends() {
        let data = run(1);
        let simplistic = data.geomean(false);
        let improved = data.geomean(true);
        // With the paper's model, simple wins on average...
        assert!(simplistic < 1.0, "simplistic geomean {simplistic:.3}");
        // ...with better dependence tracking, the dynamic allocator's
        // extra occupancy turns into real performance.
        assert!(improved > 1.0, "improved geomean {improved:.3}");
        assert!(
            improved > simplistic + 0.10,
            "the dividend is significant: {simplistic:.3} -> {improved:.3}"
        );
    }

    #[test]
    fn contended_locks_still_hurt_even_with_perfect_tracking() {
        // The lock chain is an algorithmic property of the workload,
        // not a model artifact: dynamic allocation keeps losing on
        // contended mutexes under the improved tracker.
        let data = run(1);
        let famutex = data.get("FAMutex").unwrap();
        assert!(
            famutex.improved < 1.0,
            "FAMutex improved {:.3}",
            famutex.improved
        );
    }

    #[test]
    fn flat_kernels_stay_flat_under_both_trackers() {
        let data = run(2);
        for app in ["2dshfl", "shfl", "unroll"] {
            let row = data.get(app).unwrap();
            assert!((0.98..1.02).contains(&row.simplistic), "{app} {row:?}");
            assert!((0.98..1.02).contains(&row.improved), "{app} {row:?}");
        }
    }
}
