//! The metrics registry: counters, gauges, and fixed-bucket
//! histograms.
//!
//! Recording goes through the free functions [`count`], [`gauge`],
//! [`observe_us`], and the RAII [`Timer`] / [`Stamp`] helpers; a
//! [`Snapshot`] of everything recorded so far comes from [`snapshot`].
//!
//! Histograms use one fixed, process-wide bucket layout — a 1-2-5
//! ladder from 1 µs to 10 s ([`bucket_bounds_us`]) plus an overflow
//! bucket — so snapshots from different components merge and compare
//! directly, and quantile estimates are **exact whenever the observed
//! values sit on bucket boundaries** (each bucket's reported value is
//! its inclusive upper bound).
//!
//! The data model in this module ([`Snapshot`], [`MetricValue`],
//! [`HistogramSnapshot`]) is always compiled so readers of persisted
//! metrics work in every build; the recording half follows the crate's
//! `enabled`-feature contract (see the crate docs).

use crate::json::escape;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Histogram bucket upper bounds in microseconds: a 1-2-5 ladder from
/// 1 µs to 10 s. Values above the last bound land in an overflow
/// bucket reported at the last bound (saturated).
const BOUNDS_US: [u64; 22] = [
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
    200_000, 500_000, 1_000_000, 2_000_000, 5_000_000, 10_000_000,
];

/// Number of histogram buckets, including the overflow bucket.
pub(crate) const BUCKETS: usize = BOUNDS_US.len() + 1;

/// The fixed histogram bucket upper bounds, in microseconds.
///
/// Every histogram in the registry (and every persisted
/// [`HistogramSnapshot`]) uses exactly these bounds plus one overflow
/// bucket, so bucket arrays are comparable across components and
/// campaigns.
pub fn bucket_bounds_us() -> &'static [u64] {
    &BOUNDS_US
}

/// Index of the bucket an observation falls into.
#[cfg_attr(not(feature = "enabled"), allow(dead_code))]
pub(crate) fn bucket_index(us: u64) -> usize {
    BOUNDS_US
        .iter()
        .position(|bound| us <= *bound)
        .unwrap_or(BOUNDS_US.len())
}

/// One histogram's recorded distribution: total count, total sum, and
/// per-bucket counts (`buckets.len() == bucket_bounds_us().len() + 1`,
/// the extra slot being the overflow bucket).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values, in microseconds.
    pub sum_us: u64,
    /// Observation count per bucket (last slot = overflow).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// An empty histogram with the standard bucket layout.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            count: 0,
            sum_us: 0,
            buckets: vec![0; BUCKETS],
        }
    }

    /// The estimated `q`-quantile (`0 < q <= 1`), in microseconds.
    ///
    /// Returns the inclusive upper bound of the bucket holding the
    /// `ceil(q * count)`-th observation, so the estimate is **exact**
    /// when observations sit on bucket boundaries. Overflow
    /// observations report the last bound (saturated). Returns 0 for
    /// an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, bucket_count) in self.buckets.iter().enumerate() {
            seen += bucket_count;
            if seen >= rank {
                return BOUNDS_US
                    .get(i)
                    .copied()
                    .unwrap_or(BOUNDS_US[BOUNDS_US.len() - 1]);
            }
        }
        BOUNDS_US[BOUNDS_US.len() - 1]
    }
}

/// The recorded value of one metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A monotonically increasing count.
    Counter(u64),
    /// A last-write-wins level.
    Gauge(i64),
    /// A fixed-bucket latency/size distribution.
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    /// The metric kind as a lowercase noun (`counter`, `gauge`,
    /// `histogram`) — the stable vocabulary used in reports and in
    /// persisted metric documents.
    pub fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// A point-in-time copy of the whole registry, keyed by metric name.
///
/// Snapshots are plain data: they can be built from persisted metric
/// documents just as well as from the live registry, and both render
/// identically — which is what makes the `simart metrics` golden test
/// byte-exact.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Metric name → recorded value, sorted by name.
    pub metrics: BTreeMap<String, MetricValue>,
}

impl Snapshot {
    /// Renders the deterministic text report (one line per metric,
    /// sorted by name, histograms summarized as count/sum/p50/p95/p99).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.metrics {
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "counter    {name} = {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "gauge      {name} = {v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "histogram  {name}: count {}, sum {}us, p50 {}us, p95 {}us, p99 {}us",
                        h.count,
                        h.sum_us,
                        h.quantile(0.50),
                        h.quantile(0.95),
                        h.quantile(0.99),
                    );
                }
            }
        }
        let _ = writeln!(out, "metrics: {} recorded", self.metrics.len());
        out
    }

    /// Renders the snapshot as a compact single-line JSON array, one
    /// object per metric, sorted by name.
    pub fn render_json(&self) -> String {
        let mut parts = Vec::with_capacity(self.metrics.len());
        for (name, value) in &self.metrics {
            let name = escape(name);
            parts.push(match value {
                MetricValue::Counter(v) => {
                    format!("{{\"name\":\"{name}\",\"kind\":\"counter\",\"value\":{v}}}")
                }
                MetricValue::Gauge(v) => {
                    format!("{{\"name\":\"{name}\",\"kind\":\"gauge\",\"value\":{v}}}")
                }
                MetricValue::Histogram(h) => {
                    let buckets = h
                        .buckets
                        .iter()
                        .map(u64::to_string)
                        .collect::<Vec<_>>()
                        .join(",");
                    format!(
                        "{{\"name\":\"{name}\",\"kind\":\"histogram\",\"count\":{},\
                         \"sum_us\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\
                         \"buckets\":[{buckets}]}}",
                        h.count,
                        h.sum_us,
                        h.quantile(0.50),
                        h.quantile(0.95),
                        h.quantile(0.99),
                    )
                }
            });
        }
        format!("[{}]", parts.join(","))
    }
}

#[cfg(feature = "enabled")]
mod recording {
    use super::{bucket_index, HistogramSnapshot, MetricValue, Snapshot, BUCKETS};
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
    use std::sync::{OnceLock, RwLock};
    use std::time::Instant;

    enum Cell {
        Counter(AtomicU64),
        Gauge(AtomicI64),
        Histogram(HistCell),
    }

    struct HistCell {
        count: AtomicU64,
        sum_us: AtomicU64,
        buckets: [AtomicU64; BUCKETS],
    }

    impl HistCell {
        fn new() -> HistCell {
            HistCell {
                count: AtomicU64::new(0),
                sum_us: AtomicU64::new(0),
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            }
        }
    }

    // Cells are leaked on first use so the hot path after lookup is a
    // plain atomic op with no lock held. The registry is tiny (tens of
    // static names), so the leak is bounded.
    fn registry() -> &'static RwLock<HashMap<&'static str, &'static Cell>> {
        static REGISTRY: OnceLock<RwLock<HashMap<&'static str, &'static Cell>>> = OnceLock::new();
        REGISTRY.get_or_init(|| RwLock::new(HashMap::new()))
    }

    fn cell(name: &'static str, make: impl FnOnce() -> Cell) -> &'static Cell {
        if let Some(cell) = registry()
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
        {
            return cell;
        }
        let mut map = registry().write().unwrap_or_else(|e| e.into_inner());
        map.entry(name)
            .or_insert_with(|| Box::leak(Box::new(make())))
    }

    /// Adds `n` to the named counter (creating it at zero first).
    pub fn count(name: &'static str, n: u64) {
        if !crate::is_enabled() {
            return;
        }
        if let Cell::Counter(v) = cell(name, || Cell::Counter(AtomicU64::new(0))) {
            v.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Sets the named gauge to `v` (last write wins).
    pub fn gauge(name: &'static str, v: i64) {
        if !crate::is_enabled() {
            return;
        }
        if let Cell::Gauge(g) = cell(name, || Cell::Gauge(AtomicI64::new(0))) {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Records one observation of `us` microseconds into the named
    /// histogram.
    pub fn observe_us(name: &'static str, us: u64) {
        if !crate::is_enabled() {
            return;
        }
        if let Cell::Histogram(h) = cell(name, || Cell::Histogram(HistCell::new())) {
            h.count.fetch_add(1, Ordering::Relaxed);
            h.sum_us.fetch_add(us, Ordering::Relaxed);
            h.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Copies the current registry contents into an immutable
    /// [`Snapshot`].
    pub fn snapshot() -> Snapshot {
        let mut metrics = std::collections::BTreeMap::new();
        for (name, cell) in registry().read().unwrap_or_else(|e| e.into_inner()).iter() {
            let value = match cell {
                Cell::Counter(v) => MetricValue::Counter(v.load(Ordering::Relaxed)),
                Cell::Gauge(v) => MetricValue::Gauge(v.load(Ordering::Relaxed)),
                Cell::Histogram(h) => MetricValue::Histogram(HistogramSnapshot {
                    count: h.count.load(Ordering::Relaxed),
                    sum_us: h.sum_us.load(Ordering::Relaxed),
                    buckets: h
                        .buckets
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed))
                        .collect(),
                }),
            };
            metrics.insert((*name).to_owned(), value);
        }
        Snapshot { metrics }
    }

    /// Clears the registry (the leaked cells are dropped from the map
    /// but intentionally not reclaimed).
    pub fn reset_metrics() {
        registry()
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }

    /// RAII histogram timer (enabled build): measures from creation to
    /// drop and records into the named histogram.
    #[derive(Debug)]
    pub struct Timer {
        armed: Option<(&'static str, Instant)>,
    }

    /// Starts a [`Timer`] that records into the named histogram when
    /// dropped. Disarmed (never reads the clock) outside a capture
    /// window.
    pub fn timer(name: &'static str) -> Timer {
        let armed = crate::is_enabled().then(|| (name, Instant::now()));
        Timer { armed }
    }

    impl Drop for Timer {
        fn drop(&mut self) {
            if let Some((name, start)) = self.armed.take() {
                observe_us(name, start.elapsed().as_micros() as u64);
            }
        }
    }

    /// A monotonic timestamp captured with [`Stamp::now`] (enabled
    /// build): carries a real [`Instant`] when taken inside a capture
    /// window.
    #[derive(Debug, Clone, Copy)]
    pub struct Stamp {
        taken: Option<Instant>,
    }

    impl Stamp {
        /// Captures the current instant, or a disarmed stamp outside a
        /// capture window.
        pub fn now() -> Stamp {
            Stamp {
                taken: crate::is_enabled().then(Instant::now),
            }
        }

        /// Microseconds since the stamp was taken, if it was armed.
        pub fn elapsed_us(&self) -> Option<u64> {
            self.taken.map(|t| t.elapsed().as_micros() as u64)
        }

        /// Records the elapsed time into the named histogram (no-op if
        /// the stamp was disarmed).
        pub fn observe_into(&self, name: &'static str) {
            if let Some(us) = self.elapsed_us() {
                observe_us(name, us);
            }
        }
    }
}

#[cfg(feature = "enabled")]
pub(crate) use recording::reset_metrics;
#[cfg(feature = "enabled")]
pub use recording::{count, gauge, observe_us, snapshot, timer, Stamp, Timer};

/// No-op stand-ins compiled without the `enabled` feature: the whole
/// metrics surface folds to nothing.
#[cfg(not(feature = "enabled"))]
mod disabled {
    use super::Snapshot;

    /// No-op without the `enabled` feature.
    #[inline(always)]
    pub fn count(_name: &'static str, _n: u64) {}

    /// No-op without the `enabled` feature.
    #[inline(always)]
    pub fn gauge(_name: &'static str, _v: i64) {}

    /// No-op without the `enabled` feature.
    #[inline(always)]
    pub fn observe_us(_name: &'static str, _us: u64) {}

    /// Always empty without the `enabled` feature.
    #[inline(always)]
    pub fn snapshot() -> Snapshot {
        Snapshot::default()
    }

    #[inline(always)]
    pub(crate) fn reset_metrics() {}

    /// Zero-sized no-op timer compiled without the `enabled` feature.
    #[derive(Debug)]
    pub struct Timer;

    /// No-op without the `enabled` feature: never reads the clock.
    #[inline(always)]
    pub fn timer(_name: &'static str) -> Timer {
        Timer
    }

    /// Zero-sized no-op timestamp compiled without the `enabled`
    /// feature.
    #[derive(Debug, Clone, Copy)]
    pub struct Stamp;

    impl Stamp {
        /// No-op without the `enabled` feature: never reads the clock.
        #[inline(always)]
        pub fn now() -> Stamp {
            Stamp
        }

        /// Always `None` without the `enabled` feature.
        #[inline(always)]
        pub fn elapsed_us(&self) -> Option<u64> {
            None
        }

        /// No-op without the `enabled` feature.
        #[inline(always)]
        pub fn observe_into(&self, _name: &'static str) {}
    }
}

#[cfg(not(feature = "enabled"))]
pub(crate) use disabled::reset_metrics;
#[cfg(not(feature = "enabled"))]
pub use disabled::{count, gauge, observe_us, snapshot, timer, Stamp, Timer};

#[cfg(test)]
mod tests {
    use super::*;

    fn hist_of(values_us: &[u64]) -> HistogramSnapshot {
        let mut h = HistogramSnapshot::empty();
        for &v in values_us {
            h.count += 1;
            h.sum_us += v;
            h.buckets[bucket_index(v)] += 1;
        }
        h
    }

    #[test]
    fn bucket_index_maps_bounds_inclusively() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(10_000_000), BOUNDS_US.len() - 1);
        assert_eq!(bucket_index(10_000_001), BOUNDS_US.len());
    }

    /// The satellite-task guarantee: quantiles are exact when the
    /// observations sit on bucket boundaries.
    #[test]
    fn quantiles_are_exact_at_bucket_boundaries() {
        // 100 observations of exactly 100us: every quantile is 100us.
        let h = hist_of(&[100; 100]);
        for q in [0.01, 0.50, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 100, "q={q}");
        }

        // 90 at 10us, 5 at 1000us, 5 at 5000us — boundaries exact:
        let mut values = vec![10u64; 90];
        values.extend([1_000; 5]);
        values.extend([5_000; 5]);
        let h = hist_of(&values);
        assert_eq!(h.quantile(0.50), 10);
        assert_eq!(h.quantile(0.90), 10);
        assert_eq!(h.quantile(0.95), 1_000);
        assert_eq!(h.quantile(0.99), 5_000);
        assert_eq!(h.quantile(1.0), 5_000);
    }

    #[test]
    fn quantile_edge_cases() {
        assert_eq!(
            HistogramSnapshot::empty().quantile(0.5),
            0,
            "empty histogram"
        );
        // One observation above every bound saturates at the last bound.
        let h = hist_of(&[20_000_000]);
        assert_eq!(h.quantile(0.5), 10_000_000);
        // Values inside a bucket report the bucket's upper bound.
        let h = hist_of(&[3]);
        assert_eq!(h.quantile(0.5), 5);
    }

    #[test]
    fn snapshot_renders_deterministically() {
        let mut snapshot = Snapshot::default();
        snapshot
            .metrics
            .insert("b.counter".to_owned(), MetricValue::Counter(7));
        snapshot
            .metrics
            .insert("a.gauge".to_owned(), MetricValue::Gauge(-3));
        snapshot.metrics.insert(
            "c.hist_us".to_owned(),
            MetricValue::Histogram(hist_of(&[100; 4])),
        );
        assert_eq!(
            snapshot.render_text(),
            "gauge      a.gauge = -3\n\
             counter    b.counter = 7\n\
             histogram  c.hist_us: count 4, sum 400us, p50 100us, p95 100us, p99 100us\n\
             metrics: 3 recorded\n"
        );
        let json = snapshot.render_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"name\":\"a.gauge\",\"kind\":\"gauge\",\"value\":-3"));
        assert!(json.contains("\"kind\":\"histogram\",\"count\":4,\"sum_us\":400"));
        assert!(!json.contains('\n'), "compact single line");
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn registry_records_inside_capture_window() {
        crate::enable();
        count("m.test.counter", 2);
        count("m.test.counter", 3);
        gauge("m.test.gauge", 9);
        observe_us("m.test.hist_us", 1_000);
        observe_us("m.test.hist_us", 1_000);
        crate::disable();
        // Outside the window nothing lands.
        count("m.test.counter", 100);
        let snap = snapshot();
        assert_eq!(
            snap.metrics.get("m.test.counter"),
            Some(&MetricValue::Counter(5))
        );
        assert_eq!(
            snap.metrics.get("m.test.gauge"),
            Some(&MetricValue::Gauge(9))
        );
        match snap.metrics.get("m.test.hist_us") {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!((h.count, h.sum_us), (2, 2_000));
                assert_eq!(h.quantile(0.5), 1_000);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn timer_and_stamp_record_elapsed_time() {
        crate::enable();
        {
            let _t = timer("m.timer.hist_us");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let stamp = Stamp::now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        stamp.observe_into("m.stamp.hist_us");
        crate::disable();
        for name in ["m.timer.hist_us", "m.stamp.hist_us"] {
            match snapshot().metrics.get(name) {
                Some(MetricValue::Histogram(h)) => {
                    assert_eq!(h.count, 1, "{name}");
                    assert!(h.sum_us >= 1_000, "{name}: {}us", h.sum_us);
                }
                other => panic!("{name}: expected histogram, got {other:?}"),
            }
        }
    }
}
