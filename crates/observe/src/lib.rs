//! # simart-observe
//!
//! Structured tracing, metrics, and profiling hooks for the simart
//! stack — the observability layer behind `simart metrics` and
//! `simart campaign --trace-out`.
//!
//! Two recording surfaces share one switch:
//!
//! * **Spans & events** ([`span()`], [`event`]) — a span-based trace with
//!   monotonic timestamps, dense thread ids, and parent links,
//!   recorded through a lock-cheap per-thread buffer and drained with
//!   [`drain_trace`] to a [`Trace`] that serializes to JSONL or a
//!   Chrome `trace_event` file (open it in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev)).
//! * **Metrics** ([`count`], [`gauge`], [`observe_us`], [`timer`]) — a
//!   process-global registry of counters, gauges, and fixed-bucket
//!   histograms with p50/p95/p99 quantiles, snapshotted with
//!   [`snapshot`].
//!
//! ## Zero-cost when off
//!
//! The recording machinery only compiles in with the **`enabled`**
//! cargo feature (instrumented crates forward it through their own
//! `observe` feature). Without it, every hook in this crate is an
//! empty `#[inline(always)]` function, [`SpanGuard`], [`Timer`], and
//! [`Stamp`] are zero-sized, name closures are never invoked, and no
//! global state exists — the instrumented hot paths compile to
//! nothing (proved by `benches/overhead.rs --test`). With the feature
//! on, recording is additionally runtime-gated by [`enable`] /
//! [`disable`], so instrumented binaries only pay inside an explicit
//! capture window. This mirrors the tracepoint-shim pattern used by
//! the race detector.
//!
//! The *data model* ([`Trace`], [`Snapshot`], [`HistogramSnapshot`],
//! …) is always compiled, so tools that only *read* recorded data
//! (e.g. `simart metrics` over a saved campaign database) work in any
//! build.
//!
//! ```
//! use simart_observe as observe;
//!
//! observe::enable();
//! {
//!     let _span = observe::span(|| "boot".to_owned());
//!     observe::count("sim.boots", 1);
//!     observe::observe_us("db.save_us", 1_000);
//! }
//! let trace = observe::drain_trace();
//! let snapshot = observe::snapshot();
//! observe::disable();
//! # #[cfg(feature = "enabled")]
//! assert!(trace.to_chrome_json().contains("traceEvents"));
//! # let _ = (trace, snapshot);
//! ```
//!
//! This crate deliberately depends on nothing (std only): it sits at
//! the very bottom of the simart stack so every crate can instrument
//! itself without dependency cycles.

#![deny(missing_docs)]

mod json;
pub mod metrics;
pub mod span;

pub use metrics::{
    bucket_bounds_us, count, gauge, observe_us, snapshot, timer, HistogramSnapshot, MetricValue,
    Snapshot, Stamp, Timer,
};
pub use span::{drain_trace, event, span, EventRecord, SpanGuard, SpanRecord, Trace};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether recording is currently active.
///
/// Always `false` without the `enabled` feature.
#[inline(always)]
pub fn is_enabled() -> bool {
    cfg!(feature = "enabled") && ENABLED.load(Ordering::Relaxed)
}

/// Opens the capture window: spans, events, and metric updates are
/// recorded from here until [`disable`]. A no-op without the `enabled`
/// feature.
#[inline(always)]
pub fn enable() {
    if cfg!(feature = "enabled") {
        ENABLED.store(true, Ordering::SeqCst);
    }
}

/// Closes the capture window. Already-recorded data stays available to
/// [`drain_trace`] and [`snapshot`].
#[inline(always)]
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Resets all recorded state — metrics back to zero and the trace
/// buffers emptied. Intended for tests and for tools that run several
/// capture windows in one process.
pub fn reset() {
    metrics::reset_metrics();
    let _ = span::drain_trace();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_build_records_nothing_and_never_names() {
        enable();
        assert!(!is_enabled(), "enable() is inert without the feature");
        {
            let _span = span(|| unreachable!("name closure must not run"));
            event(|| unreachable!("name closure must not run"));
        }
        count("c", 1);
        gauge("g", 5);
        observe_us("h", 10);
        let _timer = timer("t");
        let stamp = Stamp::now();
        stamp.observe_into("s");
        assert!(drain_trace().is_empty());
        assert!(snapshot().metrics.is_empty());
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_guards_are_zero_sized() {
        assert_eq!(std::mem::size_of::<SpanGuard>(), 0);
        assert_eq!(std::mem::size_of::<Timer>(), 0);
        assert_eq!(std::mem::size_of::<Stamp>(), 0);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn runtime_gate_bounds_the_capture_window() {
        disable();
        reset();
        count("gate.c", 1);
        {
            let _span = span(|| "gate.closed".to_owned());
        }
        assert!(drain_trace().is_empty());
        assert!(snapshot().metrics.is_empty());

        enable();
        count("gate.c", 2);
        {
            let _span = span(|| "gate.open".to_owned());
        }
        disable();
        let trace = drain_trace();
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].name, "gate.open");
        assert_eq!(
            snapshot().metrics.get("gate.c"),
            Some(&MetricValue::Counter(2))
        );
        reset();
    }
}
