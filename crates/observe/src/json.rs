//! Minimal JSON string escaping shared by the trace and metric
//! serializers. Numbers are emitted with plain `Display`, which is
//! already valid JSON for the integer types used here.

use std::fmt::Write as _;

/// Escapes `s` as the *contents* of a JSON string literal (no
/// surrounding quotes).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_control_chars() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\n\t\r"), "x\\n\\t\\r");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
