//! The span-based tracing core.
//!
//! A [`span`] is an RAII guard: it opens a named interval when created
//! and records it into a lock-cheap per-thread buffer when dropped.
//! Each recorded [`SpanRecord`] carries a monotonic start timestamp
//! (microseconds since the process trace epoch), a duration, a dense
//! thread id, and a parent link maintained by a per-thread span stack —
//! nesting falls out for free. [`event`] records an instantaneous
//! marker the same way.
//!
//! [`drain_trace`] collects every thread's buffer into a [`Trace`],
//! which serializes to a Chrome `trace_event` file
//! ([`Trace::to_chrome_json`], loadable in `chrome://tracing` or
//! Perfetto) or to JSONL ([`Trace::to_jsonl`]).
//!
//! Span and event *names* are passed as closures so the disabled build
//! never pays for formatting: outside a capture window (or without the
//! `enabled` feature) the closure is not invoked.

use crate::json::escape;
use std::fmt::Write as _;

/// One completed span: a named interval on one thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Id of the enclosing span on the same thread, or 0 for a root.
    pub parent: u64,
    /// The span's name.
    pub name: String,
    /// Dense id of the recording thread.
    pub thread: u32,
    /// Start time, microseconds since the process trace epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// One instantaneous event marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// The event's name.
    pub name: String,
    /// Dense id of the recording thread.
    pub thread: u32,
    /// Timestamp, microseconds since the process trace epoch.
    pub ts_us: u64,
}

/// Everything recorded since the last drain: completed spans and
/// events, ordered by timestamp.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    /// Completed spans, sorted by start time then id.
    pub spans: Vec<SpanRecord>,
    /// Instant events, sorted by timestamp.
    pub events: Vec<EventRecord>,
}

impl Trace {
    /// Whether the trace holds no spans and no events.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.events.is_empty()
    }

    /// Serializes the trace in Chrome's `trace_event` JSON format
    /// (the "JSON Object Format": a `traceEvents` array of complete
    /// `"ph":"X"` events and instant `"ph":"i"` events). The output
    /// loads directly in `chrome://tracing` and
    /// [Perfetto](https://ui.perfetto.dev).
    pub fn to_chrome_json(&self) -> String {
        let mut entries = Vec::with_capacity(self.spans.len() + self.events.len());
        for span in &self.spans {
            entries.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"simart\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{},\"args\":{{\"id\":{},\"parent\":{}}}}}",
                escape(&span.name),
                span.start_us,
                span.dur_us,
                span.thread,
                span.id,
                span.parent,
            ));
        }
        for event in &self.events {
            entries.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"simart\",\"ph\":\"i\",\"ts\":{},\
                 \"pid\":1,\"tid\":{},\"s\":\"t\"}}",
                escape(&event.name),
                event.ts_us,
                event.thread,
            ));
        }
        let mut out = String::from("{\"traceEvents\":[\n");
        out.push_str(&entries.join(",\n"));
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    /// Serializes the trace as JSONL: one JSON object per line, spans
    /// first (`"type":"span"`), then events (`"type":"event"`).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for span in &self.spans {
            let _ = writeln!(
                out,
                "{{\"type\":\"span\",\"name\":\"{}\",\"id\":{},\"parent\":{},\
                 \"thread\":{},\"start_us\":{},\"dur_us\":{}}}",
                escape(&span.name),
                span.id,
                span.parent,
                span.thread,
                span.start_us,
                span.dur_us,
            );
        }
        for event in &self.events {
            let _ = writeln!(
                out,
                "{{\"type\":\"event\",\"name\":\"{}\",\"thread\":{},\"ts_us\":{}}}",
                escape(&event.name),
                event.thread,
                event.ts_us,
            );
        }
        out
    }
}

#[cfg(feature = "enabled")]
mod recording {
    use super::{EventRecord, SpanRecord, Trace};
    use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};
    use std::time::Instant;

    static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
    static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);

    /// Microseconds since the process trace epoch (first clock use).
    fn now_us() -> u64 {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
    }

    #[derive(Default)]
    struct ThreadBuf {
        spans: Vec<SpanRecord>,
        events: Vec<EventRecord>,
        stack: Vec<u64>,
    }

    fn all_bufs() -> &'static Mutex<Vec<Arc<Mutex<ThreadBuf>>>> {
        static BUFS: OnceLock<Mutex<Vec<Arc<Mutex<ThreadBuf>>>>> = OnceLock::new();
        BUFS.get_or_init(|| Mutex::new(Vec::new()))
    }

    thread_local! {
        static LOCAL: (Arc<Mutex<ThreadBuf>>, u32) = {
            let buf = Arc::new(Mutex::new(ThreadBuf::default()));
            all_bufs().lock().unwrap_or_else(|e| e.into_inner()).push(Arc::clone(&buf));
            (buf, NEXT_THREAD.fetch_add(1, Ordering::Relaxed))
        };
    }

    /// RAII span guard (enabled build). Holds the open interval;
    /// records it into the thread buffer on drop.
    #[derive(Debug)]
    pub struct SpanGuard {
        open: Option<OpenSpan>,
    }

    struct OpenSpan {
        id: u64,
        parent: u64,
        name: String,
        thread: u32,
        start_us: u64,
        started: Instant,
        /// The creating thread's buffer, so a guard moved to (and
        /// dropped on) another thread still records and unwinds the
        /// right span stack.
        home: Arc<Mutex<ThreadBuf>>,
    }

    impl std::fmt::Debug for OpenSpan {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("OpenSpan")
                .field("id", &self.id)
                .field("name", &self.name)
                .finish_non_exhaustive()
        }
    }

    /// Opens a span on the current thread; it closes (and is
    /// recorded) when the returned guard drops. `name` is only invoked
    /// inside a capture window.
    pub fn span<N: FnOnce() -> String>(name: N) -> SpanGuard {
        if !crate::is_enabled() {
            return SpanGuard { open: None };
        }
        let open = LOCAL.with(|(buf, thread)| {
            let parent;
            let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
            {
                let mut guard = buf.lock().unwrap_or_else(|e| e.into_inner());
                parent = guard.stack.last().copied().unwrap_or(0);
                guard.stack.push(id);
            }
            OpenSpan {
                id,
                parent,
                name: name(),
                thread: *thread,
                start_us: now_us(),
                started: Instant::now(),
                home: Arc::clone(buf),
            }
        });
        SpanGuard { open: Some(open) }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            let Some(open) = self.open.take() else { return };
            let record = SpanRecord {
                id: open.id,
                parent: open.parent,
                name: open.name,
                thread: open.thread,
                start_us: open.start_us,
                dur_us: open.started.elapsed().as_micros() as u64,
            };
            let mut buf = open.home.lock().unwrap_or_else(|e| e.into_inner());
            // Unwind the stack to below this span (also clearing any
            // span opened above it that leaked without dropping).
            if let Some(pos) = buf.stack.iter().rposition(|&id| id == record.id) {
                buf.stack.truncate(pos);
            }
            buf.spans.push(record);
        }
    }

    /// Records an instant event on the current thread. `name` is only
    /// invoked inside a capture window.
    pub fn event<N: FnOnce() -> String>(name: N) {
        if !crate::is_enabled() {
            return;
        }
        LOCAL.with(|(buf, thread)| {
            let record = EventRecord {
                name: name(),
                thread: *thread,
                ts_us: now_us(),
            };
            buf.lock()
                .unwrap_or_else(|e| e.into_inner())
                .events
                .push(record);
        });
    }

    /// Moves everything recorded so far (on every thread) out into a
    /// [`Trace`], sorted by start time. Buffers are left empty.
    pub fn drain_trace() -> Trace {
        let mut trace = Trace::default();
        for buf in all_bufs().lock().unwrap_or_else(|e| e.into_inner()).iter() {
            let mut buf = buf.lock().unwrap_or_else(|e| e.into_inner());
            trace.spans.append(&mut buf.spans);
            trace.events.append(&mut buf.events);
        }
        trace.spans.sort_by_key(|s| (s.start_us, s.id));
        trace.events.sort_by_key(|e| e.ts_us);
        trace
    }
}

#[cfg(feature = "enabled")]
pub use recording::{drain_trace, event, span, SpanGuard};

/// No-op stand-ins compiled without the `enabled` feature: the whole
/// tracing surface folds to nothing and name closures never run.
#[cfg(not(feature = "enabled"))]
mod disabled {
    use super::Trace;

    /// Zero-sized no-op span guard compiled without the `enabled`
    /// feature.
    #[derive(Debug)]
    pub struct SpanGuard;

    /// No-op without the `enabled` feature; `name` is never invoked.
    #[inline(always)]
    pub fn span<N: FnOnce() -> String>(_name: N) -> SpanGuard {
        SpanGuard
    }

    /// No-op without the `enabled` feature; `name` is never invoked.
    #[inline(always)]
    pub fn event<N: FnOnce() -> String>(_name: N) {}

    /// Always empty without the `enabled` feature.
    #[inline(always)]
    /// Moves everything recorded so far (on every thread) out into a
    /// [`Trace`], sorted by start time. Buffers are left empty.
    pub fn drain_trace() -> Trace {
        Trace::default()
    }
}

#[cfg(not(feature = "enabled"))]
pub use disabled::{drain_trace, event, span, SpanGuard};

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace {
            spans: vec![
                SpanRecord {
                    id: 1,
                    parent: 0,
                    name: "outer".to_owned(),
                    thread: 0,
                    start_us: 10,
                    dur_us: 100,
                },
                SpanRecord {
                    id: 2,
                    parent: 1,
                    name: "inner \"quoted\"".to_owned(),
                    thread: 0,
                    start_us: 20,
                    dur_us: 30,
                },
            ],
            events: vec![EventRecord {
                name: "marker".to_owned(),
                thread: 1,
                ts_us: 25,
            }],
        }
    }

    #[test]
    fn chrome_json_has_the_trace_event_shape() {
        let json = sample_trace().to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("],\"displayTimeUnit\":\"ms\"}"));
        assert!(json.contains("\"ph\":\"X\""), "complete events present");
        assert!(json.contains("\"ph\":\"i\""), "instant events present");
        assert!(json.contains("\"dur\":100"));
        assert!(json.contains("\"parent\":1"), "parent links serialized");
        assert!(json.contains("inner \\\"quoted\\\""), "names escaped");
        // Braces balance — a cheap structural validity check.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn jsonl_emits_one_object_per_line() {
        let jsonl = sample_trace().to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"type\":\"span\""));
        assert!(lines[2].starts_with("{\"type\":\"event\""));
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn empty_trace_serializes_cleanly() {
        let trace = Trace::default();
        assert!(trace.is_empty());
        assert!(trace.to_chrome_json().contains("traceEvents"));
        assert_eq!(trace.to_jsonl(), "");
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn spans_nest_via_parent_links_and_threads_get_dense_ids() {
        crate::enable();
        let _ = drain_trace();
        {
            let _outer = span(|| "t.outer".to_owned());
            {
                let _inner = span(|| "t.inner".to_owned());
            }
            event(|| "t.marker".to_owned());
        }
        std::thread::spawn(|| {
            let _other = span(|| "t.other-thread".to_owned());
        })
        .join()
        .unwrap();
        crate::disable();
        let trace = drain_trace();
        let find = |name: &str| {
            trace
                .spans
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("span {name} missing"))
        };
        let outer = find("t.outer");
        let inner = find("t.inner");
        let other = find("t.other-thread");
        assert_eq!(inner.parent, outer.id, "nesting recorded via parent link");
        assert_eq!(outer.parent, 0, "outer is a root");
        assert_eq!(other.parent, 0);
        assert_ne!(
            other.thread, outer.thread,
            "distinct threads get distinct ids"
        );
        assert!(outer.dur_us >= inner.dur_us || outer.start_us <= inner.start_us);
        assert_eq!(trace.events.len(), 1);
        assert_eq!(trace.events[0].name, "t.marker");
        // Drained means gone.
        assert!(drain_trace().is_empty());
    }
}
