//! Overhead benchmark for the observability hooks.
//!
//! Runs the same arithmetic kernel twice — bare, and saturated with
//! `simart-observe` hooks (counter, histogram, timer, stamp, span) on
//! every iteration — and reports the per-iteration cost difference.
//!
//! Without the `enabled` feature (the default for
//! `cargo bench -p simart-observe`) every hook must fold to nothing;
//! `--test` mode asserts that and exits non-zero on a regression, so
//! CI can gate the no-op path:
//!
//! ```text
//! cargo bench -p simart-observe -- --test
//! ```
//!
//! With `--features enabled` the same binary reports the cost of the
//! *compiled-in but runtime-disabled* path (one relaxed atomic load
//! per hook) and of recording inside a capture window; `--test` only
//! asserts the no-op build, since the enabled path legitimately costs.

use simart_observe as observe;
use std::hint::black_box;
use std::time::{Duration, Instant};

const REPEATS: usize = 7;

/// The bare kernel: a xorshift accumulator with no instrumentation.
fn baseline(iters: u64) -> u64 {
    let mut acc = 0x9e3779b97f4a7c15u64;
    for i in 0..iters {
        acc ^= acc << 13;
        acc ^= acc >> 7;
        acc = acc.wrapping_add(black_box(i));
    }
    acc
}

/// The same kernel with every hook class on the hot path.
fn instrumented(iters: u64) -> u64 {
    let mut acc = 0x9e3779b97f4a7c15u64;
    for i in 0..iters {
        let _timer = observe::timer("bench.iter_us");
        let stamp = observe::Stamp::now();
        let _span = observe::span(|| format!("bench.iter.{i}"));
        acc ^= acc << 13;
        acc ^= acc >> 7;
        acc = acc.wrapping_add(black_box(i));
        observe::count("bench.iters", 1);
        observe::observe_us("bench.value_us", acc & 0xff);
        stamp.observe_into("bench.stamp_us");
    }
    acc
}

/// Minimum wall-clock over `REPEATS` runs (minimum is the standard
/// noise-robust estimator for micro-benchmarks).
fn measure(f: impl Fn(u64) -> u64, iters: u64) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..REPEATS {
        let start = Instant::now();
        black_box(f(black_box(iters)));
        best = best.min(start.elapsed());
    }
    best
}

fn per_iter_ns(d: Duration, iters: u64) -> f64 {
    d.as_nanos() as f64 / iters as f64
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    // `cargo bench` also passes --bench / filter strings; ignore them.
    let iters: u64 = if test_mode { 2_000_000 } else { 10_000_000 };

    // Warm up both paths once.
    black_box(baseline(10_000));
    black_box(instrumented(10_000));

    let base = measure(baseline, iters);
    let cold = measure(instrumented, iters);
    let base_ns = per_iter_ns(base, iters);
    let cold_ns = per_iter_ns(cold, iters);
    let overhead_ns = (cold_ns - base_ns).max(0.0);

    let feature = if cfg!(feature = "enabled") {
        "enabled"
    } else {
        "disabled (no-op)"
    };
    println!("observe-overhead ({feature} build, {iters} iters, best of {REPEATS}):");
    println!("  baseline     {base_ns:>8.2} ns/iter");
    println!("  instrumented {cold_ns:>8.2} ns/iter  (capture window closed)");
    println!("  overhead     {overhead_ns:>8.2} ns/iter");

    if cfg!(feature = "enabled") {
        // Also show the true recording cost inside a capture window.
        observe::enable();
        let hot = measure(instrumented, iters / 10);
        observe::disable();
        observe::reset();
        println!(
            "  recording    {:>8.2} ns/iter  (capture window open)",
            per_iter_ns(hot, iters / 10)
        );
    }

    if test_mode {
        if cfg!(feature = "enabled") {
            println!("PASS  overhead bench ran (enabled build; no-op assertion not applicable)");
            return;
        }
        // The disabled path must compile to nothing. Allow generous
        // slack for scheduler noise: a real regression (any atomic,
        // lock, or allocation per hook) costs far more than 25 ns/iter
        // across six hook calls.
        let limit_ns = 25.0;
        if overhead_ns > limit_ns {
            eprintln!(
                "FAIL  no-op observability path regressed: {overhead_ns:.2} ns/iter overhead \
                 (limit {limit_ns} ns/iter)"
            );
            std::process::exit(1);
        }
        println!("PASS  no-op path within noise ({overhead_ns:.2} <= {limit_ns} ns/iter)");
    }
}
