//! The lint registry: every SA lint as an incremental state machine.
//!
//! Each unit implements [`Lint`]: it can rebuild its state from a full
//! database scan, advance it by one replayed journal record, serialize
//! the *committed* part of that state (derived caches are rebuilt on
//! restore), and emit its current findings. The diagnostics produced
//! must be byte-identical to what the pre-engine monolithic scan
//! produced for the same database content — the property test in
//! `tests/incremental_props.rs` holds every unit to that.
//!
//! State layouts follow one discipline: maps keyed by the document id
//! the finding hangs off, so a rewrite of one document recomputes only
//! that document's findings (plus whatever cross-document structure it
//! participates in — hash groups, reference reverse-indexes, DAG
//! components).

use crate::diag::{Diagnostic, LintCode};
use crate::engine::{Delta, Lint, Observes};
use simart_artifact::dag::{DependencyGraph, GraphIssue};
use simart_artifact::Uuid;
use simart_db::{BlobKey, Database, LoadReport, Value};
use simart_run::RunStatus;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::path::Path;

/// One instance of every lint, in registration order. SA0010
/// (`UnknownResource`) is represented by [`ResourceLint`], whose logic
/// runs over experiment axes in the prelaunch gate rather than over
/// database content.
pub(crate) fn registry() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(RefLint::default()),
        Box::new(DagLint::default()),
        Box::new(BlobRefLint::default()),
        Box::new(BlobFileLint::default()),
        Box::new(RunLogLint::default()),
        Box::new(DupArtifactLint::default()),
        Box::new(DupRunLint::default()),
        Box::new(ResourceLint),
        Box::new(QuarantineLint::default()),
        Box::new(JournalLint::default()),
        Box::new(IndexLint::default()),
    ]
}

// ---------------------------------------------------------------------
// State (de)serialization helpers. Persisted findings carry only
// (code, subject, message); severity is re-derived from the code, and
// report order is re-established by the engine's final sort.

fn diag_value(d: &Diagnostic) -> Value {
    Value::map([
        ("code", Value::from(d.code.code())),
        ("subject", Value::from(d.subject.clone())),
        ("message", Value::from(d.message.clone())),
    ])
}

fn diag_from(v: &Value) -> Result<Diagnostic, String> {
    let code = v
        .at("code")
        .and_then(Value::as_str)
        .and_then(LintCode::from_spec)
        .ok_or("persisted diagnostic has no recognizable code")?;
    let subject = v
        .at("subject")
        .and_then(Value::as_str)
        .ok_or("persisted diagnostic has no subject")?;
    let message = v
        .at("message")
        .and_then(Value::as_str)
        .ok_or("persisted diagnostic has no message")?;
    Ok(Diagnostic::new(code, subject, message))
}

fn diags_value(diags: &[Diagnostic]) -> Value {
    Value::array(diags.iter().map(diag_value))
}

fn diags_from(v: &Value) -> Result<Vec<Diagnostic>, String> {
    expect_array(v, "diagnostic list")?
        .iter()
        .map(diag_from)
        .collect()
}

fn expect_array<'v>(v: &'v Value, what: &str) -> Result<&'v [Value], String> {
    v.as_array()
        .ok_or_else(|| format!("persisted {what} is not an array"))
}

fn expect_map<'v>(v: &'v Value, what: &str) -> Result<&'v BTreeMap<String, Value>, String> {
    v.as_map()
        .ok_or_else(|| format!("persisted {what} is not a map"))
}

fn str_items(v: &Value, what: &str) -> Result<Vec<String>, String> {
    expect_array(v, what)?
        .iter()
        .map(|s| {
            s.as_str()
                .map(str::to_owned)
                .ok_or_else(|| format!("persisted {what} holds a non-string item"))
        })
        .collect()
}

fn sorted_str_array<'a>(items: impl IntoIterator<Item = &'a String>) -> Value {
    let mut items: Vec<&String> = items.into_iter().collect();
    items.sort();
    Value::array(items.into_iter().map(|s| Value::from(s.clone())))
}

/// The string inputs of an artifact/run document, in declaration
/// order. Non-string items are ignored, exactly like the full scan.
fn doc_inputs(doc: &Value) -> Vec<String> {
    doc.at("inputs")
        .and_then(Value::as_array)
        .unwrap_or(&[])
        .iter()
        .filter_map(|i| i.as_str().map(str::to_owned))
        .collect()
}

// ---------------------------------------------------------------------
// SA0001 — runs referencing artifacts that do not exist.

#[derive(Default)]
struct RefLint {
    /// Every string `_id` in the artifact collection (no uuid gate:
    /// a run may legally reference an artifact with a malformed id —
    /// that misdeed is SA0003's, not SA0001's).
    artifacts: HashSet<String>,
    /// Run id → its declared string inputs, in document order.
    run_inputs: BTreeMap<String, Vec<String>>,
    /// Derived: input id → runs referencing it.
    rev: HashMap<String, HashSet<String>>,
    /// Derived: run id → current findings.
    findings: BTreeMap<String, Vec<Diagnostic>>,
}

impl RefLint {
    fn recompute(&mut self, run: &str) {
        let inputs = self.run_inputs.get(run).map(Vec::as_slice).unwrap_or(&[]);
        let diags: Vec<Diagnostic> = inputs
            .iter()
            .filter(|input| !self.artifacts.contains(*input))
            .map(|input| {
                Diagnostic::new(
                    LintCode::DanglingArtifactRef,
                    format!("run:{run}"),
                    format!("input artifact {input} is not in the artifact collection"),
                )
            })
            .collect();
        if diags.is_empty() {
            self.findings.remove(run);
        } else {
            self.findings.insert(run.to_owned(), diags);
        }
    }

    fn unlink(&mut self, run: &str, inputs: &[String]) {
        for input in inputs {
            if let Some(runs) = self.rev.get_mut(input) {
                runs.remove(run);
                if runs.is_empty() {
                    self.rev.remove(input);
                }
            }
        }
    }

    fn set_run(&mut self, id: &str, inputs: Vec<String>) {
        if let Some(old) = self.run_inputs.remove(id) {
            self.unlink(id, &old);
        }
        for input in &inputs {
            self.rev
                .entry(input.clone())
                .or_default()
                .insert(id.to_owned());
        }
        self.run_inputs.insert(id.to_owned(), inputs);
        self.recompute(id);
    }

    fn remove_run(&mut self, id: &str) {
        if let Some(old) = self.run_inputs.remove(id) {
            self.unlink(id, &old);
        }
        self.findings.remove(id);
    }

    fn touched_runs(&self, input: &str) -> Vec<String> {
        self.rev
            .get(input)
            .map(|runs| runs.iter().cloned().collect())
            .unwrap_or_default()
    }

    fn rebuild_derived(&mut self) {
        self.rev.clear();
        self.findings.clear();
        let runs: Vec<String> = self.run_inputs.keys().cloned().collect();
        for run in runs {
            let inputs = self.run_inputs[&run].clone();
            for input in &inputs {
                self.rev
                    .entry(input.clone())
                    .or_default()
                    .insert(run.clone());
            }
            self.recompute(&run);
        }
    }
}

impl Lint for RefLint {
    fn name(&self) -> &'static str {
        "refs"
    }

    fn timer_metric(&self) -> &'static str {
        "analyze.lint_us.refs"
    }

    fn observes(&self) -> Observes {
        Observes {
            collections: &["artifacts", "runs"],
            blobs: false,
        }
    }

    fn full_scan(&mut self, db: &Database) {
        *self = RefLint::default();
        if db.has_collection("artifacts") {
            for doc in db.collection("artifacts").all() {
                if let Some(id) = doc.at("_id").and_then(Value::as_str) {
                    self.artifacts.insert(id.to_owned());
                }
            }
        }
        if db.has_collection("runs") {
            let runs = db.collection("runs");
            for doc in runs.all() {
                let id = doc
                    .at("_id")
                    .and_then(Value::as_str)
                    .unwrap_or("<missing _id>");
                self.run_inputs.insert(id.to_owned(), doc_inputs(&doc));
            }
            // A declared multikey hash index on `inputs` (the run
            // store installs one) already holds input -> runs; seed
            // the reverse map from it instead of re-walking every
            // run's input list. Extra entries (a run whose `inputs`
            // is a plain string, the whole-array key) are harmless:
            // findings are recomputed from `run_inputs`, the reverse
            // map only decides which runs an artifact change touches.
            if let Some(entries) = runs.index_entries("inputs") {
                for (value, ids) in entries {
                    let Value::Str(input) = value else { continue };
                    for id in ids {
                        self.rev.entry(input.clone()).or_default().insert(id);
                    }
                }
                let run_ids: Vec<String> = self.run_inputs.keys().cloned().collect();
                for run in run_ids {
                    self.recompute(&run);
                }
                return;
            }
        }
        self.rebuild_derived();
    }

    fn apply_delta(&mut self, delta: &Delta<'_>) {
        match delta {
            Delta::Write {
                collection: "artifacts",
                id,
                ..
            } if self.artifacts.insert((*id).to_owned()) => {
                for run in self.touched_runs(id) {
                    self.recompute(&run);
                }
            }
            Delta::Delete {
                collection: "artifacts",
                id,
            } if self.artifacts.remove(*id) => {
                for run in self.touched_runs(id) {
                    self.recompute(&run);
                }
            }
            Delta::Drop {
                collection: "artifacts",
            } => {
                self.artifacts.clear();
                let runs: Vec<String> = self.run_inputs.keys().cloned().collect();
                for run in runs {
                    self.recompute(&run);
                }
            }
            Delta::Write {
                collection: "runs",
                id,
                doc,
            } => self.set_run(id, doc_inputs(doc)),
            Delta::Delete {
                collection: "runs",
                id,
            } => self.remove_run(id),
            Delta::Drop { collection: "runs" } => {
                self.run_inputs.clear();
                self.rev.clear();
                self.findings.clear();
            }
            _ => {}
        }
    }

    fn emit(&self, out: &mut Vec<Diagnostic>) {
        for diags in self.findings.values() {
            out.extend(diags.iter().cloned());
        }
    }

    fn state(&self) -> Value {
        Value::map([
            ("artifacts".to_owned(), sorted_str_array(&self.artifacts)),
            (
                "runs".to_owned(),
                Value::map(
                    self.run_inputs
                        .iter()
                        .map(|(id, inputs)| (id.clone(), sorted_str_array_keeping_order(inputs))),
                ),
            ),
        ])
    }

    fn restore(&mut self, state: &Value) -> Result<(), String> {
        *self = RefLint::default();
        self.artifacts = str_items(
            state.at("artifacts").unwrap_or(&Value::Null),
            "artifact id set",
        )?
        .into_iter()
        .collect();
        for (id, inputs) in expect_map(state.at("runs").unwrap_or(&Value::Null), "run input map")? {
            self.run_inputs
                .insert(id.clone(), str_items(inputs, "run input list")?);
        }
        self.rebuild_derived();
        Ok(())
    }
}

/// Inputs keep document order (it determines finding order within a
/// run before the final sort — and the final sort makes that moot, but
/// preserving it keeps state diffs honest).
fn sorted_str_array_keeping_order(items: &[String]) -> Value {
    Value::array(items.iter().map(|s| Value::from(s.clone())))
}

// ---------------------------------------------------------------------
// SA0002 / SA0003 — dependency cycles, orphan inputs, malformed ids.

/// Per-document committed record: `None` when the `_id` failed uuid
/// parsing (the document contributes nothing to the graph), otherwise
/// the raw declared input strings.
type DagRecord = Option<Vec<String>>;

#[derive(Default)]
struct DagLint {
    /// The committed state: artifact id → record.
    docs: BTreeMap<String, DagRecord>,
    // Derived caches, rebuilt wholesale by `rebuild`:
    /// Malformed-id / malformed-input findings, per document.
    doc_findings: BTreeMap<String, Vec<Diagnostic>>,
    /// Declared artifact uuids.
    declared: HashSet<Uuid>,
    /// Edges `input → artifact`, duplicates preserved.
    edges_out: HashMap<Uuid, Vec<Uuid>>,
    /// Union-find over weakly-connected components.
    parent: HashMap<Uuid, Uuid>,
    /// Root → member nodes (only valid at roots).
    members: HashMap<Uuid, Vec<Uuid>>,
    /// Root → cycle/orphan findings from the last re-validation.
    component_findings: HashMap<Uuid, Vec<Diagnostic>>,
}

impl DagLint {
    fn find(&mut self, node: Uuid) -> Uuid {
        let mut root = node;
        while self.parent[&root] != root {
            root = self.parent[&root];
        }
        let mut cur = node;
        while self.parent[&cur] != root {
            let next = self.parent[&cur];
            self.parent.insert(cur, root);
            cur = next;
        }
        root
    }

    fn ensure(&mut self, node: Uuid) -> Uuid {
        if let std::collections::hash_map::Entry::Vacant(entry) = self.parent.entry(node) {
            entry.insert(node);
            self.members.insert(node, vec![node]);
        }
        self.find(node)
    }

    fn union(&mut self, a: Uuid, b: Uuid) {
        let ra = self.ensure(a);
        let rb = self.ensure(b);
        if ra == rb {
            return;
        }
        let (big, small) = if self.members[&ra].len() >= self.members[&rb].len() {
            (ra, rb)
        } else {
            (rb, ra)
        };
        let moved = self.members.remove(&small).expect("small root has members");
        self.parent.insert(small, big);
        self.members
            .get_mut(&big)
            .expect("big root has members")
            .extend(moved);
        // Both previous components are superseded by the merged one.
        self.component_findings.remove(&ra);
        self.component_findings.remove(&rb);
    }

    /// Re-runs full graph validation, scoped to one weakly-connected
    /// component: cycles and orphans can only involve nodes reachable
    /// through edges, and edges never leave a component.
    fn revalidate(&mut self, root: Uuid) {
        let members = self.members.get(&root).cloned().unwrap_or_default();
        let mut graph = DependencyGraph::new();
        for m in &members {
            if self.declared.contains(m) {
                graph.add_node(*m);
            }
        }
        for m in &members {
            if let Some(outs) = self.edges_out.get(m) {
                for to in outs {
                    graph.add_edge_unchecked(*m, *to);
                }
            }
        }
        let diags = graph_issue_diags(graph.validate());
        if diags.is_empty() {
            self.component_findings.remove(&root);
        } else {
            self.component_findings.insert(root, diags);
        }
    }

    /// Plays one committed record into the derived caches, then
    /// re-validates the (possibly merged) component it landed in.
    fn integrate(&mut self, id: &str, record: &DagRecord) {
        let Some(inputs) = record else {
            self.doc_findings.insert(
                id.to_owned(),
                vec![Diagnostic::new(
                    LintCode::OrphanArtifactInput,
                    format!("artifact:{id}"),
                    format!("artifact id '{id}' is not a valid uuid"),
                )],
            );
            return;
        };
        let Ok(uuid) = id.parse::<Uuid>() else { return };
        let subject = format!("artifact:{id}");
        let mut diags = Vec::new();
        self.declared.insert(uuid);
        self.ensure(uuid);
        for input in inputs {
            match input.parse::<Uuid>() {
                Ok(from) => {
                    self.edges_out.entry(from).or_default().push(uuid);
                    self.union(uuid, from);
                }
                Err(_) => diags.push(Diagnostic::new(
                    LintCode::OrphanArtifactInput,
                    subject.clone(),
                    format!("input '{input}' is not a valid uuid"),
                )),
            }
        }
        if diags.is_empty() {
            self.doc_findings.remove(id);
        } else {
            self.doc_findings.insert(id.to_owned(), diags);
        }
        let root = self.find(uuid);
        self.revalidate(root);
    }

    /// Rebuilds every derived cache from the committed records. This
    /// is the O(artifacts) escape hatch for operations a union-find
    /// cannot play backwards (document deletion, a changed re-insert,
    /// a collection drop) — rare events next to the insert-only flow
    /// of a running campaign.
    fn rebuild(&mut self) {
        self.doc_findings.clear();
        self.declared.clear();
        self.edges_out.clear();
        self.parent.clear();
        self.members.clear();
        self.component_findings.clear();
        let docs: Vec<(String, DagRecord)> = self
            .docs
            .iter()
            .map(|(id, r)| (id.clone(), r.clone()))
            .collect();
        for (id, record) in docs {
            self.integrate(&id, &record);
        }
    }

    fn record_for(id: &str, doc: &Value) -> DagRecord {
        if id.parse::<Uuid>().is_ok() {
            Some(doc_inputs(doc))
        } else {
            None
        }
    }
}

fn graph_issue_diags(issues: Vec<GraphIssue>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for issue in issues {
        match issue {
            GraphIssue::Cycle { members } => {
                let names: Vec<String> = members.iter().map(Uuid::to_string).collect();
                diags.push(Diagnostic::new(
                    LintCode::ArtifactCycle,
                    format!("artifact:{}", names[0]),
                    format!("artifact dependency cycle through [{}]", names.join(", ")),
                ));
            }
            GraphIssue::Orphan {
                node,
                referenced_by,
            } => {
                let refs: Vec<String> = referenced_by.iter().map(Uuid::to_string).collect();
                diags.push(Diagnostic::new(
                    LintCode::OrphanArtifactInput,
                    format!("artifact:{node}"),
                    format!(
                        "input {node} is referenced by [{}] but no artifact document declares it",
                        refs.join(", ")
                    ),
                ));
            }
        }
    }
    diags
}

impl Lint for DagLint {
    fn name(&self) -> &'static str {
        "dag"
    }

    fn timer_metric(&self) -> &'static str {
        "analyze.lint_us.dag"
    }

    fn observes(&self) -> Observes {
        Observes {
            collections: &["artifacts"],
            blobs: false,
        }
    }

    fn full_scan(&mut self, db: &Database) {
        *self = DagLint::default();
        if db.has_collection("artifacts") {
            for doc in db.collection("artifacts").all() {
                let Some(id) = doc.at("_id").and_then(Value::as_str) else {
                    continue;
                };
                self.docs
                    .insert(id.to_owned(), DagLint::record_for(id, &doc));
            }
        }
        self.rebuild();
    }

    fn apply_delta(&mut self, delta: &Delta<'_>) {
        match delta {
            Delta::Write {
                collection: "artifacts",
                id,
                doc,
            } => {
                let record = DagLint::record_for(id, doc);
                match self.docs.get(*id) {
                    Some(old) if *old == record => {} // unchanged upsert
                    Some(_) => {
                        self.docs.insert((*id).to_owned(), record);
                        self.rebuild();
                    }
                    None => {
                        self.docs.insert((*id).to_owned(), record.clone());
                        self.integrate(id, &record);
                    }
                }
            }
            Delta::Delete {
                collection: "artifacts",
                id,
            } if self.docs.remove(*id).is_some() => {
                self.rebuild();
            }
            Delta::Drop {
                collection: "artifacts",
            } => {
                self.docs.clear();
                self.rebuild();
            }
            _ => {}
        }
    }

    fn emit(&self, out: &mut Vec<Diagnostic>) {
        for diags in self
            .doc_findings
            .values()
            .chain(self.component_findings.values())
        {
            out.extend(diags.iter().cloned());
        }
    }

    fn state(&self) -> Value {
        Value::map(self.docs.iter().map(|(id, record)| {
            let value = match record {
                None => Value::Null,
                Some(inputs) => Value::array(inputs.iter().map(|i| Value::from(i.clone()))),
            };
            (id.clone(), value)
        }))
    }

    fn restore(&mut self, state: &Value) -> Result<(), String> {
        *self = DagLint::default();
        for (id, record) in expect_map(state, "dag document map")? {
            let record = match record {
                Value::Null => None,
                other => Some(str_items(other, "dag input list")?),
            };
            self.docs.insert(id.clone(), record);
        }
        self.rebuild();
        Ok(())
    }
}

// ---------------------------------------------------------------------
// SA0004 — payload references that do not resolve to a stored blob.

#[derive(Default)]
struct BlobRefLint {
    /// Keys currently in the blob store.
    blobs: BTreeSet<BlobKey>,
    /// Subject (`artifact:<id>` / `run:<id>`) → its payload hex ref.
    refs: BTreeMap<String, String>,
    /// Derived: parseable key → subjects referencing it.
    rev: BTreeMap<BlobKey, BTreeSet<String>>,
    /// Derived: subject → current finding.
    findings: BTreeMap<String, Diagnostic>,
}

impl BlobRefLint {
    fn recompute(&mut self, subject: &str) {
        let Some(hex) = self.refs.get(subject) else {
            self.findings.remove(subject);
            return;
        };
        let diag = match BlobKey::from_hex(hex) {
            None => Some(Diagnostic::new(
                LintCode::MissingBlob,
                subject,
                format!("payload reference '{hex}' is not a valid blob key"),
            )),
            Some(key) if !self.blobs.contains(&key) => Some(Diagnostic::new(
                LintCode::MissingBlob,
                subject,
                format!("payload blob {hex} is not in the blob store"),
            )),
            Some(_) => None,
        };
        match diag {
            Some(diag) => {
                self.findings.insert(subject.to_owned(), diag);
            }
            None => {
                self.findings.remove(subject);
            }
        }
    }

    fn set_ref(&mut self, subject: &str, hex: Option<String>) {
        if let Some(old) = self.refs.remove(subject) {
            if let Some(key) = BlobKey::from_hex(&old) {
                if let Some(subjects) = self.rev.get_mut(&key) {
                    subjects.remove(subject);
                    if subjects.is_empty() {
                        self.rev.remove(&key);
                    }
                }
            }
        }
        if let Some(hex) = hex {
            if let Some(key) = BlobKey::from_hex(&hex) {
                self.rev.entry(key).or_default().insert(subject.to_owned());
            }
            self.refs.insert(subject.to_owned(), hex);
        }
        self.recompute(subject);
    }

    fn blob_flip(&mut self, key: BlobKey, present: bool) {
        let changed = if present {
            self.blobs.insert(key)
        } else {
            self.blobs.remove(&key)
        };
        if changed {
            let subjects: Vec<String> = self
                .rev
                .get(&key)
                .map(|s| s.iter().cloned().collect())
                .unwrap_or_default();
            for subject in subjects {
                self.recompute(&subject);
            }
        }
    }

    fn drop_prefix(&mut self, prefix: &str) {
        let subjects: Vec<String> = self
            .refs
            .range(prefix.to_owned()..)
            .take_while(|(s, _)| s.starts_with(prefix))
            .map(|(s, _)| s.clone())
            .collect();
        for subject in subjects {
            self.set_ref(&subject, None);
        }
    }

    /// The payload hex an artifact document contributes — gated on a
    /// valid uuid `_id`, exactly like the monolithic scan (malformed
    /// ids stop at their SA0003 finding).
    fn artifact_ref(id: &str, doc: &Value) -> Option<String> {
        if id.parse::<Uuid>().is_err() {
            return None;
        }
        doc.at("payload").and_then(Value::as_str).map(str::to_owned)
    }

    fn run_ref(doc: &Value) -> Option<String> {
        doc.at("results.payload")
            .and_then(Value::as_str)
            .map(str::to_owned)
    }
}

impl Lint for BlobRefLint {
    fn name(&self) -> &'static str {
        "blob_refs"
    }

    fn timer_metric(&self) -> &'static str {
        "analyze.lint_us.blob_refs"
    }

    fn observes(&self) -> Observes {
        Observes {
            collections: &["artifacts", "runs"],
            blobs: true,
        }
    }

    fn full_scan(&mut self, db: &Database) {
        *self = BlobRefLint::default();
        self.blobs = db.blobs().keys().into_iter().collect();
        if db.has_collection("artifacts") {
            for doc in db.collection("artifacts").all() {
                let Some(id) = doc.at("_id").and_then(Value::as_str) else {
                    continue;
                };
                if let Some(hex) = BlobRefLint::artifact_ref(id, &doc) {
                    self.set_ref(&format!("artifact:{id}"), Some(hex));
                }
            }
        }
        if db.has_collection("runs") {
            for doc in db.collection("runs").all() {
                let id = doc
                    .at("_id")
                    .and_then(Value::as_str)
                    .unwrap_or("<missing _id>");
                if let Some(hex) = BlobRefLint::run_ref(&doc) {
                    self.set_ref(&format!("run:{id}"), Some(hex));
                }
            }
        }
    }

    fn apply_delta(&mut self, delta: &Delta<'_>) {
        match delta {
            Delta::Write {
                collection: "artifacts",
                id,
                doc,
            } => {
                self.set_ref(
                    &format!("artifact:{id}"),
                    BlobRefLint::artifact_ref(id, doc),
                );
            }
            Delta::Write {
                collection: "runs",
                id,
                doc,
            } => {
                self.set_ref(&format!("run:{id}"), BlobRefLint::run_ref(doc));
            }
            Delta::Delete {
                collection: "artifacts",
                id,
            } => {
                self.set_ref(&format!("artifact:{id}"), None);
            }
            Delta::Delete {
                collection: "runs",
                id,
            } => {
                self.set_ref(&format!("run:{id}"), None);
            }
            Delta::Drop {
                collection: "artifacts",
            } => self.drop_prefix("artifact:"),
            Delta::Drop { collection: "runs" } => self.drop_prefix("run:"),
            Delta::BlobPut(key) => self.blob_flip(*key, true),
            Delta::BlobRemove(key) => self.blob_flip(*key, false),
            _ => {}
        }
    }

    fn emit(&self, out: &mut Vec<Diagnostic>) {
        out.extend(self.findings.values().cloned());
    }

    fn state(&self) -> Value {
        Value::map([
            (
                "blobs".to_owned(),
                Value::array(self.blobs.iter().map(|k| Value::from(k.to_hex()))),
            ),
            (
                "refs".to_owned(),
                Value::map(
                    self.refs
                        .iter()
                        .map(|(s, h)| (s.clone(), Value::from(h.clone()))),
                ),
            ),
        ])
    }

    fn restore(&mut self, state: &Value) -> Result<(), String> {
        *self = BlobRefLint::default();
        for hex in str_items(state.at("blobs").unwrap_or(&Value::Null), "blob key set")? {
            let key = BlobKey::from_hex(&hex)
                .ok_or_else(|| format!("persisted blob key '{hex}' is not parseable"))?;
            self.blobs.insert(key);
        }
        let refs = expect_map(state.at("refs").unwrap_or(&Value::Null), "payload ref map")?;
        for (subject, hex) in refs {
            let hex = hex
                .as_str()
                .ok_or("persisted payload ref is not a string")?
                .to_owned();
            self.set_ref(subject, Some(hex));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// SA0005 — blob files whose content does not hash to their name.
// Environment-only: blob files are not journaled as files, so this
// lint rescans `blobs/` on every directory check.

#[derive(Default)]
struct BlobFileLint {
    findings: Vec<Diagnostic>,
}

impl Lint for BlobFileLint {
    fn name(&self) -> &'static str {
        "blob_files"
    }

    fn timer_metric(&self) -> &'static str {
        "analyze.lint_us.blob_files"
    }

    fn observes(&self) -> Observes {
        Observes {
            collections: &[],
            blobs: false,
        }
    }

    fn full_scan(&mut self, _db: &Database) {
        self.findings.clear();
    }

    fn apply_delta(&mut self, _delta: &Delta<'_>) {}

    fn scan_environment(&mut self, dir: &Path, _report: &LoadReport) {
        self.findings = scan_blob_files(dir);
    }

    fn emit(&self, out: &mut Vec<Diagnostic>) {
        out.extend(self.findings.iter().cloned());
    }

    fn state(&self) -> Value {
        Value::Null
    }

    fn restore(&mut self, _state: &Value) -> Result<(), String> {
        self.findings.clear();
        Ok(())
    }
}

// ---------------------------------------------------------------------
// SA0006 / SA0007 / SA0011 / SA0015 / SA0016 — event-log replay lints.
// A run's findings depend only on its own document, so incremental
// means "recompute the one document that changed".

#[derive(Default)]
struct RunLogLint {
    findings: BTreeMap<String, Vec<Diagnostic>>,
}

impl RunLogLint {
    fn compute(&mut self, id: &str, doc: &Value) {
        let subject = format!("run:{id}");
        let mut diags = Vec::new();
        replay_events(doc, &subject, &mut diags);
        lint_remote_attempts(doc, &subject, &mut diags);
        lint_checkpoint_events(doc, &subject, &mut diags);
        lint_session_resume(doc, &subject, &mut diags);
        if diags.is_empty() {
            self.findings.remove(id);
        } else {
            self.findings.insert(id.to_owned(), diags);
        }
    }
}

impl Lint for RunLogLint {
    fn name(&self) -> &'static str {
        "run_log"
    }

    fn timer_metric(&self) -> &'static str {
        "analyze.lint_us.run_log"
    }

    fn observes(&self) -> Observes {
        Observes {
            collections: &["runs"],
            blobs: false,
        }
    }

    fn full_scan(&mut self, db: &Database) {
        *self = RunLogLint::default();
        if db.has_collection("runs") {
            for doc in db.collection("runs").all() {
                let id = doc
                    .at("_id")
                    .and_then(Value::as_str)
                    .unwrap_or("<missing _id>");
                self.compute(id, &doc);
            }
        }
    }

    fn apply_delta(&mut self, delta: &Delta<'_>) {
        match delta {
            Delta::Write {
                collection: "runs",
                id,
                doc,
            } => self.compute(id, doc),
            Delta::Delete {
                collection: "runs",
                id,
            } => {
                self.findings.remove(*id);
            }
            Delta::Drop { collection: "runs" } => self.findings.clear(),
            _ => {}
        }
    }

    fn emit(&self, out: &mut Vec<Diagnostic>) {
        for diags in self.findings.values() {
            out.extend(diags.iter().cloned());
        }
    }

    fn state(&self) -> Value {
        Value::map(
            self.findings
                .iter()
                .map(|(id, diags)| (id.clone(), diags_value(diags))),
        )
    }

    fn restore(&mut self, state: &Value) -> Result<(), String> {
        *self = RunLogLint::default();
        for (id, diags) in expect_map(state, "run-log finding map")? {
            self.findings.insert(id.clone(), diags_from(diags)?);
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// SA0008 / SA0009 — duplicate content hashes. Both maintain
// hash → id-set groups; a group of two or more is a finding.

struct HashGroups {
    /// The code the group finding fires as.
    code: LintCode,
    /// Renders the finding message for a duplicate group.
    message: fn(&str, &BTreeSet<String>) -> String,
    /// id → its hash (the committed state).
    hashes: BTreeMap<String, String>,
    /// Derived: hash → ids carrying it.
    groups: HashMap<String, BTreeSet<String>>,
    /// Derived: hash → current finding.
    findings: BTreeMap<String, Diagnostic>,
}

impl HashGroups {
    fn new(code: LintCode, message: fn(&str, &BTreeSet<String>) -> String) -> HashGroups {
        HashGroups {
            code,
            message,
            hashes: BTreeMap::new(),
            groups: HashMap::new(),
            findings: BTreeMap::new(),
        }
    }

    fn clear(&mut self) {
        self.hashes.clear();
        self.groups.clear();
        self.findings.clear();
    }

    fn set(&mut self, id: &str, hash: Option<String>) {
        if let Some(old) = self.hashes.remove(id) {
            if let Some(group) = self.groups.get_mut(&old) {
                group.remove(id);
                if group.is_empty() {
                    self.groups.remove(&old);
                }
            }
            self.recompute(&old);
        }
        if let Some(hash) = hash {
            self.groups
                .entry(hash.clone())
                .or_default()
                .insert(id.to_owned());
            self.hashes.insert(id.to_owned(), hash.clone());
            self.recompute(&hash);
        }
    }

    fn recompute(&mut self, hash: &str) {
        match self.groups.get(hash) {
            Some(ids) if ids.len() > 1 => {
                let diag =
                    Diagnostic::new(self.code, format!("hash:{hash}"), (self.message)(hash, ids));
                self.findings.insert(hash.to_owned(), diag);
            }
            _ => {
                self.findings.remove(hash);
            }
        }
    }

    fn rebuild(&mut self) {
        self.groups.clear();
        self.findings.clear();
        for (id, hash) in &self.hashes {
            self.groups
                .entry(hash.clone())
                .or_default()
                .insert(id.clone());
        }
        let hashes: Vec<String> = self.groups.keys().cloned().collect();
        for hash in hashes {
            self.recompute(&hash);
        }
    }

    fn state(&self) -> Value {
        Value::map(
            self.hashes
                .iter()
                .map(|(id, h)| (id.clone(), Value::from(h.clone()))),
        )
    }

    fn restore(&mut self, state: &Value) -> Result<(), String> {
        self.clear();
        for (id, hash) in expect_map(state, "hash map")? {
            let hash = hash
                .as_str()
                .ok_or("persisted hash is not a string")?
                .to_owned();
            self.hashes.insert(id.clone(), hash);
        }
        self.rebuild();
        Ok(())
    }
}

/// Seeds duplicate-hash groups from a declared `hash` index instead of
/// scanning every document. Returns `false` (caller must scan) when the
/// collection has no hash index on `hash`. Each candidate id is
/// confirmed against its document — the index is multikey, so an
/// array-valued `hash` field contributes element keys the scan path
/// would never see — which keeps the seeded result byte-identical to a
/// scan while touching only the colliding documents.
fn seed_hash_groups(
    collection: &simart_db::Collection,
    groups: &mut HashGroups,
    admit: impl Fn(&str) -> bool,
) -> bool {
    let Some(entries) = collection.index_entries("hash") else {
        return false;
    };
    for (value, ids) in entries {
        let Value::Str(hash) = value else { continue };
        for id in ids {
            if !admit(&id) {
                continue;
            }
            let confirmed = collection
                .get(&id)
                .and_then(|doc| doc.at("hash").and_then(Value::as_str).map(str::to_owned));
            if confirmed.as_deref() == Some(hash.as_str()) {
                groups.set(&id, confirmed);
            }
        }
    }
    true
}

fn artifact_dup_message(hash: &str, ids: &BTreeSet<String>) -> String {
    let ids: Vec<String> = ids.iter().cloned().collect();
    format!(
        "artifacts [{}] share content hash {hash} but were not deduplicated",
        ids.join(", ")
    )
}

fn run_dup_message(hash: &str, ids: &BTreeSet<String>) -> String {
    let ids: Vec<String> = ids.iter().cloned().collect();
    format!(
        "runs [{}] share run hash {hash}; duplicate experiments should be refused",
        ids.join(", ")
    )
}

struct DupArtifactLint {
    groups: HashGroups,
}

impl Default for DupArtifactLint {
    fn default() -> Self {
        DupArtifactLint {
            groups: HashGroups::new(LintCode::DuplicateArtifact, artifact_dup_message),
        }
    }
}

impl Lint for DupArtifactLint {
    fn name(&self) -> &'static str {
        "dup_artifacts"
    }

    fn timer_metric(&self) -> &'static str {
        "analyze.lint_us.dup_artifacts"
    }

    fn observes(&self) -> Observes {
        Observes {
            collections: &["artifacts"],
            blobs: false,
        }
    }

    fn full_scan(&mut self, db: &Database) {
        self.groups.clear();
        if db.has_collection("artifacts") {
            let artifacts = db.collection("artifacts");
            if seed_hash_groups(&artifacts, &mut self.groups, |id| {
                id.parse::<Uuid>().is_ok() // malformed ids stop at SA0003
            }) {
                return;
            }
            for doc in artifacts.all() {
                let Some(id) = doc.at("_id").and_then(Value::as_str) else {
                    continue;
                };
                if id.parse::<Uuid>().is_err() {
                    continue; // malformed ids stop at SA0003, like the full scan
                }
                let hash = doc.at("hash").and_then(Value::as_str).map(str::to_owned);
                self.groups.set(id, hash);
            }
        }
    }

    fn apply_delta(&mut self, delta: &Delta<'_>) {
        match delta {
            Delta::Write {
                collection: "artifacts",
                id,
                doc,
            } => {
                let hash = if id.parse::<Uuid>().is_ok() {
                    doc.at("hash").and_then(Value::as_str).map(str::to_owned)
                } else {
                    None
                };
                self.groups.set(id, hash);
            }
            Delta::Delete {
                collection: "artifacts",
                id,
            } => {
                self.groups.set(id, None);
            }
            Delta::Drop {
                collection: "artifacts",
            } => self.groups.clear(),
            _ => {}
        }
    }

    fn emit(&self, out: &mut Vec<Diagnostic>) {
        out.extend(self.groups.findings.values().cloned());
    }

    fn state(&self) -> Value {
        self.groups.state()
    }

    fn restore(&mut self, state: &Value) -> Result<(), String> {
        self.groups.restore(state)
    }
}

struct DupRunLint {
    groups: HashGroups,
}

impl Default for DupRunLint {
    fn default() -> Self {
        DupRunLint {
            groups: HashGroups::new(LintCode::DuplicateRunHash, run_dup_message),
        }
    }
}

impl Lint for DupRunLint {
    fn name(&self) -> &'static str {
        "dup_runs"
    }

    fn timer_metric(&self) -> &'static str {
        "analyze.lint_us.dup_runs"
    }

    fn observes(&self) -> Observes {
        Observes {
            collections: &["runs"],
            blobs: false,
        }
    }

    fn full_scan(&mut self, db: &Database) {
        self.groups.clear();
        if db.has_collection("runs") {
            let runs = db.collection("runs");
            if seed_hash_groups(&runs, &mut self.groups, |_| true) {
                return;
            }
            for doc in runs.all() {
                let id = doc
                    .at("_id")
                    .and_then(Value::as_str)
                    .unwrap_or("<missing _id>");
                let hash = doc.at("hash").and_then(Value::as_str).map(str::to_owned);
                self.groups.set(id, hash);
            }
        }
    }

    fn apply_delta(&mut self, delta: &Delta<'_>) {
        match delta {
            Delta::Write {
                collection: "runs",
                id,
                doc,
            } => {
                let hash = doc.at("hash").and_then(Value::as_str).map(str::to_owned);
                self.groups.set(id, hash);
            }
            Delta::Delete {
                collection: "runs",
                id,
            } => {
                self.groups.set(id, None);
            }
            Delta::Drop { collection: "runs" } => self.groups.clear(),
            _ => {}
        }
    }

    fn emit(&self, out: &mut Vec<Diagnostic>) {
        out.extend(self.groups.findings.values().cloned());
    }

    fn state(&self) -> Value {
        self.groups.state()
    }

    fn restore(&mut self, state: &Value) -> Result<(), String> {
        self.groups.restore(state)
    }
}

// ---------------------------------------------------------------------
// SA0010 — unknown resource references. The logic runs over experiment
// cross-product axes in the prelaunch gate (`crate::prelaunch`), not
// over stored documents, so the registry entry is a stateless
// placeholder that keeps the registry an exhaustive index of lints.

struct ResourceLint;

impl Lint for ResourceLint {
    fn name(&self) -> &'static str {
        "resources"
    }

    fn timer_metric(&self) -> &'static str {
        "analyze.lint_us.resources"
    }

    fn observes(&self) -> Observes {
        Observes {
            collections: &[],
            blobs: false,
        }
    }

    fn full_scan(&mut self, _db: &Database) {}

    fn apply_delta(&mut self, _delta: &Delta<'_>) {}

    fn emit(&self, _out: &mut Vec<Diagnostic>) {}

    fn state(&self) -> Value {
        Value::Null
    }

    fn restore(&mut self, _state: &Value) -> Result<(), String> {
        Ok(())
    }
}

// ---------------------------------------------------------------------
// SA0014 — unreleased dead letters must point at quarantined runs.

#[derive(Default)]
struct QuarantineLint {
    /// Dead-letter id → released flag.
    letters: BTreeMap<String, bool>,
    /// Run id → its `status` field (`<missing>` when absent).
    run_status: HashMap<String, String>,
    /// Derived: letter id → current finding.
    findings: BTreeMap<String, Diagnostic>,
}

impl QuarantineLint {
    fn recompute(&mut self, id: &str) {
        let subject = format!("run:{id}");
        let diag = match self.letters.get(id) {
            Some(false) => match self.run_status.get(id) {
                None => Some(Diagnostic::new(
                    LintCode::QuarantinedRunReferenced,
                    subject,
                    "unreleased dead letter references a run missing from the run collection"
                        .to_owned(),
                )),
                Some(status) if status != "quarantined" => Some(Diagnostic::new(
                    LintCode::QuarantinedRunReferenced,
                    subject,
                    format!(
                        "run has an unreleased dead letter but status '{status}' \
                         (re-queued without `simart quarantine --release`?)"
                    ),
                )),
                Some(_) => None,
            },
            _ => None,
        };
        match diag {
            Some(diag) => {
                self.findings.insert(id.to_owned(), diag);
            }
            None => {
                self.findings.remove(id);
            }
        }
    }

    fn status_of(doc: &Value) -> String {
        doc.at("status")
            .and_then(Value::as_str)
            .unwrap_or("<missing>")
            .to_owned()
    }
}

impl Lint for QuarantineLint {
    fn name(&self) -> &'static str {
        "quarantine"
    }

    fn timer_metric(&self) -> &'static str {
        "analyze.lint_us.quarantine"
    }

    fn observes(&self) -> Observes {
        Observes {
            collections: &["quarantine", "runs"],
            blobs: false,
        }
    }

    fn full_scan(&mut self, db: &Database) {
        *self = QuarantineLint::default();
        if db.has_collection("runs") {
            for doc in db.collection("runs").all() {
                let Some(id) = doc.at("_id").and_then(Value::as_str) else {
                    continue;
                };
                self.run_status
                    .insert(id.to_owned(), QuarantineLint::status_of(&doc));
            }
        }
        if db.has_collection("quarantine") {
            for doc in db.collection("quarantine").all() {
                let Some(id) = doc.at("_id").and_then(Value::as_str) else {
                    continue;
                };
                let released = doc.at("released").and_then(Value::as_bool).unwrap_or(false);
                self.letters.insert(id.to_owned(), released);
                self.recompute(id);
            }
        }
    }

    fn apply_delta(&mut self, delta: &Delta<'_>) {
        match delta {
            Delta::Write {
                collection: "quarantine",
                id,
                doc,
            } => {
                let released = doc.at("released").and_then(Value::as_bool).unwrap_or(false);
                self.letters.insert((*id).to_owned(), released);
                self.recompute(id);
            }
            Delta::Delete {
                collection: "quarantine",
                id,
            } => {
                self.letters.remove(*id);
                self.findings.remove(*id);
            }
            Delta::Drop {
                collection: "quarantine",
            } => {
                self.letters.clear();
                self.findings.clear();
            }
            Delta::Write {
                collection: "runs",
                id,
                doc,
            } => {
                self.run_status
                    .insert((*id).to_owned(), QuarantineLint::status_of(doc));
                if self.letters.contains_key(*id) {
                    self.recompute(id);
                }
            }
            Delta::Delete {
                collection: "runs",
                id,
            } => {
                self.run_status.remove(*id);
                if self.letters.contains_key(*id) {
                    self.recompute(id);
                }
            }
            Delta::Drop { collection: "runs" } => {
                self.run_status.clear();
                let letters: Vec<String> = self.letters.keys().cloned().collect();
                for id in letters {
                    self.recompute(&id);
                }
            }
            _ => {}
        }
    }

    fn emit(&self, out: &mut Vec<Diagnostic>) {
        out.extend(self.findings.values().cloned());
    }

    fn state(&self) -> Value {
        Value::map([
            (
                "letters".to_owned(),
                Value::map(
                    self.letters
                        .iter()
                        .map(|(id, r)| (id.clone(), Value::from(*r))),
                ),
            ),
            (
                "run_status".to_owned(),
                Value::map({
                    let mut entries: Vec<(String, Value)> = self
                        .run_status
                        .iter()
                        .map(|(id, s)| (id.clone(), Value::from(s.clone())))
                        .collect();
                    entries.sort_by(|a, b| a.0.cmp(&b.0));
                    entries
                }),
            ),
        ])
    }

    fn restore(&mut self, state: &Value) -> Result<(), String> {
        *self = QuarantineLint::default();
        for (id, released) in expect_map(
            state.at("letters").unwrap_or(&Value::Null),
            "dead-letter map",
        )? {
            let released = released
                .as_bool()
                .ok_or("persisted released flag is not a boolean")?;
            self.letters.insert(id.clone(), released);
        }
        for (id, status) in expect_map(
            state.at("run_status").unwrap_or(&Value::Null),
            "run status map",
        )? {
            let status = status
                .as_str()
                .ok_or("persisted run status is not a string")?;
            self.run_status.insert(id.clone(), status.to_owned());
        }
        let letters: Vec<String> = self.letters.keys().cloned().collect();
        for id in letters {
            self.recompute(&id);
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// SA0012 / SA0013 — journal layout findings. Derived from what the
// load reported, so like SA0005 this is environment-scoped and
// recomputed on every directory check.

#[derive(Default)]
struct JournalLint {
    findings: Vec<Diagnostic>,
}

impl Lint for JournalLint {
    fn name(&self) -> &'static str {
        "journal"
    }

    fn timer_metric(&self) -> &'static str {
        "analyze.lint_us.journal"
    }

    fn observes(&self) -> Observes {
        Observes {
            collections: &[],
            blobs: false,
        }
    }

    fn full_scan(&mut self, _db: &Database) {
        self.findings.clear();
    }

    fn apply_delta(&mut self, _delta: &Delta<'_>) {}

    fn scan_environment(&mut self, dir: &Path, report: &LoadReport) {
        // Analysis-state records are expected residents of the journal
        // between checkpoints (`record_state` appends one after every
        // full scan); counting them would make the checker dirty its
        // own next report. Discount them from the SA0012 record count.
        let state_records = if report.journal_records > 0 {
            simart_db::read_journal(dir)
                .map(|replay| {
                    replay
                        .ops
                        .iter()
                        .filter(|op| op_collection(op) == Some(crate::engine::STATE_COLLECTION))
                        .count()
                })
                .unwrap_or(0)
        } else {
            0
        };
        self.findings = journal_report_diagnostics(report, state_records);
    }

    fn emit(&self, out: &mut Vec<Diagnostic>) {
        out.extend(self.findings.iter().cloned());
    }

    fn state(&self) -> Value {
        Value::Null
    }

    fn restore(&mut self, _state: &Value) -> Result<(), String> {
        self.findings.clear();
        Ok(())
    }
}

// ---------------------------------------------------------------------
// SA0017 — declared secondary indexes diverging from their documents.

/// Cross-checks declared secondary indexes against the documents they
/// cover. Two passes share the code:
///
/// * the *live* pass (`full_scan`) runs
///   [`verify_indexes`](simart_db::Collection::verify_indexes) over
///   every collection — this catches a write path whose incremental
///   index maintenance drifted from the documents at runtime;
/// * the *environment* pass (`scan_environment`) compares the persisted
///   `indexes.json` manifest against a rebuild from the loaded
///   documents — this catches hand-edited checkpoints, since the load
///   itself rebuilds in-memory indexes from documents (making them
///   consistent by construction) and only the manifest still testifies
///   to what was recorded at save time.
///
/// The environment comparison only runs over a *quiet* directory — no
/// unreplayed journal records, torn tail, or divergence — because a
/// mid-flight journal legitimately carries writes the manifest predates
/// (SA0012/SA0013 already report that state). Incremental resumes
/// always leave journal records behind (the analysis-state document
/// itself is journaled), so the gate also keeps the pass off resumed
/// state, where `full_scan` never stashed a database handle.
#[derive(Default)]
struct IndexLint {
    /// Handle stashed by `full_scan` for the environment pass.
    db: Option<Database>,
    /// Live-pass findings (in-memory index vs documents).
    live: Vec<Diagnostic>,
    /// Environment-pass findings (manifest vs rebuild).
    environment: Vec<Diagnostic>,
}

impl Lint for IndexLint {
    fn name(&self) -> &'static str {
        "indexes"
    }

    fn timer_metric(&self) -> &'static str {
        "analyze.lint_us.indexes"
    }

    fn observes(&self) -> Observes {
        // Indexes are maintained at the write commit point and rebuilt
        // from documents on load; no journal record can change whether
        // they diverge, so there is nothing to advance incrementally.
        Observes {
            collections: &[],
            blobs: false,
        }
    }

    fn full_scan(&mut self, db: &Database) {
        *self = IndexLint::default();
        self.db = Some(db.clone());
        for name in db.collection_names() {
            for divergence in db.collection(&name).verify_indexes() {
                self.live.push(Diagnostic::new(
                    LintCode::IndexDivergence,
                    format!("collection:{name}"),
                    format!("index on `{}`: {}", divergence.path, divergence.detail),
                ));
            }
        }
    }

    fn apply_delta(&mut self, _delta: &Delta<'_>) {}

    fn scan_environment(&mut self, dir: &Path, report: &LoadReport) {
        self.environment.clear();
        let Some(db) = self.db.clone() else {
            return; // resumed state: see the quiet-directory argument above
        };
        if report.journal_records != 0
            || report.journal_torn_bytes != 0
            || !report.divergent.is_empty()
        {
            return;
        }
        let path = dir.join(simart_db::INDEX_MANIFEST_FILE);
        let Ok(text) = std::fs::read_to_string(&path) else {
            return; // no manifest recorded: nothing to compare
        };
        let Ok(manifest) = simart_db::json::from_json(text.trim()) else {
            self.environment.push(Diagnostic::new(
                LintCode::IndexDivergence,
                format!("manifest:{}", simart_db::INDEX_MANIFEST_FILE),
                "persisted index manifest is not valid JSON".to_owned(),
            ));
            return;
        };
        let empty = BTreeMap::new();
        let recorded = manifest
            .at("collections")
            .and_then(Value::as_map)
            .unwrap_or(&empty);
        for (name, state) in recorded {
            let rebuilt = db.collection(name).index_state();
            if *state != rebuilt {
                self.environment.push(Diagnostic::new(
                    LintCode::IndexDivergence,
                    format!("collection:{name}"),
                    "persisted index manifest disagrees with an index rebuild from the \
                     checkpoint documents; the checkpoint was modified after its save"
                        .to_owned(),
                ));
            }
        }
    }

    fn emit(&self, out: &mut Vec<Diagnostic>) {
        out.extend(self.live.iter().cloned());
        out.extend(self.environment.iter().cloned());
    }

    fn state(&self) -> Value {
        // Both passes re-derive everything from the database and the
        // directory; nothing survives to the next session.
        Value::Null
    }

    fn restore(&mut self, _state: &Value) -> Result<(), String> {
        *self = IndexLint::default();
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Shared scan primitives (used by the units above; `pub(crate)` so
// `lint.rs` unit tests can exercise them directly).

/// Replays a run's provenance event log against the lifecycle rules:
/// every `status:` event must be a legal transition from the replayed
/// state (SA0006), `retrying` needs a prior failed attempt (SA0007),
/// and the document's `status` field must match the replay (SA0011).
pub(crate) fn replay_events(doc: &Value, subject: &str, diagnostics: &mut Vec<Diagnostic>) {
    let mut current = RunStatus::Created;
    let mut saw_failed_attempt = false;
    for event in doc.at("events").and_then(Value::as_array).unwrap_or(&[]) {
        let Some(event) = event.as_str() else {
            continue;
        };
        if let Some(status) = event.strip_prefix("status:") {
            let Ok(next) = status.parse::<RunStatus>() else {
                diagnostics.push(Diagnostic::new(
                    LintCode::LifecycleViolation,
                    subject.to_owned(),
                    format!("event log names unknown status '{status}'"),
                ));
                continue;
            };
            if !current.can_transition_to(next) {
                diagnostics.push(Diagnostic::new(
                    LintCode::LifecycleViolation,
                    subject.to_owned(),
                    format!("event log records illegal transition {current} -> {next}"),
                ));
            }
            if next == RunStatus::Retrying && !saw_failed_attempt {
                diagnostics.push(Diagnostic::new(
                    LintCode::RetryWithoutFailure,
                    subject.to_owned(),
                    "run entered retrying with no prior failed attempt on record".to_owned(),
                ));
            }
            current = next;
        } else if let Some(attempt) = event.strip_prefix("attempt:") {
            if !attempt.ends_with(":succeeded") {
                saw_failed_attempt = true;
            }
        }
    }
    if let Some(status) = doc.at("status").and_then(Value::as_str) {
        if status.parse::<RunStatus>().ok() != Some(current) {
            diagnostics.push(Diagnostic::new(
                LintCode::StatusEventMismatch,
                subject.to_owned(),
                format!("document status '{status}' disagrees with event-log replay '{current}'"),
            ));
        }
    }
}

/// Scans a run's event log for orphaned remote attempts (SA0015): a
/// `remote-dispatch:<delivery>:g<generation>` that is never followed
/// by a `remote-ack`, another dispatch (a redelivery supersedes the
/// orphan), a quarantine, or a re-queue. Such a run was dispatched to
/// a worker whose answer the coordinator never journaled — the
/// signature of a coordinator crash mid-campaign — so its recorded
/// status may not reflect its last delivery.
pub(crate) fn lint_remote_attempts(doc: &Value, subject: &str, diagnostics: &mut Vec<Diagnostic>) {
    let mut open: Option<&str> = None;
    for event in doc.at("events").and_then(Value::as_array).unwrap_or(&[]) {
        let Some(event) = event.as_str() else {
            continue;
        };
        if let Some(dispatch) = event.strip_prefix("remote-dispatch:") {
            open = Some(dispatch);
        } else if event.starts_with("remote-ack:")
            || event == "status:queued"
            || event == "status:quarantined"
        {
            open = None;
        }
    }
    if let Some(dispatch) = open {
        let (delivery, generation) = dispatch.split_once(":g").unwrap_or((dispatch, "?"));
        diagnostics.push(Diagnostic::new(
            LintCode::OrphanedRemoteAttempt,
            subject.to_owned(),
            format!(
                "last remote dispatch (delivery {delivery} to worker generation \
                 {generation}) was never acked, re-delivered, or quarantined — \
                 orphaned by a coordinator crash?"
            ),
        ));
    }
}

/// Scans a run's event log for stale checkpoints (SA0016): every
/// `checkpoint-restore:<key>` / `checkpoint-save:<key>` must use the
/// key the run's own `checkpoint-key:<key>` event declares. The
/// executor journals `checkpoint-key` with the key its configuration
/// hashes to *before* touching the store, so a restore or save under a
/// different key means the boot prefix the run used was built from a
/// different input than the one on record — its results cannot be
/// attributed to the recorded configuration.
pub(crate) fn lint_checkpoint_events(
    doc: &Value,
    subject: &str,
    diagnostics: &mut Vec<Diagnostic>,
) {
    let mut declared: Option<&str> = None;
    for event in doc.at("events").and_then(Value::as_array).unwrap_or(&[]) {
        let Some(event) = event.as_str() else {
            continue;
        };
        if let Some(key) = event.strip_prefix("checkpoint-key:") {
            declared = Some(key);
            continue;
        }
        let Some((verb, used)) = ["restore", "save"].iter().find_map(|verb| {
            event
                .strip_prefix(&format!("checkpoint-{verb}:"))
                .map(|key| (*verb, key))
        }) else {
            continue;
        };
        match declared {
            None => diagnostics.push(Diagnostic::new(
                LintCode::StaleCheckpoint,
                subject.to_owned(),
                format!(
                    "event log records checkpoint-{verb}:{used} with no prior \
                     checkpoint-key event — the boot prefix cannot be tied to \
                     the run's configuration"
                ),
            )),
            Some(want) if want != used => diagnostics.push(Diagnostic::new(
                LintCode::StaleCheckpoint,
                subject.to_owned(),
                format!(
                    "checkpoint-{verb} used key {used} but the run's \
                     configuration hashes to checkpoint key {want} — stale \
                     checkpoint (input changed since it was saved?)"
                ),
            )),
            Some(_) => {}
        }
    }
}

/// Scans a run's event log for session-resume divergence (SA0018): every
/// `remote-ack:<delivery>:g<generation>` must pair with a prior
/// `remote-dispatch` of the *same* delivery under the *same* generation,
/// and no delivery may be acked under two different generations. A
/// resumed session acking a delivery the coordinator never dispatched,
/// or the same delivery acked by two worker generations, is the
/// split-brain signature: two incarnations of one session both believed
/// they owned the work, so the run's recorded output cannot be
/// attributed to a single delivery.
pub(crate) fn lint_session_resume(doc: &Value, subject: &str, diagnostics: &mut Vec<Diagnostic>) {
    let mut dispatched: Vec<(&str, &str)> = Vec::new();
    let mut acked: Vec<(&str, &str)> = Vec::new();
    for event in doc.at("events").and_then(Value::as_array).unwrap_or(&[]) {
        let Some(event) = event.as_str() else {
            continue;
        };
        if let Some(dispatch) = event.strip_prefix("remote-dispatch:") {
            if let Some(pair) = dispatch.split_once(":g") {
                dispatched.push(pair);
            }
        } else if let Some(ack) = event.strip_prefix("remote-ack:") {
            let Some((delivery, generation)) = ack.split_once(":g") else {
                continue;
            };
            if !dispatched.contains(&(delivery, generation)) {
                diagnostics.push(Diagnostic::new(
                    LintCode::SessionResumeDivergence,
                    subject.to_owned(),
                    format!(
                        "remote-ack for delivery {delivery} under worker \
                         generation {generation} has no matching \
                         remote-dispatch — a resumed session acked work the \
                         coordinator never handed it (split-brain?)"
                    ),
                ));
            }
            if let Some(&(_, earlier)) = acked
                .iter()
                .find(|(d, g)| *d == delivery && *g != generation)
            {
                diagnostics.push(Diagnostic::new(
                    LintCode::SessionResumeDivergence,
                    subject.to_owned(),
                    format!(
                        "delivery {delivery} was acked under two worker \
                         generations ({earlier} and {generation}) — two \
                         incarnations of the session both completed the same \
                         delivery (split-brain)"
                    ),
                ));
            }
            acked.push((delivery, generation));
        }
    }
}

/// Scans `<dir>/blobs/` for content-hash mismatches (SA0005): every
/// non-`.tmp` file must hash to its own file name, because the store is
/// content-addressed. `Database::load` silently drops offenders; the
/// lint makes that loud.
pub(crate) fn scan_blob_files(dir: &Path) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    let blob_dir = dir.join("blobs");
    let Ok(entries) = std::fs::read_dir(&blob_dir) else {
        return diagnostics;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if !path.is_file() || path.extension().is_some_and(|e| e == "tmp") {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        let subject = format!("blob:{name}");
        if BlobKey::from_hex(&name).is_none() {
            diagnostics.push(Diagnostic::new(
                LintCode::HashMismatch,
                subject,
                "file name in blobs/ is not a blob key".to_owned(),
            ));
            continue;
        }
        let Ok(content) = std::fs::read(&path) else {
            diagnostics.push(Diagnostic::new(
                LintCode::HashMismatch,
                subject,
                "blob file is unreadable".to_owned(),
            ));
            continue;
        };
        let actual = BlobKey::for_content(&content).to_hex();
        if actual != name {
            diagnostics.push(Diagnostic::new(
                LintCode::HashMismatch,
                subject,
                format!("blob content hashes to {actual}, not to its file name"),
            ));
        }
    }
    diagnostics
}

/// The collection a raw journal record touches, if any (blob records
/// touch none).
fn op_collection(op: &simart_db::JournalOp) -> Option<&str> {
    match op {
        simart_db::JournalOp::Insert { collection, .. }
        | simart_db::JournalOp::Upsert { collection, .. }
        | simart_db::JournalOp::Delete { collection, .. }
        | simart_db::JournalOp::DropCollection { collection }
        | simart_db::JournalOp::EnsureIndex { collection, .. } => Some(collection),
        simart_db::JournalOp::BlobPut { .. } | simart_db::JournalOp::BlobRemove { .. } => None,
    }
}

/// Derives journal-layout findings from what the load observed:
/// SA0012 for records (or a torn tail) not yet folded into checkpoint
/// files — discounting `state_records` analysis-state residents —
/// SA0013 for checkpoint/journal disagreement about one `_id`.
pub(crate) fn journal_report_diagnostics(
    report: &LoadReport,
    state_records: usize,
) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    let records = report.journal_records.saturating_sub(state_records);
    if records > 0 {
        diagnostics.push(Diagnostic::new(
            LintCode::UnreplayedJournal,
            "journal:log",
            format!(
                "journal holds {records} record(s) not folded into the checkpoint files; \
                 the owning campaign did not finish (or never ran) its checkpoint"
            ),
        ));
    }
    if report.journal_torn_bytes > 0 {
        diagnostics.push(Diagnostic::new(
            LintCode::UnreplayedJournal,
            "journal:tail",
            format!(
                "journal ends in a torn tail of {} byte(s) (interrupted append); \
                 records before the tear replay cleanly",
                report.journal_torn_bytes
            ),
        ));
    }
    for subject in &report.divergent {
        // `collection/#index:path` markers are index-rebuild failures,
        // not document collisions — they fire as SA0017.
        if let Some((collection, path)) = subject.split_once("/#index:") {
            diagnostics.push(Diagnostic::new(
                LintCode::IndexDivergence,
                format!("collection:{collection}"),
                format!(
                    "declared index on `{path}` could not be rebuilt from the loaded \
                     documents (they no longer satisfy its constraints)"
                ),
            ));
            continue;
        }
        diagnostics.push(Diagnostic::new(
            LintCode::JournalDivergence,
            format!("journal:{subject}"),
            "journal insert collides with a checkpoint document of different content; \
             the journal version wins on replay"
                .to_owned(),
        ));
    }
    diagnostics
}
