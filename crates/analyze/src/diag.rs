//! Diagnostics: stable lint codes, severities, lint-level overrides,
//! and text/JSON rendering.

use simart_db::{json, Value};
use std::collections::HashSet;
use std::fmt;

/// How bad a finding is. [`Severity::Error`] findings make `simart
/// check` exit non-zero; [`Severity::Warning`] findings do so only
/// under `--deny warnings` (or a per-code `--deny`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not provably broken provenance.
    Warning,
    /// Broken provenance: the database cannot be fully reproduced or
    /// trusted as recorded.
    Error,
}

impl Severity {
    /// The lowercase display name ("warning" / "error").
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Every lint the analysis layer can emit, with a stable `SAxxxx` code.
///
/// Codes are part of the tool's interface: scripts grep for them and
/// `--deny`/`--allow` address them, so codes are never renumbered —
/// retired lints leave holes. `SA00xx` are static provenance lints;
/// `SA01xx` are dynamic-analysis findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// SA0001: a run document references an artifact id that is not in
    /// the artifact collection.
    DanglingArtifactRef,
    /// SA0002: the artifact dependency graph contains a cycle.
    ArtifactCycle,
    /// SA0003: an artifact input references an id that no artifact
    /// document declares (an orphaned DAG node).
    OrphanArtifactInput,
    /// SA0004: a document references a blob key absent from the blob
    /// store (or unparseable).
    MissingBlob,
    /// SA0005: an on-disk blob file's content does not hash to its
    /// file name; `Database::load` silently discards such blobs.
    HashMismatch,
    /// SA0006: a run's provenance event log violates the lifecycle
    /// transition rules (including a terminal status written twice).
    LifecycleViolation,
    /// SA0007: a run entered `Retrying` with no prior failed attempt on
    /// record.
    RetryWithoutFailure,
    /// SA0008: two artifact documents share a content hash — they
    /// should have deduplicated to one registration.
    DuplicateArtifact,
    /// SA0009: two run documents share a run hash — the second should
    /// have been refused as a duplicate experiment.
    DuplicateRunHash,
    /// SA0010: an experiment cross-product resource axis names a
    /// resource absent from the catalog.
    UnknownResource,
    /// SA0011: a run document's `status` field disagrees with a replay
    /// of its event log.
    StatusEventMismatch,
    /// SA0012: the database directory holds journal records (or a torn
    /// journal tail) not yet folded into the checkpoint files — the
    /// campaign that owned it did not finish its checkpoint.
    UnreplayedJournal,
    /// SA0013: a journal insert collides with a checkpoint document of
    /// different content — the checkpoint and the write-ahead journal
    /// disagree about the same `_id`.
    JournalDivergence,
    /// SA0014: a quarantine record is out of sync with its run — the
    /// unreleased dead letter's run is missing, or the run's status is
    /// not `quarantined` (it was re-queued without a release, so its
    /// results may rest on a run the supervisor gave up on).
    QuarantinedRunReferenced,
    /// SA0015: a run's event log records a remote dispatch to a worker
    /// generation that never acked and was never re-delivered,
    /// re-queued, or quarantined — the attempt was orphaned by a
    /// coordinator crash, so the run's recorded status cannot be
    /// trusted to reflect its last delivery.
    OrphanedRemoteAttempt,
    /// SA0016: a run's event log records a checkpoint restore or save
    /// whose content-addressed key disagrees with the `checkpoint-key`
    /// the run's own configuration hashes to — the boot prefix the run
    /// actually used was built from a *different* input, so its results
    /// cannot be attributed to the recorded configuration.
    StaleCheckpoint,
    /// SA0017: a declared secondary index disagrees with the documents
    /// it covers — an entry points at a missing or non-matching
    /// document, a document is missing from its index, or the persisted
    /// index manifest does not match a rebuild from the checkpoint.
    /// Indexes are derived state; divergence means the database was
    /// hand-edited (or a write path has a bug), and queries planned
    /// through the index may silently miss documents.
    IndexDivergence,
    /// SA0018: a run's remote-delivery journal shows a resumed worker
    /// session diverging from the coordinator — an ack for a delivery
    /// the coordinator never dispatched, or the same delivery acked
    /// under two different generations. Either is the signature of a
    /// split-brain resume: two incarnations of a session both believe
    /// they own the delivery.
    SessionResumeDivergence,
    /// SA0101: the race detector found conflicting unsynchronized
    /// accesses in a recorded trace.
    DataRace,
}

/// All lint codes, in code order.
pub const ALL_CODES: &[LintCode] = &[
    LintCode::DanglingArtifactRef,
    LintCode::ArtifactCycle,
    LintCode::OrphanArtifactInput,
    LintCode::MissingBlob,
    LintCode::HashMismatch,
    LintCode::LifecycleViolation,
    LintCode::RetryWithoutFailure,
    LintCode::DuplicateArtifact,
    LintCode::DuplicateRunHash,
    LintCode::UnknownResource,
    LintCode::StatusEventMismatch,
    LintCode::UnreplayedJournal,
    LintCode::JournalDivergence,
    LintCode::QuarantinedRunReferenced,
    LintCode::OrphanedRemoteAttempt,
    LintCode::StaleCheckpoint,
    LintCode::IndexDivergence,
    LintCode::SessionResumeDivergence,
    LintCode::DataRace,
];

impl LintCode {
    /// The stable code string, e.g. `"SA0001"`.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::DanglingArtifactRef => "SA0001",
            LintCode::ArtifactCycle => "SA0002",
            LintCode::OrphanArtifactInput => "SA0003",
            LintCode::MissingBlob => "SA0004",
            LintCode::HashMismatch => "SA0005",
            LintCode::LifecycleViolation => "SA0006",
            LintCode::RetryWithoutFailure => "SA0007",
            LintCode::DuplicateArtifact => "SA0008",
            LintCode::DuplicateRunHash => "SA0009",
            LintCode::UnknownResource => "SA0010",
            LintCode::StatusEventMismatch => "SA0011",
            LintCode::UnreplayedJournal => "SA0012",
            LintCode::JournalDivergence => "SA0013",
            LintCode::QuarantinedRunReferenced => "SA0014",
            LintCode::OrphanedRemoteAttempt => "SA0015",
            LintCode::StaleCheckpoint => "SA0016",
            LintCode::IndexDivergence => "SA0017",
            LintCode::SessionResumeDivergence => "SA0018",
            LintCode::DataRace => "SA0101",
        }
    }

    /// The kebab-case lint name, e.g. `"dangling-artifact-ref"`.
    pub fn name(self) -> &'static str {
        match self {
            LintCode::DanglingArtifactRef => "dangling-artifact-ref",
            LintCode::ArtifactCycle => "artifact-cycle",
            LintCode::OrphanArtifactInput => "orphan-artifact-input",
            LintCode::MissingBlob => "missing-blob",
            LintCode::HashMismatch => "hash-mismatch",
            LintCode::LifecycleViolation => "lifecycle-violation",
            LintCode::RetryWithoutFailure => "retry-without-failure",
            LintCode::DuplicateArtifact => "duplicate-artifact",
            LintCode::DuplicateRunHash => "duplicate-run-hash",
            LintCode::UnknownResource => "unknown-resource",
            LintCode::StatusEventMismatch => "status-event-mismatch",
            LintCode::UnreplayedJournal => "unreplayed-journal",
            LintCode::JournalDivergence => "journal-divergence",
            LintCode::QuarantinedRunReferenced => "quarantined-run-referenced",
            LintCode::OrphanedRemoteAttempt => "orphaned-remote-attempt",
            LintCode::StaleCheckpoint => "stale-checkpoint",
            LintCode::IndexDivergence => "index-divergence",
            LintCode::SessionResumeDivergence => "session-resume-divergence",
            LintCode::DataRace => "data-race",
        }
    }

    /// The severity a finding has unless overridden by [`LintLevels`].
    pub fn default_severity(self) -> Severity {
        match self {
            LintCode::RetryWithoutFailure
            | LintCode::DuplicateArtifact
            | LintCode::DuplicateRunHash
            | LintCode::StatusEventMismatch
            | LintCode::UnreplayedJournal
            | LintCode::OrphanedRemoteAttempt
            | LintCode::StaleCheckpoint => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// Parses a user-supplied lint spec: a code (`SA0004`, case
    /// insensitive) or a lint name (`missing-blob`).
    pub fn from_spec(spec: &str) -> Option<LintCode> {
        let upper = spec.to_ascii_uppercase();
        ALL_CODES
            .iter()
            .copied()
            .find(|c| c.code() == upper || c.name() == spec)
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.code(), self.name())
    }
}

/// One finding: a lint code, its (possibly overridden) severity, the
/// provenance object it is about, and a human-readable message.
///
/// `Ord` is the *report order* — code, then subject, then message
/// (severity only as a final tiebreak) — defined here once so every
/// consumer (text reports, JSON reports, the incremental-vs-full-scan
/// equivalence tests) sorts identically by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub code: LintCode,
    /// Effective severity (defaults from the code; [`LintLevels`] may
    /// promote it).
    pub severity: Severity,
    /// The object the finding is about, e.g. `run:<uuid>`,
    /// `artifact:<uuid>`, `blob:<hex>`, `axis:<name>`, `object:<id>`.
    pub subject: String,
    /// What is wrong.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic at the code's default severity.
    pub fn new(code: LintCode, subject: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.default_severity(),
            subject: subject.into(),
            message: message.into(),
        }
    }
}

impl Ord for Diagnostic {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.code, &self.subject, &self.message, self.severity).cmp(&(
            other.code,
            &other.subject,
            &other.message,
            other.severity,
        ))
    }
}

impl PartialOrd for Diagnostic {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {} ({})",
            self.severity,
            self.code.code(),
            self.code.name(),
            self.message,
            self.subject
        )
    }
}

/// The `--deny`/`--allow` lint-level table.
///
/// `allow` suppresses a lint entirely; `deny` promotes it to
/// [`Severity::Error`]; `deny warnings` promotes every warning. An
/// explicit per-code `allow` wins over `deny warnings`.
#[derive(Debug, Clone, Default)]
pub struct LintLevels {
    deny_warnings: bool,
    denied: HashSet<LintCode>,
    allowed: HashSet<LintCode>,
}

impl LintLevels {
    /// An empty table: every lint at its default severity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a `--deny` spec (`warnings`, a code, or a lint name).
    ///
    /// # Errors
    ///
    /// Returns the unrecognized spec.
    pub fn deny(&mut self, spec: &str) -> Result<(), String> {
        if spec == "warnings" {
            self.deny_warnings = true;
            return Ok(());
        }
        let code = LintCode::from_spec(spec).ok_or_else(|| format!("unknown lint '{spec}'"))?;
        self.denied.insert(code);
        self.allowed.remove(&code);
        Ok(())
    }

    /// Registers an `--allow` spec (a code or a lint name).
    ///
    /// # Errors
    ///
    /// Returns the unrecognized spec.
    pub fn allow(&mut self, spec: &str) -> Result<(), String> {
        let code = LintCode::from_spec(spec).ok_or_else(|| format!("unknown lint '{spec}'"))?;
        self.allowed.insert(code);
        self.denied.remove(&code);
        Ok(())
    }

    /// Applies the table: drops allowed findings, promotes denied ones,
    /// and returns the rest sorted deterministically.
    pub fn apply(&self, diagnostics: Vec<Diagnostic>) -> Vec<Diagnostic> {
        let mut kept: Vec<Diagnostic> = diagnostics
            .into_iter()
            .filter(|d| !self.allowed.contains(&d.code))
            .map(|mut d| {
                if self.denied.contains(&d.code)
                    || (self.deny_warnings && d.severity == Severity::Warning)
                {
                    d.severity = Severity::Error;
                }
                d
            })
            .collect();
        sort_diagnostics(&mut kept);
        kept
    }
}

/// Sorts diagnostics into the stable report order — the total order
/// [`Diagnostic`]'s `Ord` defines (code, then subject, then message).
pub fn sort_diagnostics(diagnostics: &mut [Diagnostic]) {
    diagnostics.sort();
}

/// Returns the findings in report order without mutating the caller's
/// slice — how the renderers enforce determinism by construction.
fn in_report_order(diagnostics: &[Diagnostic]) -> Vec<Diagnostic> {
    let mut ordered = diagnostics.to_vec();
    sort_diagnostics(&mut ordered);
    ordered
}

/// Whether any finding is at [`Severity::Error`].
pub fn has_errors(diagnostics: &[Diagnostic]) -> bool {
    diagnostics.iter().any(|d| d.severity == Severity::Error)
}

/// Renders the human-readable report, one finding per line, with a
/// trailing summary line. Findings are emitted in report order
/// regardless of input order.
pub fn render_text(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in in_report_order(diagnostics) {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    let errors = diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diagnostics.len() - errors;
    out.push_str(&format!(
        "check: {errors} error{}, {warnings} warning{}\n",
        if errors == 1 { "" } else { "s" },
        if warnings == 1 { "" } else { "s" },
    ));
    out
}

/// Renders the machine-readable report as a JSON array of findings,
/// in report order regardless of input order.
pub fn render_json(diagnostics: &[Diagnostic]) -> String {
    let items = in_report_order(diagnostics).into_iter().map(|d| {
        Value::map([
            ("code", Value::from(d.code.code())),
            ("name", Value::from(d.code.name())),
            ("severity", Value::from(d.severity.as_str())),
            ("subject", Value::from(d.subject.clone())),
            ("message", Value::from(d.message.clone())),
        ])
    });
    json::to_json(&Value::array(items))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_and_names_are_stable_and_unique() {
        let codes: HashSet<&str> = ALL_CODES.iter().map(|c| c.code()).collect();
        let names: HashSet<&str> = ALL_CODES.iter().map(|c| c.name()).collect();
        assert_eq!(codes.len(), ALL_CODES.len());
        assert_eq!(names.len(), ALL_CODES.len());
        assert_eq!(LintCode::from_spec("SA0004"), Some(LintCode::MissingBlob));
        assert_eq!(LintCode::from_spec("sa0004"), Some(LintCode::MissingBlob));
        assert_eq!(
            LintCode::from_spec("missing-blob"),
            Some(LintCode::MissingBlob)
        );
        assert_eq!(LintCode::from_spec("no-such-lint"), None);
    }

    #[test]
    fn levels_allow_deny_and_promote() {
        let mut levels = LintLevels::new();
        levels.deny("warnings").unwrap();
        levels.allow("duplicate-artifact").unwrap();
        levels.deny("SA0009").unwrap();
        assert!(levels.deny("bogus").is_err());
        let diags = vec![
            Diagnostic::new(LintCode::DuplicateArtifact, "hash:x", "dup"),
            Diagnostic::new(LintCode::DuplicateRunHash, "hash:y", "dup run"),
            Diagnostic::new(LintCode::RetryWithoutFailure, "run:z", "retry"),
        ];
        let out = levels.apply(diags);
        assert_eq!(out.len(), 2, "allowed lint dropped");
        assert!(
            out.iter().all(|d| d.severity == Severity::Error),
            "warnings promoted"
        );
    }

    #[test]
    fn renderers_sort_by_construction() {
        // Deliberately out of order: same code, subjects reversed, plus
        // a lower code last. Both renderers must emit report order
        // without the caller sorting first.
        let diags = vec![
            Diagnostic::new(LintCode::MissingBlob, "run:b", "z message"),
            Diagnostic::new(LintCode::MissingBlob, "run:b", "a message"),
            Diagnostic::new(LintCode::MissingBlob, "run:a", "m message"),
            Diagnostic::new(LintCode::DanglingArtifactRef, "run:z", "dangles"),
        ];
        let text = render_text(&diags);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("SA0001"));
        assert!(lines[1].contains("run:a"));
        assert!(lines[2].contains("a message"));
        assert!(lines[3].contains("z message"));
        let json = render_json(&diags);
        let a = json.find("\"SA0001\"").unwrap();
        let b = json.find("a message").unwrap();
        let c = json.find("z message").unwrap();
        assert!(a < b && b < c, "json respects report order");
        // Ord agrees with sort_diagnostics.
        let mut sorted = diags.clone();
        sort_diagnostics(&mut sorted);
        let mut via_ord = diags;
        via_ord.sort();
        assert_eq!(sorted, via_ord);
    }

    #[test]
    fn rendering_is_deterministic() {
        let mut diags = vec![
            Diagnostic::new(LintCode::MissingBlob, "artifact:b", "gone"),
            Diagnostic::new(LintCode::DanglingArtifactRef, "run:a", "dangles"),
        ];
        sort_diagnostics(&mut diags);
        assert_eq!(diags[0].code, LintCode::DanglingArtifactRef);
        let text = render_text(&diags);
        assert!(text.contains("error[SA0001]"));
        assert!(text.contains("2 errors, 0 warnings"));
        let json = render_json(&diags);
        assert!(json.contains("\"SA0004\""));
        assert!(json.contains("\"missing-blob\""));
        assert!(has_errors(&diags));
    }
}
