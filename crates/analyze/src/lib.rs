//! # simart-analyze
//!
//! The analysis layer: static provenance linting and dynamic race
//! detection for simart databases and schedulers.
//!
//! The rest of the workspace *records* provenance (artifacts, runs,
//! lifecycle events) the way the gem5art paper prescribes; this crate
//! *audits* it. Two engines:
//!
//! * **[`lint`]** — a read-only pass over a [`simart_db::Database`]
//!   (in memory or on disk) emitting typed, severity-ranked
//!   [`diag::Diagnostic`]s with stable `SAxxxx` codes: dangling
//!   references, DAG cycles/orphans, missing or tampered blobs,
//!   lifecycle event-log violations, missed deduplication.
//!   [`prelaunch`] extends the same reporting to experiment
//!   cross-products before any simulation is launched.
//! * **[`race`]** — a vector-clock happens-before checker replaying
//!   [`tracepoint`] event traces recorded by the instrumented sync
//!   shims and `simart-tasks`, flagging unsynchronized conflicting
//!   accesses. Instrumentation is compile-time gated (`race-detect`
//!   feature → `tracepoint/enabled`): production builds record
//!   nothing and pay nothing.
//!
//! Both engines ship self-tests (`lint::self_test`,
//! `race::self_test`) wired into `simart check --self-test` so CI
//! proves the detectors actually detect.

#![deny(missing_docs)]

pub mod diag;
pub mod engine;
pub mod lint;
mod lints;
pub mod prelaunch;
pub mod race;

pub use diag::{Diagnostic, LintCode, LintLevels, Severity};
pub use engine::{campaign_check, check_dir_incremental, record_state, CheckOutcome, Engine};
