//! The provenance linter: a read-only pass over a simart database that
//! cross-checks artifacts, runs, blobs, and event logs against the
//! invariants the write paths are supposed to maintain.
//!
//! The write paths (`ArtifactRegistry`, `RunStore`) enforce these
//! invariants going *forward*; the linter re-derives them over data at
//! rest, so hand-edits, partial saves, version skew, and plain bugs
//! surface as typed [`Diagnostic`]s instead of silent corruption — the
//! static half of the paper's "trust the provenance you recorded"
//! story.

use crate::diag::{sort_diagnostics, Diagnostic, LintCode};
use simart_artifact::dag::{DependencyGraph, GraphIssue};
use simart_artifact::Uuid;
use simart_db::{BlobKey, Database, DbError, LoadOptions, LoadReport, Value};
use simart_run::RunStatus;
use std::collections::{HashMap, HashSet};
use std::path::Path;

/// Lints an in-memory database, returning all findings sorted in the
/// stable report order. Read-only: looks only at collections that
/// already exist.
pub fn lint_database(db: &Database) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    let artifact_ids = lint_artifacts(db, &mut diagnostics);
    lint_runs(db, &artifact_ids, &mut diagnostics);
    lint_quarantine(db, &mut diagnostics);
    sort_diagnostics(&mut diagnostics);
    diagnostics
}

/// Lints a database directory on disk: loads it (checkpoint + journal
/// replay), runs [`lint_database`], scans `blobs/` for files whose
/// content does not hash to their file name (SA0005) — exactly the
/// blobs a lenient `Database::load` discards — and inspects the journal
/// state the load reported (SA0012 unreplayed-journal, SA0013
/// journal-divergence).
///
/// # Errors
///
/// Propagates load failures (missing directory, corrupt JSONL).
pub fn lint_dir(dir: &Path) -> Result<Vec<Diagnostic>, DbError> {
    // Lenient load: the linter's job is to *report* damage, so corrupt
    // documents must not abort the whole pass (SA0005/SA0012/SA0013
    // findings describe them instead).
    let (db, report) = Database::load_with(dir, &LoadOptions::default())?;
    let mut diagnostics = lint_database(&db);
    diagnostics.extend(scan_blob_files(dir));
    diagnostics.extend(journal_diagnostics(&report));
    sort_diagnostics(&mut diagnostics);
    Ok(diagnostics)
}

/// Derives journal-layout findings from what the load observed:
/// SA0012 for records (or a torn tail) not yet folded into checkpoint
/// files, SA0013 for checkpoint/journal disagreement about one `_id`.
fn journal_diagnostics(report: &LoadReport) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    if report.journal_records > 0 {
        diagnostics.push(Diagnostic::new(
            LintCode::UnreplayedJournal,
            "journal:log",
            format!(
                "journal holds {} record(s) not folded into the checkpoint files; \
                 the owning campaign did not finish (or never ran) its checkpoint",
                report.journal_records
            ),
        ));
    }
    if report.journal_torn_bytes > 0 {
        diagnostics.push(Diagnostic::new(
            LintCode::UnreplayedJournal,
            "journal:tail",
            format!(
                "journal ends in a torn tail of {} byte(s) (interrupted append); \
                 records before the tear replay cleanly",
                report.journal_torn_bytes
            ),
        ));
    }
    for subject in &report.divergent {
        diagnostics.push(Diagnostic::new(
            LintCode::JournalDivergence,
            format!("journal:{subject}"),
            "journal insert collides with a checkpoint document of different content; \
             the journal version wins on replay"
                .to_owned(),
        ));
    }
    diagnostics
}

/// Lints every artifact document; returns the set of declared artifact
/// ids so the run pass can resolve references.
fn lint_artifacts(db: &Database, diagnostics: &mut Vec<Diagnostic>) -> HashSet<String> {
    let mut ids = HashSet::new();
    if !db.has_collection("artifacts") {
        return ids;
    }
    let docs = db.collection("artifacts").all();
    for doc in &docs {
        if let Some(id) = doc.at("_id").and_then(Value::as_str) {
            ids.insert(id.to_owned());
        }
    }

    let mut graph = DependencyGraph::new();
    let mut by_hash: HashMap<String, Vec<String>> = HashMap::new();
    for doc in &docs {
        let Some(id) = doc.at("_id").and_then(Value::as_str) else { continue };
        let subject = format!("artifact:{id}");
        let Ok(uuid) = id.parse::<Uuid>() else {
            diagnostics.push(Diagnostic::new(
                LintCode::OrphanArtifactInput,
                subject,
                format!("artifact id '{id}' is not a valid uuid"),
            ));
            continue;
        };
        graph.add_node(uuid);
        for input in doc.at("inputs").and_then(Value::as_array).unwrap_or(&[]) {
            let Some(input) = input.as_str() else { continue };
            match input.parse::<Uuid>() {
                Ok(input_id) => graph.add_edge_unchecked(input_id, uuid),
                Err(_) => diagnostics.push(Diagnostic::new(
                    LintCode::OrphanArtifactInput,
                    subject.clone(),
                    format!("input '{input}' is not a valid uuid"),
                )),
            }
        }
        if let Some(payload) = doc.at("payload").and_then(Value::as_str) {
            check_blob_ref(db, &subject, payload, diagnostics);
        }
        if let Some(hash) = doc.at("hash").and_then(Value::as_str) {
            by_hash.entry(hash.to_owned()).or_default().push(id.to_owned());
        }
    }

    for issue in graph.validate() {
        match issue {
            GraphIssue::Cycle { members } => {
                let names: Vec<String> = members.iter().map(Uuid::to_string).collect();
                diagnostics.push(Diagnostic::new(
                    LintCode::ArtifactCycle,
                    format!("artifact:{}", names[0]),
                    format!("artifact dependency cycle through [{}]", names.join(", ")),
                ));
            }
            GraphIssue::Orphan { node, referenced_by } => {
                let refs: Vec<String> = referenced_by.iter().map(Uuid::to_string).collect();
                diagnostics.push(Diagnostic::new(
                    LintCode::OrphanArtifactInput,
                    format!("artifact:{node}"),
                    format!(
                        "input {node} is referenced by [{}] but no artifact document declares it",
                        refs.join(", ")
                    ),
                ));
            }
        }
    }

    for (hash, dup_ids) in by_hash {
        if dup_ids.len() > 1 {
            let mut dup_ids = dup_ids;
            dup_ids.sort();
            diagnostics.push(Diagnostic::new(
                LintCode::DuplicateArtifact,
                format!("hash:{hash}"),
                format!(
                    "artifacts [{}] share content hash {hash} but were not deduplicated",
                    dup_ids.join(", ")
                ),
            ));
        }
    }
    ids
}

/// Lints every run document: reference resolution, blob refs, event-log
/// replay, and run-hash dedup.
fn lint_runs(db: &Database, artifact_ids: &HashSet<String>, diagnostics: &mut Vec<Diagnostic>) {
    if !db.has_collection("runs") {
        return;
    }
    let docs = db.collection("runs").all();
    let mut by_hash: HashMap<String, Vec<String>> = HashMap::new();
    for doc in &docs {
        let id = doc.at("_id").and_then(Value::as_str).unwrap_or("<missing _id>");
        let subject = format!("run:{id}");

        for input in doc.at("inputs").and_then(Value::as_array).unwrap_or(&[]) {
            let Some(input) = input.as_str() else { continue };
            if !artifact_ids.contains(input) {
                diagnostics.push(Diagnostic::new(
                    LintCode::DanglingArtifactRef,
                    subject.clone(),
                    format!("input artifact {input} is not in the artifact collection"),
                ));
            }
        }
        if let Some(payload) = doc.at("results.payload").and_then(Value::as_str) {
            check_blob_ref(db, &subject, payload, diagnostics);
        }
        if let Some(hash) = doc.at("hash").and_then(Value::as_str) {
            by_hash.entry(hash.to_owned()).or_default().push(id.to_owned());
        }
        replay_events(doc, &subject, diagnostics);
        lint_remote_attempts(doc, &subject, diagnostics);
    }
    for (hash, dup_ids) in by_hash {
        if dup_ids.len() > 1 {
            let mut dup_ids = dup_ids;
            dup_ids.sort();
            diagnostics.push(Diagnostic::new(
                LintCode::DuplicateRunHash,
                format!("hash:{hash}"),
                format!(
                    "runs [{}] share run hash {hash}; duplicate experiments should be refused",
                    dup_ids.join(", ")
                ),
            ));
        }
    }
}

/// Cross-checks the dead-letter quarantine against the run collection
/// (SA0014): an unreleased dead letter must point at an existing run
/// whose status is `quarantined`. A missing run means results were
/// deleted out from under the quarantine; any other status means the
/// run was re-queued behind the supervisor's back, so its results may
/// rest on a run the supervisor gave up on. Released dead letters are
/// history, not constraints.
fn lint_quarantine(db: &Database, diagnostics: &mut Vec<Diagnostic>) {
    if !db.has_collection("quarantine") {
        return;
    }
    for doc in db.collection("quarantine").all() {
        let Some(id) = doc.at("_id").and_then(Value::as_str) else { continue };
        if doc.at("released").and_then(Value::as_bool).unwrap_or(false) {
            continue;
        }
        let subject = format!("run:{id}");
        match db.collection("runs").get(id) {
            None => diagnostics.push(Diagnostic::new(
                LintCode::QuarantinedRunReferenced,
                subject,
                "unreleased dead letter references a run missing from the run collection"
                    .to_owned(),
            )),
            Some(run) => {
                let status = run.at("status").and_then(Value::as_str).unwrap_or("<missing>");
                if status != "quarantined" {
                    diagnostics.push(Diagnostic::new(
                        LintCode::QuarantinedRunReferenced,
                        subject,
                        format!(
                            "run has an unreleased dead letter but status '{status}' \
                             (re-queued without `simart quarantine --release`?)"
                        ),
                    ));
                }
            }
        }
    }
}

/// Replays a run's provenance event log against the lifecycle rules:
/// every `status:` event must be a legal transition from the replayed
/// state (SA0006), `retrying` needs a prior failed attempt (SA0007),
/// and the document's `status` field must match the replay (SA0011).
fn replay_events(doc: &Value, subject: &str, diagnostics: &mut Vec<Diagnostic>) {
    let mut current = RunStatus::Created;
    let mut saw_failed_attempt = false;
    for event in doc.at("events").and_then(Value::as_array).unwrap_or(&[]) {
        let Some(event) = event.as_str() else { continue };
        if let Some(status) = event.strip_prefix("status:") {
            let Ok(next) = status.parse::<RunStatus>() else {
                diagnostics.push(Diagnostic::new(
                    LintCode::LifecycleViolation,
                    subject.to_owned(),
                    format!("event log names unknown status '{status}'"),
                ));
                continue;
            };
            if !current.can_transition_to(next) {
                diagnostics.push(Diagnostic::new(
                    LintCode::LifecycleViolation,
                    subject.to_owned(),
                    format!("event log records illegal transition {current} -> {next}"),
                ));
            }
            if next == RunStatus::Retrying && !saw_failed_attempt {
                diagnostics.push(Diagnostic::new(
                    LintCode::RetryWithoutFailure,
                    subject.to_owned(),
                    "run entered retrying with no prior failed attempt on record".to_owned(),
                ));
            }
            current = next;
        } else if let Some(attempt) = event.strip_prefix("attempt:") {
            if !attempt.ends_with(":succeeded") {
                saw_failed_attempt = true;
            }
        }
    }
    if let Some(status) = doc.at("status").and_then(Value::as_str) {
        if status.parse::<RunStatus>().ok() != Some(current) {
            diagnostics.push(Diagnostic::new(
                LintCode::StatusEventMismatch,
                subject.to_owned(),
                format!(
                    "document status '{status}' disagrees with event-log replay '{current}'"
                ),
            ));
        }
    }
}

/// Scans a run's event log for orphaned remote attempts (SA0015): a
/// `remote-dispatch:<delivery>:g<generation>` that is never followed
/// by a `remote-ack`, another dispatch (a redelivery supersedes the
/// orphan), a quarantine, or a re-queue. Such a run was dispatched to
/// a worker whose answer the coordinator never journaled — the
/// signature of a coordinator crash mid-campaign — so its recorded
/// status may not reflect its last delivery.
fn lint_remote_attempts(doc: &Value, subject: &str, diagnostics: &mut Vec<Diagnostic>) {
    let mut open: Option<&str> = None;
    for event in doc.at("events").and_then(Value::as_array).unwrap_or(&[]) {
        let Some(event) = event.as_str() else { continue };
        if let Some(dispatch) = event.strip_prefix("remote-dispatch:") {
            open = Some(dispatch);
        } else if event.starts_with("remote-ack:")
            || event == "status:queued"
            || event == "status:quarantined"
        {
            open = None;
        }
    }
    if let Some(dispatch) = open {
        let (delivery, generation) = dispatch.split_once(":g").unwrap_or((dispatch, "?"));
        diagnostics.push(Diagnostic::new(
            LintCode::OrphanedRemoteAttempt,
            subject.to_owned(),
            format!(
                "last remote dispatch (delivery {delivery} to worker generation \
                 {generation}) was never acked, re-delivered, or quarantined — \
                 orphaned by a coordinator crash?"
            ),
        ));
    }
}

/// Checks one blob-key reference against the in-memory blob store
/// (SA0004 for unparseable keys and for keys absent from the store).
fn check_blob_ref(db: &Database, subject: &str, hex: &str, diagnostics: &mut Vec<Diagnostic>) {
    match BlobKey::from_hex(hex) {
        None => diagnostics.push(Diagnostic::new(
            LintCode::MissingBlob,
            subject.to_owned(),
            format!("payload reference '{hex}' is not a valid blob key"),
        )),
        Some(key) if !db.blobs().contains(key) => diagnostics.push(Diagnostic::new(
            LintCode::MissingBlob,
            subject.to_owned(),
            format!("payload blob {hex} is not in the blob store"),
        )),
        Some(_) => {}
    }
}

/// Scans `<dir>/blobs/` for content-hash mismatches (SA0005): every
/// non-`.tmp` file must hash to its own file name, because the store is
/// content-addressed. `Database::load` silently drops offenders; the
/// lint makes that loud.
fn scan_blob_files(dir: &Path) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    let blob_dir = dir.join("blobs");
    let Ok(entries) = std::fs::read_dir(&blob_dir) else {
        return diagnostics;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if !path.is_file() || path.extension().is_some_and(|e| e == "tmp") {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        let subject = format!("blob:{name}");
        if BlobKey::from_hex(&name).is_none() {
            diagnostics.push(Diagnostic::new(
                LintCode::HashMismatch,
                subject,
                "file name in blobs/ is not a blob key".to_owned(),
            ));
            continue;
        }
        let Ok(content) = std::fs::read(&path) else {
            diagnostics.push(Diagnostic::new(
                LintCode::HashMismatch,
                subject,
                "blob file is unreadable".to_owned(),
            ));
            continue;
        };
        let actual = BlobKey::for_content(&content).to_hex();
        if actual != name {
            diagnostics.push(Diagnostic::new(
                LintCode::HashMismatch,
                subject,
                format!("blob content hashes to {actual}, not to its file name"),
            ));
        }
    }
    diagnostics
}

/// Runs the linter against a freshly seeded database containing one
/// instance of every static defect class (plus a clean control
/// database) and verifies each expected code fires — the linter's
/// own smoke test, wired into CI via `simart check --self-test`.
///
/// # Errors
///
/// Returns a description of the first expectation that failed.
pub fn self_test() -> Result<String, String> {
    // A clean database must lint clean.
    let clean = Database::in_memory();
    seed_artifact(&clean, uuid("clean-a"), &[], "hash-clean", None);
    // Remote controls ride along: a re-delivered dispatch superseded by
    // a later one, and a final dispatch that was acked, are both fine.
    seed_run(&clean, "run-clean", "rh-clean", "done", &[uuid("clean-a")], &[
        "status:queued",
        "remote-dispatch:1:g1",
        "remote-dispatch:2:g2",
        "status:running",
        "remote-ack:2:g2",
        "status:done",
    ]);
    // Quarantine controls: a consistent quarantined run and a released
    // dead letter (even for a long-gone run) are both fine — including
    // when the quarantine itself closes an unacked remote dispatch.
    seed_run(&clean, "run-clean-q", "rh-clean-q", "quarantined", &[], &[
        "status:queued",
        "remote-dispatch:1:g1",
        "status:quarantined",
    ]);
    seed_dead_letter(&clean, "run-clean-q", false);
    seed_dead_letter(&clean, "run-long-gone", true);
    let diags = lint_database(&clean);
    if !diags.is_empty() {
        return Err(format!("clean database produced findings: {diags:?}"));
    }

    // A dirty database must trip every static lint.
    let db = Database::in_memory();
    // SA0008: duplicate content hash.
    seed_artifact(&db, uuid("dup-1"), &[], "hash-dup", None);
    seed_artifact(&db, uuid("dup-2"), &[], "hash-dup", None);
    // SA0002: cycle a <-> b. SA0003: orphan input on c.
    seed_artifact(&db, uuid("cyc-a"), &[uuid("cyc-b")], "hash-a", None);
    seed_artifact(&db, uuid("cyc-b"), &[uuid("cyc-a")], "hash-b", None);
    seed_artifact(&db, uuid("art-c"), &[uuid("never-registered")], "hash-c", None);
    // SA0004: payload key absent from the blob store.
    seed_artifact(&db, uuid("art-d"), &[], "hash-d", Some(&"0".repeat(32)));
    // SA0001: run referencing an unknown artifact.
    seed_run(&db, "run-1", "rh-1", "done", &[uuid("ghost")], &[
        "status:queued",
        "status:running",
        "status:done",
    ]);
    // SA0006: terminal status written twice.
    seed_run(&db, "run-2", "rh-2", "done", &[], &[
        "status:queued",
        "status:running",
        "status:done",
        "status:done",
    ]);
    // SA0007: retrying with no prior failed attempt (running -> retrying
    // is itself legal, so only SA0007 fires).
    seed_run(&db, "run-3", "rh-3", "retrying", &[], &[
        "status:queued",
        "status:running",
        "status:retrying",
    ]);
    // SA0009: duplicate run hash.
    seed_run(&db, "run-4", "rh-dup", "created", &[], &[]);
    seed_run(&db, "run-5", "rh-dup", "created", &[], &[]);
    // SA0011: status field drifted from the event log.
    seed_run(&db, "run-6", "rh-6", "done", &[], &["status:queued", "status:running"]);
    // SA0014: an unreleased dead letter whose run was re-queued without
    // a release.
    seed_run(&db, "run-7", "rh-7", "queued", &[], &["status:queued"]);
    seed_dead_letter(&db, "run-7", false);
    // SA0015: a remote dispatch with no ack, redelivery, re-queue, or
    // quarantine after it (the run document froze mid-delivery).
    seed_run(&db, "run-8", "rh-8", "running", &[], &[
        "status:queued",
        "status:running",
        "remote-dispatch:1:g1",
    ]);

    let diags = lint_database(&db);
    let expect = [
        LintCode::DanglingArtifactRef,
        LintCode::ArtifactCycle,
        LintCode::OrphanArtifactInput,
        LintCode::MissingBlob,
        LintCode::LifecycleViolation,
        LintCode::RetryWithoutFailure,
        LintCode::DuplicateArtifact,
        LintCode::DuplicateRunHash,
        LintCode::StatusEventMismatch,
        LintCode::QuarantinedRunReferenced,
        LintCode::OrphanedRemoteAttempt,
    ];
    for code in expect {
        if !diags.iter().any(|d| d.code == code) {
            return Err(format!("seeded defect for {code} was not detected; got {diags:?}"));
        }
    }

    // SA0005 needs a database on disk with a tampered blob file.
    let dir = std::env::temp_dir().join(format!("simart-check-selftest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let disk = Database::in_memory();
    disk.blobs().put(b"intact".to_vec());
    disk.save(&dir).map_err(|e| format!("saving self-test db: {e}"))?;
    let fake = BlobKey::for_content(b"original content").to_hex();
    std::fs::write(dir.join("blobs").join(fake), b"tampered")
        .map_err(|e| format!("seeding tampered blob: {e}"))?;
    let disk_diags = lint_dir(&dir).map_err(|e| format!("linting self-test dir: {e}"))?;
    let _ = std::fs::remove_dir_all(&dir);
    if !disk_diags.iter().any(|d| d.code == LintCode::HashMismatch) {
        return Err(format!("tampered blob was not detected; got {disk_diags:?}"));
    }

    // SA0012/SA0013 need a journaled directory: an attached database
    // dropped without a checkpoint leaves journal records behind
    // (SA0012), and a hand-edited checkpoint that disagrees with a
    // journal insert is divergence (SA0013). A collection outside the
    // provenance schema keeps the other lints quiet.
    let jdir =
        std::env::temp_dir().join(format!("simart-check-selftest-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&jdir);
    {
        let jdb = Database::open(&jdir).map_err(|e| format!("opening self-test journal db: {e}"))?;
        jdb.collection("notes")
            .insert(Value::map([("_id", Value::from("n1")), ("v", Value::from(1i64))]))
            .map_err(|e| format!("seeding journaled doc: {e}"))?;
    }
    std::fs::write(jdir.join("notes.jsonl"), "{\"_id\":\"n1\",\"v\":2}\n")
        .map_err(|e| format!("seeding divergent checkpoint: {e}"))?;
    let journal_diags = lint_dir(&jdir).map_err(|e| format!("linting journaled dir: {e}"))?;
    let _ = std::fs::remove_dir_all(&jdir);
    if !journal_diags.iter().any(|d| d.code == LintCode::UnreplayedJournal) {
        return Err(format!("unreplayed journal was not detected; got {journal_diags:?}"));
    }
    if !journal_diags.iter().any(|d| d.code == LintCode::JournalDivergence) {
        return Err(format!("journal divergence was not detected; got {journal_diags:?}"));
    }

    // SA0010 comes from prelaunch cross-product validation.
    let catalog = simart_resources::Catalog::standard();
    let axes =
        vec![("benchmark".to_owned(), vec!["no-such-suite".to_owned(), "npb".to_owned()])];
    let pre = crate::prelaunch::validate_axes(&axes, &catalog);
    if !pre.iter().any(|d| d.code == LintCode::UnknownResource) {
        return Err(format!("unknown resource was not detected; got {pre:?}"));
    }
    if pre.len() != 1 {
        return Err(format!("catalog resource 'npb' was wrongly flagged: {pre:?}"));
    }

    Ok(format!(
        "lint self-test: clean database clean; all {} seeded defect classes detected",
        // + SA0005, SA0010, SA0012, SA0013 seeded outside `expect`.
        expect.len() + 4
    ))
}

fn uuid(name: &str) -> String {
    Uuid::new_v3("simart-analyze-selftest", name).to_string()
}

fn seed_artifact(db: &Database, id: String, inputs: &[String], hash: &str, payload: Option<&str>) {
    let mut doc = Value::map([
        ("_id", Value::from(id)),
        ("name", Value::from("seeded")),
        ("kind", Value::from("binary")),
        ("hash", Value::from(hash)),
        ("inputs", Value::array(inputs.iter().map(|i| Value::from(i.clone())))),
    ]);
    if let Some(payload) = payload {
        doc.set_at("payload", Value::from(payload));
    }
    db.collection("artifacts").insert(doc).expect("seeding artifact");
}

fn seed_dead_letter(db: &Database, run_id: &str, released: bool) {
    db.collection("quarantine")
        .insert(Value::map([
            ("_id", Value::from(run_id)),
            ("task", Value::from("seeded/task")),
            ("error", Value::from("seeded: redelivery cap exhausted")),
            ("redeliveries", Value::from(1u32)),
            ("leaseEvents", Value::array([Value::from("delivery:1:lease-expired")])),
            ("attempts", Value::from(0u32)),
            ("released", Value::from(released)),
        ]))
        .expect("seeding dead letter");
}

fn seed_run(
    db: &Database,
    id: &str,
    hash: &str,
    status: &str,
    inputs: &[String],
    events: &[&str],
) {
    db.collection("runs")
        .insert(Value::map([
            ("_id", Value::from(id)),
            ("hash", Value::from(hash)),
            ("status", Value::from(status)),
            ("inputs", Value::array(inputs.iter().map(|i| Value::from(i.clone())))),
            ("events", Value::array(events.iter().map(|e| Value::from(*e)))),
        ]))
        .expect("seeding run");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_test_passes() {
        self_test().expect("lint self-test");
    }

    #[test]
    fn empty_database_is_clean() {
        assert!(lint_database(&Database::in_memory()).is_empty());
    }

    #[test]
    fn registry_written_database_is_clean() {
        use simart_artifact::{Artifact, ArtifactKind, ArtifactRegistry, ContentSource};
        let mut registry = ArtifactRegistry::new();
        let repo = registry
            .register(
                Artifact::builder("repo", ArtifactKind::GitRepo)
                    .documentation("src")
                    .content(ContentSource::git("https://x", "rev")),
            )
            .expect("register repo");
        registry
            .register(
                Artifact::builder("bin", ArtifactKind::Binary)
                    .documentation("bin")
                    .content(ContentSource::bytes(b"elf".to_vec()))
                    .input(repo.id()),
            )
            .expect("register binary");
        let db = Database::in_memory();
        let store = simart_db::ArtifactStore::new(&db).expect("store");
        for artifact in registry.iter() {
            store.save(artifact, None).expect("save artifact");
        }
        assert!(lint_database(&db).is_empty());
    }

    #[test]
    fn unreleased_dead_letters_constrain_their_runs() {
        // Missing run: the quarantine points at nothing.
        let db = Database::in_memory();
        seed_dead_letter(&db, "gone", false);
        let diags = lint_database(&db);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::QuarantinedRunReferenced);
        assert!(diags[0].message.contains("missing"), "{}", diags[0].message);
        // Released letters constrain nothing, even with no run.
        let db = Database::in_memory();
        seed_dead_letter(&db, "gone", true);
        assert!(lint_database(&db).is_empty());
        // A consistent quarantined run is clean.
        let db = Database::in_memory();
        seed_run(&db, "q", "rh-q", "quarantined", &[], &[
            "status:queued",
            "status:quarantined",
        ]);
        seed_dead_letter(&db, "q", false);
        assert!(lint_database(&db).is_empty());
    }

    #[test]
    fn orphaned_remote_dispatch_is_flagged_but_closed_ones_are_not() {
        fn scan(events: &[&str]) -> Vec<Diagnostic> {
            let doc = Value::map([(
                "events",
                Value::array(events.iter().map(|e| Value::from(*e))),
            )]);
            let mut diags = Vec::new();
            lint_remote_attempts(&doc, "run:t", &mut diags);
            diags
        }
        // Open dispatch at end of log: orphaned.
        let diags = scan(&["status:queued", "status:running", "remote-dispatch:2:g3"]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, LintCode::OrphanedRemoteAttempt);
        assert!(diags[0].message.contains("delivery 2"), "{}", diags[0].message);
        assert!(diags[0].message.contains("generation 3"), "{}", diags[0].message);
        // An ack, a re-queue, or a quarantine closes the dispatch; a
        // later dispatch supersedes (redelivery), so only an open final
        // one counts.
        for closer in ["remote-ack:1:g1", "status:queued", "status:quarantined"] {
            let diags = scan(&["status:queued", "remote-dispatch:1:g1", closer]);
            assert!(diags.is_empty(), "closer {closer} did not clear the dispatch: {diags:?}");
        }
        let diags =
            scan(&["remote-dispatch:1:g1", "remote-dispatch:2:g2", "remote-ack:2:g2"]);
        assert!(diags.is_empty(), "{diags:?}");
        // No remote events at all: nothing to flag.
        assert!(scan(&["status:queued", "status:running", "status:done"]).is_empty());
    }

    #[test]
    fn each_seeded_defect_maps_to_its_code() {
        let db = Database::in_memory();
        seed_run(&db, "r", "h", "failed", &[uuid("nope")], &[
            "status:queued",
            "status:done", // queued -> done is illegal
        ]);
        let diags = lint_database(&db);
        let codes: Vec<LintCode> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&LintCode::DanglingArtifactRef));
        assert!(codes.contains(&LintCode::LifecycleViolation));
        assert!(codes.contains(&LintCode::StatusEventMismatch));
        assert!(!codes.contains(&LintCode::DuplicateRunHash));
    }
}
