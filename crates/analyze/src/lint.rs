//! The provenance linter: a read-only pass over a simart database that
//! cross-checks artifacts, runs, blobs, and event logs against the
//! invariants the write paths are supposed to maintain.
//!
//! The write paths (`ArtifactRegistry`, `RunStore`) enforce these
//! invariants going *forward*; the linter re-derives them over data at
//! rest, so hand-edits, partial saves, version skew, and plain bugs
//! surface as typed [`Diagnostic`]s instead of silent corruption — the
//! static half of the paper's "trust the provenance you recorded"
//! story.

use crate::diag::{Diagnostic, LintCode};
use crate::engine::Engine;
use simart_artifact::Uuid;
use simart_db::{BlobKey, Database, DbError, LoadOptions, Value};
use std::path::Path;

/// Lints an in-memory database, returning all findings sorted in the
/// stable report order. Read-only: looks only at collections that
/// already exist. This is the full-scan entry point of the incremental
/// engine ([`crate::engine`]); `simart check --incremental` reuses the
/// same lint registry against recorded state instead.
pub fn lint_database(db: &Database) -> Vec<Diagnostic> {
    let mut engine = Engine::new();
    engine.full_scan(db);
    engine.diagnostics()
}

/// Lints a database directory on disk: loads it (checkpoint + journal
/// replay), runs [`lint_database`], scans `blobs/` for files whose
/// content does not hash to their file name (SA0005) — exactly the
/// blobs a lenient `Database::load` discards — and inspects the journal
/// state the load reported (SA0012 unreplayed-journal, SA0013
/// journal-divergence).
///
/// # Errors
///
/// Propagates load failures (missing directory, corrupt JSONL).
pub fn lint_dir(dir: &Path) -> Result<Vec<Diagnostic>, DbError> {
    // Lenient load: the linter's job is to *report* damage, so corrupt
    // documents must not abort the whole pass (SA0005/SA0012/SA0013
    // findings describe them instead).
    let (db, report) = Database::load_with(dir, &LoadOptions::default())?;
    let mut engine = Engine::new();
    engine.full_scan(&db);
    engine.scan_environment(dir, &report);
    Ok(engine.diagnostics())
}

/// Runs the linter against a freshly seeded database containing one
/// instance of every static defect class (plus a clean control
/// database) and verifies each expected code fires — the linter's
/// own smoke test, wired into CI via `simart check --self-test`.
///
/// # Errors
///
/// Returns a description of the first expectation that failed.
pub fn self_test() -> Result<String, String> {
    // A clean database must lint clean.
    let clean = Database::in_memory();
    seed_artifact(&clean, uuid("clean-a"), &[], "hash-clean", None);
    // Remote controls ride along: a re-delivered dispatch superseded by
    // a later one, and a final dispatch that was acked, are both fine.
    seed_run(
        &clean,
        "run-clean",
        "rh-clean",
        "done",
        &[uuid("clean-a")],
        &[
            "status:queued",
            "remote-dispatch:1:g1",
            "remote-dispatch:2:g2",
            "status:running",
            "remote-ack:2:g2",
            // A session reconnect that resumes the same generation is
            // fine (SA0018 control) — the ack above still pairs with
            // its own dispatch.
            "remote-reconnect:7:g2",
            // Checkpoint controls: a restore (or first-boot save) under
            // the key the run's own configuration declared is fine.
            "checkpoint-key:00f0e1d2c3b4a596",
            "checkpoint-restore:00f0e1d2c3b4a596",
            "status:done",
        ],
    );
    // Quarantine controls: a consistent quarantined run and a released
    // dead letter (even for a long-gone run) are both fine — including
    // when the quarantine itself closes an unacked remote dispatch.
    seed_run(
        &clean,
        "run-clean-q",
        "rh-clean-q",
        "quarantined",
        &[],
        &[
            "status:queued",
            "remote-dispatch:1:g1",
            "status:quarantined",
        ],
    );
    seed_dead_letter(&clean, "run-clean-q", false);
    seed_dead_letter(&clean, "run-long-gone", true);
    let diags = lint_database(&clean);
    if !diags.is_empty() {
        return Err(format!("clean database produced findings: {diags:?}"));
    }

    // A dirty database must trip every static lint.
    let db = Database::in_memory();
    // SA0008: duplicate content hash.
    seed_artifact(&db, uuid("dup-1"), &[], "hash-dup", None);
    seed_artifact(&db, uuid("dup-2"), &[], "hash-dup", None);
    // SA0002: cycle a <-> b. SA0003: orphan input on c.
    seed_artifact(&db, uuid("cyc-a"), &[uuid("cyc-b")], "hash-a", None);
    seed_artifact(&db, uuid("cyc-b"), &[uuid("cyc-a")], "hash-b", None);
    seed_artifact(
        &db,
        uuid("art-c"),
        &[uuid("never-registered")],
        "hash-c",
        None,
    );
    // SA0004: payload key absent from the blob store.
    seed_artifact(&db, uuid("art-d"), &[], "hash-d", Some(&"0".repeat(32)));
    // SA0001: run referencing an unknown artifact.
    seed_run(
        &db,
        "run-1",
        "rh-1",
        "done",
        &[uuid("ghost")],
        &["status:queued", "status:running", "status:done"],
    );
    // SA0006: terminal status written twice.
    seed_run(
        &db,
        "run-2",
        "rh-2",
        "done",
        &[],
        &[
            "status:queued",
            "status:running",
            "status:done",
            "status:done",
        ],
    );
    // SA0007: retrying with no prior failed attempt (running -> retrying
    // is itself legal, so only SA0007 fires).
    seed_run(
        &db,
        "run-3",
        "rh-3",
        "retrying",
        &[],
        &["status:queued", "status:running", "status:retrying"],
    );
    // SA0009: duplicate run hash.
    seed_run(&db, "run-4", "rh-dup", "created", &[], &[]);
    seed_run(&db, "run-5", "rh-dup", "created", &[], &[]);
    // SA0011: status field drifted from the event log.
    seed_run(
        &db,
        "run-6",
        "rh-6",
        "done",
        &[],
        &["status:queued", "status:running"],
    );
    // SA0014: an unreleased dead letter whose run was re-queued without
    // a release.
    seed_run(&db, "run-7", "rh-7", "queued", &[], &["status:queued"]);
    seed_dead_letter(&db, "run-7", false);
    // SA0015: a remote dispatch with no ack, redelivery, re-queue, or
    // quarantine after it (the run document froze mid-delivery).
    seed_run(
        &db,
        "run-8",
        "rh-8",
        "running",
        &[],
        &["status:queued", "status:running", "remote-dispatch:1:g1"],
    );
    // SA0016: a checkpoint restore whose key disagrees with the key the
    // run's configuration declared (the boot prefix came from a
    // different input than the one on record).
    seed_run(
        &db,
        "run-9",
        "rh-9",
        "done",
        &[],
        &[
            "status:queued",
            "status:running",
            "checkpoint-key:00f0e1d2c3b4a596",
            "checkpoint-restore:ffffffffffffffff",
            "status:done",
        ],
    );
    // SA0018: session-resume divergence — the same delivery acked under
    // two worker generations (split-brain: two incarnations of one
    // session both believed they owned the work). The second ack also
    // pairs with no dispatch, the other half of the signature.
    seed_run(
        &db,
        "run-10",
        "rh-10",
        "done",
        &[],
        &[
            "status:queued",
            "status:running",
            "remote-dispatch:1:g1",
            "remote-ack:1:g1",
            "remote-ack:1:g2",
            "status:done",
        ],
    );
    // SA0017: a secondary-index entry pointing at a run that does not
    // exist (the write paths can never produce this; the injection
    // stands in for a code or hand-edit bug corrupting maintenance).
    // The spurious candidate id is harmless to other lints: planner
    // probes over-approximate and the full filter is always re-applied.
    let runs = db.collection("runs");
    runs.ensure_index(simart_db::IndexSpec::hash("status"))
        .map_err(|e| format!("declaring self-test index: {e}"))?;
    runs.inject_index_entry("status", "\"done\"", "ghost-run");

    let diags = lint_database(&db);
    let expect = [
        LintCode::DanglingArtifactRef,
        LintCode::ArtifactCycle,
        LintCode::OrphanArtifactInput,
        LintCode::MissingBlob,
        LintCode::LifecycleViolation,
        LintCode::RetryWithoutFailure,
        LintCode::DuplicateArtifact,
        LintCode::DuplicateRunHash,
        LintCode::StatusEventMismatch,
        LintCode::QuarantinedRunReferenced,
        LintCode::OrphanedRemoteAttempt,
        LintCode::StaleCheckpoint,
        LintCode::IndexDivergence,
        LintCode::SessionResumeDivergence,
    ];
    for code in expect {
        if !diags.iter().any(|d| d.code == code) {
            return Err(format!(
                "seeded defect for {code} was not detected; got {diags:?}"
            ));
        }
    }

    // SA0005 needs a database on disk with a tampered blob file.
    let dir = std::env::temp_dir().join(format!("simart-check-selftest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let disk = Database::in_memory();
    disk.blobs().put(b"intact".to_vec());
    disk.save(&dir)
        .map_err(|e| format!("saving self-test db: {e}"))?;
    let fake = BlobKey::for_content(b"original content").to_hex();
    std::fs::write(dir.join("blobs").join(fake), b"tampered")
        .map_err(|e| format!("seeding tampered blob: {e}"))?;
    let disk_diags = lint_dir(&dir).map_err(|e| format!("linting self-test dir: {e}"))?;
    let _ = std::fs::remove_dir_all(&dir);
    if !disk_diags.iter().any(|d| d.code == LintCode::HashMismatch) {
        return Err(format!(
            "tampered blob was not detected; got {disk_diags:?}"
        ));
    }

    // SA0012/SA0013 need a journaled directory: an attached database
    // dropped without a checkpoint leaves journal records behind
    // (SA0012), and a hand-edited checkpoint that disagrees with a
    // journal insert is divergence (SA0013). A collection outside the
    // provenance schema keeps the other lints quiet.
    let jdir = std::env::temp_dir().join(format!(
        "simart-check-selftest-journal-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&jdir);
    {
        let jdb =
            Database::open(&jdir).map_err(|e| format!("opening self-test journal db: {e}"))?;
        jdb.collection("notes")
            .insert(Value::map([
                ("_id", Value::from("n1")),
                ("v", Value::from(1i64)),
            ]))
            .map_err(|e| format!("seeding journaled doc: {e}"))?;
    }
    std::fs::write(jdir.join("notes.jsonl"), "{\"_id\":\"n1\",\"v\":2}\n")
        .map_err(|e| format!("seeding divergent checkpoint: {e}"))?;
    let journal_diags = lint_dir(&jdir).map_err(|e| format!("linting journaled dir: {e}"))?;
    let _ = std::fs::remove_dir_all(&jdir);
    if !journal_diags
        .iter()
        .any(|d| d.code == LintCode::UnreplayedJournal)
    {
        return Err(format!(
            "unreplayed journal was not detected; got {journal_diags:?}"
        ));
    }
    if !journal_diags
        .iter()
        .any(|d| d.code == LintCode::JournalDivergence)
    {
        return Err(format!(
            "journal divergence was not detected; got {journal_diags:?}"
        ));
    }

    // SA0010 comes from prelaunch cross-product validation.
    let catalog = simart_resources::Catalog::standard();
    let axes = vec![(
        "benchmark".to_owned(),
        vec!["no-such-suite".to_owned(), "npb".to_owned()],
    )];
    let pre = crate::prelaunch::validate_axes(&axes, &catalog);
    if !pre.iter().any(|d| d.code == LintCode::UnknownResource) {
        return Err(format!("unknown resource was not detected; got {pre:?}"));
    }
    if pre.len() != 1 {
        return Err(format!(
            "catalog resource 'npb' was wrongly flagged: {pre:?}"
        ));
    }

    Ok(format!(
        "lint self-test: clean database clean; all {} seeded defect classes detected",
        // + SA0005, SA0010, SA0012, SA0013 seeded outside `expect`.
        expect.len() + 4
    ))
}

fn uuid(name: &str) -> String {
    Uuid::new_v3("simart-analyze-selftest", name).to_string()
}

fn seed_artifact(db: &Database, id: String, inputs: &[String], hash: &str, payload: Option<&str>) {
    let mut doc = Value::map([
        ("_id", Value::from(id)),
        ("name", Value::from("seeded")),
        ("kind", Value::from("binary")),
        ("hash", Value::from(hash)),
        (
            "inputs",
            Value::array(inputs.iter().map(|i| Value::from(i.clone()))),
        ),
    ]);
    if let Some(payload) = payload {
        doc.set_at("payload", Value::from(payload));
    }
    db.collection("artifacts")
        .insert(doc)
        .expect("seeding artifact");
}

fn seed_dead_letter(db: &Database, run_id: &str, released: bool) {
    db.collection("quarantine")
        .insert(Value::map([
            ("_id", Value::from(run_id)),
            ("task", Value::from("seeded/task")),
            ("error", Value::from("seeded: redelivery cap exhausted")),
            ("redeliveries", Value::from(1u32)),
            (
                "leaseEvents",
                Value::array([Value::from("delivery:1:lease-expired")]),
            ),
            ("attempts", Value::from(0u32)),
            ("released", Value::from(released)),
        ]))
        .expect("seeding dead letter");
}

fn seed_run(db: &Database, id: &str, hash: &str, status: &str, inputs: &[String], events: &[&str]) {
    db.collection("runs")
        .insert(Value::map([
            ("_id", Value::from(id)),
            ("hash", Value::from(hash)),
            ("status", Value::from(status)),
            (
                "inputs",
                Value::array(inputs.iter().map(|i| Value::from(i.clone()))),
            ),
            (
                "events",
                Value::array(events.iter().map(|e| Value::from(*e))),
            ),
        ]))
        .expect("seeding run");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_test_passes() {
        self_test().expect("lint self-test");
    }

    #[test]
    fn empty_database_is_clean() {
        assert!(lint_database(&Database::in_memory()).is_empty());
    }

    #[test]
    fn registry_written_database_is_clean() {
        use simart_artifact::{Artifact, ArtifactKind, ArtifactRegistry, ContentSource};
        let mut registry = ArtifactRegistry::new();
        let repo = registry
            .register(
                Artifact::builder("repo", ArtifactKind::GitRepo)
                    .documentation("src")
                    .content(ContentSource::git("https://x", "rev")),
            )
            .expect("register repo");
        registry
            .register(
                Artifact::builder("bin", ArtifactKind::Binary)
                    .documentation("bin")
                    .content(ContentSource::bytes(b"elf".to_vec()))
                    .input(repo.id()),
            )
            .expect("register binary");
        let db = Database::in_memory();
        let store = simart_db::ArtifactStore::new(&db).expect("store");
        for artifact in registry.iter() {
            store.save(artifact, None).expect("save artifact");
        }
        assert!(lint_database(&db).is_empty());
    }

    #[test]
    fn unreleased_dead_letters_constrain_their_runs() {
        // Missing run: the quarantine points at nothing.
        let db = Database::in_memory();
        seed_dead_letter(&db, "gone", false);
        let diags = lint_database(&db);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::QuarantinedRunReferenced);
        assert!(diags[0].message.contains("missing"), "{}", diags[0].message);
        // Released letters constrain nothing, even with no run.
        let db = Database::in_memory();
        seed_dead_letter(&db, "gone", true);
        assert!(lint_database(&db).is_empty());
        // A consistent quarantined run is clean.
        let db = Database::in_memory();
        seed_run(
            &db,
            "q",
            "rh-q",
            "quarantined",
            &[],
            &["status:queued", "status:quarantined"],
        );
        seed_dead_letter(&db, "q", false);
        assert!(lint_database(&db).is_empty());
    }

    #[test]
    fn orphaned_remote_dispatch_is_flagged_but_closed_ones_are_not() {
        use crate::lints::lint_remote_attempts;
        fn scan(events: &[&str]) -> Vec<Diagnostic> {
            let doc = Value::map([(
                "events",
                Value::array(events.iter().map(|e| Value::from(*e))),
            )]);
            let mut diags = Vec::new();
            lint_remote_attempts(&doc, "run:t", &mut diags);
            diags
        }
        // Open dispatch at end of log: orphaned.
        let diags = scan(&["status:queued", "status:running", "remote-dispatch:2:g3"]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, LintCode::OrphanedRemoteAttempt);
        assert!(
            diags[0].message.contains("delivery 2"),
            "{}",
            diags[0].message
        );
        assert!(
            diags[0].message.contains("generation 3"),
            "{}",
            diags[0].message
        );
        // An ack, a re-queue, or a quarantine closes the dispatch; a
        // later dispatch supersedes (redelivery), so only an open final
        // one counts.
        for closer in ["remote-ack:1:g1", "status:queued", "status:quarantined"] {
            let diags = scan(&["status:queued", "remote-dispatch:1:g1", closer]);
            assert!(
                diags.is_empty(),
                "closer {closer} did not clear the dispatch: {diags:?}"
            );
        }
        let diags = scan(&[
            "remote-dispatch:1:g1",
            "remote-dispatch:2:g2",
            "remote-ack:2:g2",
        ]);
        assert!(diags.is_empty(), "{diags:?}");
        // No remote events at all: nothing to flag.
        assert!(scan(&["status:queued", "status:running", "status:done"]).is_empty());
    }

    #[test]
    fn session_resume_divergence_is_flagged_but_consistent_resumes_are_not() {
        use crate::lints::lint_session_resume;
        fn scan(events: &[&str]) -> Vec<Diagnostic> {
            let doc = Value::map([(
                "events",
                Value::array(events.iter().map(|e| Value::from(*e))),
            )]);
            let mut diags = Vec::new();
            lint_session_resume(&doc, "run:t", &mut diags);
            diags
        }
        // An ack pairing with its own dispatch is clean, including
        // across a reconnect of the same session/generation.
        assert!(scan(&["remote-dispatch:1:g1", "remote-ack:1:g1"]).is_empty());
        assert!(scan(&[
            "remote-dispatch:1:g1",
            "remote-reconnect:7:g1",
            "remote-ack:1:g1",
        ])
        .is_empty());
        // A redelivery acked under its own (bumped) generation is clean.
        assert!(scan(&[
            "remote-dispatch:1:g1",
            "remote-dispatch:2:g2",
            "remote-ack:2:g2",
        ])
        .is_empty());
        // No remote events at all: nothing to flag.
        assert!(scan(&["status:queued", "status:done"]).is_empty());
        // An ack the coordinator never dispatched is divergence.
        let diags = scan(&["remote-dispatch:1:g1", "remote-ack:1:g2"]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, LintCode::SessionResumeDivergence);
        assert!(
            diags[0].message.contains("no matching"),
            "{}",
            diags[0].message
        );
        // The same delivery acked under two generations is split-brain
        // (the second ack here also pairs with a real dispatch, so only
        // the two-generations arm fires).
        let diags = scan(&[
            "remote-dispatch:1:g1",
            "remote-ack:1:g1",
            "remote-dispatch:1:g2",
            "remote-ack:1:g2",
        ]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, LintCode::SessionResumeDivergence);
        assert!(
            diags[0].message.contains("two worker"),
            "{}",
            diags[0].message
        );
        // Re-acking under the SAME generation is idempotent delivery,
        // not divergence (first-report-wins absorbs it).
        assert!(scan(&["remote-dispatch:1:g1", "remote-ack:1:g1", "remote-ack:1:g1",]).is_empty());
    }

    #[test]
    fn stale_checkpoints_are_flagged_but_matching_ones_are_not() {
        use crate::lints::lint_checkpoint_events;
        fn scan(events: &[&str]) -> Vec<Diagnostic> {
            let doc = Value::map([(
                "events",
                Value::array(events.iter().map(|e| Value::from(*e))),
            )]);
            let mut diags = Vec::new();
            lint_checkpoint_events(&doc, "run:t", &mut diags);
            diags
        }
        // Restore and save under the declared key: clean. (A first boot
        // journals key + save; a warm run journals key + restore.)
        assert!(scan(&["checkpoint-key:aa", "checkpoint-save:aa"]).is_empty());
        assert!(scan(&["checkpoint-key:aa", "checkpoint-restore:aa"]).is_empty());
        // No checkpoint events at all: nothing to flag.
        assert!(scan(&["status:queued", "status:done"]).is_empty());
        // A restore under a different key than the configuration
        // declared is stale.
        let diags = scan(&["checkpoint-key:aa", "checkpoint-restore:bb"]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, LintCode::StaleCheckpoint);
        assert!(diags[0].message.contains("bb"), "{}", diags[0].message);
        assert!(diags[0].message.contains("aa"), "{}", diags[0].message);
        // A save with no declared key cannot be tied to the run.
        let diags = scan(&["checkpoint-save:aa"]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, LintCode::StaleCheckpoint);
        assert!(
            diags[0].message.contains("no prior"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn each_seeded_defect_maps_to_its_code() {
        let db = Database::in_memory();
        seed_run(
            &db,
            "r",
            "h",
            "failed",
            &[uuid("nope")],
            &[
                "status:queued",
                "status:done", // queued -> done is illegal
            ],
        );
        let diags = lint_database(&db);
        let codes: Vec<LintCode> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&LintCode::DanglingArtifactRef));
        assert!(codes.contains(&LintCode::LifecycleViolation));
        assert!(codes.contains(&LintCode::StatusEventMismatch));
        assert!(!codes.contains(&LintCode::DuplicateRunHash));
    }
}
