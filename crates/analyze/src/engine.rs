//! The incremental analysis engine: O(delta) re-linting driven by the
//! database journal.
//!
//! [`crate::lint::lint_database`] answers "is this database clean?" by
//! rescanning every collection. That is the right primitive, but at the
//! ROADMAP's million-run target it makes `simart check` the slowest
//! step of the check→launch→check loop — even though PR 4's journal
//! already records *exactly* what changed since the last checkpoint.
//! This module reuses that record: every lint is a state machine that
//! can be (a) built from a full scan, (b) advanced by one replayed
//! [`JournalOp`], and (c) serialized into the `analysis_state`
//! collection together with the [`JournalCursor`] it is valid at. A
//! later `simart check --incremental` restores the state, replays only
//! the journal suffix past the cursor, and reports — cost proportional
//! to the delta, not the database.
//!
//! # Soundness
//!
//! A loaded database is a pure function of (checkpoint files, journal
//! prefix). The recorded state equals the lint state of
//! `f(checkpoint, journal[..cursor.offset])`; replaying
//! `journal[cursor.offset..]` therefore reproduces the lint state of
//! the full load *iff* neither input changed behind the cursor's back.
//! Each guard below closes one way that can happen:
//!
//! * **Cursor validity** — [`JournalCursor::is_valid`] re-hashes the
//!   journal prefix, so `checkpoint()` compaction, `save()`
//!   truncation, and hand-rewrites of the journal all invalidate the
//!   state ("journal compacted past the analysis cursor").
//! * **Divergence** — a journal insert colliding with a *different*
//!   checkpoint document means the checkpoint files were edited after
//!   the journal was written; the [`LoadReport`] records it and the
//!   engine falls back to a full scan.
//! * **Self-reference** — the state document itself travels through
//!   the normal journal path, so the cursor is captured *before* the
//!   state is written and replay skips `analysis_state` records.
//!
//! Whenever any guard fails, [`check_dir_incremental`] says so and
//! falls back to the full scan (which records fresh state for next
//! time). Equivalence is enforced by a property test driving random
//! mutation sequences and asserting byte-identical reports at every
//! step (`tests/incremental_props.rs`).

use crate::diag::{sort_diagnostics, Diagnostic};
use crate::lints;
use simart_db::{
    read_journal_from, BlobKey, Database, DbError, JournalCursor, JournalOp, LoadOptions,
    LoadReport, Value,
};
use simart_observe as observe;
use std::path::Path;

/// The collection the engine persists its state into (written through
/// the normal journal path, like any other document).
pub const STATE_COLLECTION: &str = "analysis_state";
/// `_id` of the single state document.
const STATE_DOC_ID: &str = "engine";
/// Bumped whenever any lint's state layout changes; mismatched
/// versions fall back to a full scan instead of misreading old state.
/// Version 2 added the `indexes` registry entry (SA0017).
const STATE_VERSION: i64 = 2;
/// Once an incremental check has replayed this many journal records,
/// it rewrites the state document so the suffix cannot grow without
/// bound across repeated checks.
const STATE_REFRESH_DELTA: usize = 1024;

/// What a lint observes: journal records touching these collections
/// (or the blob store) are routed to its [`Lint::apply_delta`].
#[derive(Debug, Clone, Copy)]
pub struct Observes {
    /// Collection names whose document writes/deletes/drops matter.
    pub collections: &'static [&'static str],
    /// Whether blob-store puts/removes matter.
    pub blobs: bool,
}

/// One replayed journal record, normalized for lint consumption:
/// inserts and upserts collapse to [`Delta::Write`] (journal replay
/// makes the journal document the final content either way), and blob
/// payloads are pre-hashed to their [`BlobKey`].
#[derive(Debug)]
pub enum Delta<'a> {
    /// A document now has this content (insert or upsert).
    Write {
        /// Collection name.
        collection: &'a str,
        /// The document's `_id`.
        id: &'a str,
        /// The full document.
        doc: &'a Value,
    },
    /// The document with this `_id` was deleted.
    Delete {
        /// Collection name.
        collection: &'a str,
        /// The deleted `_id`.
        id: &'a str,
    },
    /// A whole collection was dropped.
    Drop {
        /// Collection name.
        collection: &'a str,
    },
    /// A blob with this key entered the store.
    BlobPut(BlobKey),
    /// The blob with this key left the store.
    BlobRemove(BlobKey),
}

impl<'a> Delta<'a> {
    /// Normalizes a journal record; `None` for records that cannot
    /// change database content (a document without a string `_id`
    /// never passes insert validation, an unparseable blob key is
    /// ignored by replay).
    pub fn from_op(op: &'a JournalOp) -> Option<Delta<'a>> {
        match op {
            JournalOp::Insert { collection, doc } | JournalOp::Upsert { collection, doc } => {
                let id = doc.at("_id").and_then(Value::as_str)?;
                Some(Delta::Write {
                    collection,
                    id,
                    doc,
                })
            }
            JournalOp::Delete { collection, id } => Some(Delta::Delete { collection, id }),
            JournalOp::DropCollection { collection } => Some(Delta::Drop { collection }),
            JournalOp::BlobPut { data } => Some(Delta::BlobPut(BlobKey::for_content(data))),
            JournalOp::BlobRemove { key } => BlobKey::from_hex(key).map(Delta::BlobRemove),
            // Index declarations never change document content, and
            // indexes are rebuilt (not trusted) on load — no lint
            // state can depend on them.
            JournalOp::EnsureIndex { .. } => None,
        }
    }

    /// The collection this delta touches (`None` for blob deltas).
    pub fn collection(&self) -> Option<&str> {
        match self {
            Delta::Write { collection, .. }
            | Delta::Delete { collection, .. }
            | Delta::Drop { collection } => Some(collection),
            Delta::BlobPut(_) | Delta::BlobRemove(_) => None,
        }
    }

    fn observed_by(&self, observes: Observes) -> bool {
        match self.collection() {
            Some(collection) => observes.collections.contains(&collection),
            None => observes.blobs,
        }
    }
}

/// One lint as an incremental state machine. Implementations live in
/// `crate::lints`; the registry instantiates all of them.
///
/// The contract mirrors the soundness argument above: after either
/// `full_scan(db)` *or* `restore(state) + apply_delta(each suffix
/// record)`, `emit` must produce the same multiset of diagnostics the
/// monolithic scan would for the same database content. `apply_delta`
/// must not touch the database — it sees only the replayed record.
pub trait Lint {
    /// Stable identifier, used as the key in the persisted state map.
    fn name(&self) -> &'static str;
    /// Metric name of this lint's `analyze.lint_us.*` histogram.
    fn timer_metric(&self) -> &'static str;
    /// What journal records this lint wants to see.
    fn observes(&self) -> Observes;
    /// Rebuilds state from scratch by scanning the database.
    fn full_scan(&mut self, db: &Database);
    /// Advances state by one journal record (no database access).
    fn apply_delta(&mut self, delta: &Delta<'_>);
    /// Re-examines on-disk context that is not journaled (blob files,
    /// journal layout). Runs on every directory check, incremental or
    /// not; lints without environment findings keep the default no-op.
    fn scan_environment(&mut self, _dir: &Path, _report: &LoadReport) {}
    /// Appends this lint's current findings.
    fn emit(&self, out: &mut Vec<Diagnostic>);
    /// Serializes persistent state (derived caches excluded).
    fn state(&self) -> Value;
    /// Restores from a previously serialized state.
    ///
    /// # Errors
    ///
    /// A human-readable reason when the value does not round-trip;
    /// the engine treats any error as "state is stale" and rescans.
    fn restore(&mut self, state: &Value) -> Result<(), String>;
}

/// The full lint registry driven as one unit: scan, advance, report.
pub struct Engine {
    lints: Vec<Box<dyn Lint>>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// An engine with every registered lint in its empty state.
    pub fn new() -> Engine {
        Engine {
            lints: lints::registry(),
        }
    }

    /// Rebuilds every lint's state by scanning the database.
    pub fn full_scan(&mut self, db: &Database) {
        observe::count("analyze.full_scans", 1);
        for lint in &mut self.lints {
            let _timer = observe::timer(lint.timer_metric());
            lint.full_scan(db);
        }
    }

    /// Advances every observing lint by one replayed journal record.
    /// Records touching [`STATE_COLLECTION`] are skipped: the state
    /// document describes the analysis, it is not analyzed content.
    pub fn apply_op(&mut self, op: &JournalOp) {
        let Some(delta) = Delta::from_op(op) else {
            return;
        };
        if delta.collection() == Some(STATE_COLLECTION) {
            return;
        }
        observe::count("analyze.delta_records", 1);
        for lint in &mut self.lints {
            if delta.observed_by(lint.observes()) {
                let _timer = observe::timer(lint.timer_metric());
                lint.apply_delta(&delta);
            }
        }
    }

    /// Runs every lint's environment pass over the database directory.
    pub fn scan_environment(&mut self, dir: &Path, report: &LoadReport) {
        for lint in &mut self.lints {
            let _timer = observe::timer(lint.timer_metric());
            lint.scan_environment(dir, report);
        }
    }

    /// All current findings in the stable report order.
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for lint in &self.lints {
            lint.emit(&mut out);
        }
        sort_diagnostics(&mut out);
        out
    }

    /// The persistable state document, valid at `cursor`.
    fn state_doc(&self, cursor: JournalCursor) -> Value {
        Value::map([
            ("_id".to_owned(), Value::from(STATE_DOC_ID)),
            ("version".to_owned(), Value::from(STATE_VERSION)),
            (
                "cursor".to_owned(),
                Value::map([
                    ("offset", Value::from(cursor.offset as i64)),
                    ("crc", Value::from(i64::from(cursor.crc))),
                ]),
            ),
            (
                "lints".to_owned(),
                Value::map(self.lints.iter().map(|l| (l.name().to_owned(), l.state()))),
            ),
        ])
    }

    /// Restores every lint from a state document, returning the cursor
    /// the state claims to be valid at (not yet validated against the
    /// journal on disk).
    fn restore_state(&mut self, doc: &Value) -> Result<JournalCursor, String> {
        if doc.at("version").and_then(Value::as_int) != Some(STATE_VERSION) {
            return Err("analysis state was written by an incompatible engine version".into());
        }
        let offset = doc
            .at("cursor.offset")
            .and_then(Value::as_int)
            .filter(|o| *o >= 0)
            .ok_or("analysis state is missing its journal cursor")?;
        let crc = doc
            .at("cursor.crc")
            .and_then(Value::as_int)
            .and_then(|c| u32::try_from(c).ok())
            .ok_or("analysis state is missing its journal cursor")?;
        for lint in &mut self.lints {
            let state = doc
                .at(&format!("lints.{}", lint.name()))
                .ok_or_else(|| format!("analysis state has no entry for lint '{}'", lint.name()))?;
            lint.restore(state)?;
        }
        Ok(JournalCursor {
            offset: offset as u64,
            crc,
        })
    }
}

/// What one engine-driven check produced.
#[derive(Debug)]
pub struct CheckOutcome {
    /// All findings, in the stable report order.
    pub diagnostics: Vec<Diagnostic>,
    /// `true` when recorded state was resumed; `false` on a full scan.
    pub incremental: bool,
    /// Why the check fell back to a full scan, when it did.
    pub fallback: Option<String>,
    /// Journal records replayed past the cursor (incremental runs).
    pub delta_records: usize,
}

/// Builds an engine for an already-loaded database: resume from
/// recorded state when every soundness guard holds, full-scan (with a
/// reason) otherwise.
fn resume_or_rescan(db: &Database, report: &LoadReport) -> Result<(Engine, CheckOutcome), DbError> {
    let mut engine = Engine::new();
    match try_resume(&mut engine, db, report)? {
        Ok(replayed) => {
            let outcome = CheckOutcome {
                diagnostics: Vec::new(),
                incremental: true,
                fallback: None,
                delta_records: replayed,
            };
            Ok((engine, outcome))
        }
        Err(reason) => {
            // A failed restore may have left some lints half-filled;
            // start over from empty states.
            let mut engine = Engine::new();
            engine.full_scan(db);
            let outcome = CheckOutcome {
                diagnostics: Vec::new(),
                incremental: false,
                fallback: Some(reason),
                delta_records: 0,
            };
            Ok((engine, outcome))
        }
    }
}

/// The resume path: `Ok(Ok(n))` after replaying `n` suffix records,
/// `Ok(Err(reason))` when a guard demands a full scan, `Err` only for
/// I/O failures reading the journal.
fn try_resume(
    engine: &mut Engine,
    db: &Database,
    report: &LoadReport,
) -> Result<Result<usize, String>, DbError> {
    if !report.divergent.is_empty() {
        return Ok(Err(
            "checkpoint/journal divergence invalidated the recorded analysis state".into(),
        ));
    }
    let Some(dir) = db.attached_dir() else {
        return Ok(Err("database is not attached to a journal directory".into()));
    };
    if !db.has_collection(STATE_COLLECTION) {
        return Ok(Err(
            "no analysis state recorded yet (this full scan records one)".into(),
        ));
    }
    let Some(doc) = db.collection(STATE_COLLECTION).get(STATE_DOC_ID) else {
        return Ok(Err(
            "no analysis state recorded yet (this full scan records one)".into(),
        ));
    };
    let cursor = match engine.restore_state(&doc) {
        Ok(cursor) => cursor,
        Err(reason) => return Ok(Err(reason)),
    };
    if !cursor.is_valid(&dir)? {
        return Ok(Err("journal compacted past the analysis cursor".into()));
    }
    let replay = read_journal_from(&dir, cursor.offset)?;
    for op in &replay.ops {
        engine.apply_op(op);
    }
    Ok(Ok(replay.ops.len()))
}

/// `simart check --incremental`: strict-opens a database directory,
/// resumes from recorded analysis state (or full-scans with a stated
/// reason), runs the environment lints, and keeps the persisted state
/// fresh — after every full scan, and after replays long enough
/// (`STATE_REFRESH_DELTA` records) that the suffix would otherwise grow
/// without bound.
///
/// The load is strict ([`LoadOptions::strict`]): a database too
/// damaged to trust is an *error* on this path (callers print one line
/// and exit 2, exactly like `simart metrics`), while the plain,
/// damage-tolerant report stays available via `simart check`.
///
/// # Errors
///
/// Load failures (missing directory, corrupt checkpoint or blobs in
/// strict mode) and journal I/O failures.
pub fn check_dir_incremental(dir: &Path) -> Result<CheckOutcome, DbError> {
    let _span = observe::span(|| "analyze.check".to_owned());
    let (db, report) = Database::open_with(dir, &LoadOptions::strict())?;
    let (mut engine, mut outcome) = resume_or_rescan(&db, &report)?;
    engine.scan_environment(dir, &report);
    if !outcome.incremental || outcome.delta_records >= STATE_REFRESH_DELTA {
        record_state(&db, &engine)?;
    }
    outcome.diagnostics = engine.diagnostics();
    Ok(outcome)
}

/// In-process check over an already-attached database (the campaign
/// post-run path). Same resume-or-rescan logic as
/// [`check_dir_incremental`] but reuses the caller's handle — a second
/// attached handle on the same directory would double-journal — and
/// skips the environment lints (the journal is mid-flight by design
/// while the campaign still owns it; `simart check` covers the
/// directory once the campaign is done).
///
/// Does not persist state: the campaign checkpoints right after, which
/// moves the cursor, so the caller records state via [`record_state`]
/// once the checkpoint completes.
///
/// # Errors
///
/// Journal I/O failures while validating or replaying the cursor.
pub fn campaign_check(
    db: &Database,
    report: &LoadReport,
) -> Result<(Engine, CheckOutcome), DbError> {
    let _span = observe::span(|| "analyze.check".to_owned());
    let (engine, mut outcome) = resume_or_rescan(db, report)?;
    outcome.diagnostics = engine.diagnostics();
    Ok((engine, outcome))
}

/// Persists the engine's current state into [`STATE_COLLECTION`],
/// stamped with the journal cursor captured *before* the write (so
/// replay-from-cursor sees the state record itself first and skips
/// it).
///
/// # Errors
///
/// [`DbError::NotAttached`] for in-memory databases; journal append
/// failures otherwise.
pub fn record_state(db: &Database, engine: &Engine) -> Result<(), DbError> {
    let cursor = db.journal_cursor()?.ok_or(DbError::NotAttached)?;
    db.collection(STATE_COLLECTION)
        .upsert(engine.state_doc(cursor))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::lint_database;
    use simart_db::Value;

    fn artifact(id: &str, hash: &str) -> Value {
        Value::map([
            ("_id", Value::from(id)),
            ("hash", Value::from(hash)),
            ("inputs", Value::array([])),
        ])
    }

    #[test]
    fn full_scan_matches_monolithic_lint() {
        let db = Database::in_memory();
        let a = "6ba7b810-9dad-11d1-80b4-00c04fd430c1";
        let b = "6ba7b810-9dad-11d1-80b4-00c04fd430c2";
        db.collection("artifacts")
            .insert(artifact(a, "h1"))
            .unwrap();
        db.collection("artifacts")
            .insert(artifact(b, "h1"))
            .unwrap();
        db.collection("runs")
            .insert(Value::map([
                ("_id", Value::from("r1")),
                ("status", Value::from("created")),
                ("inputs", Value::array([Value::from("missing-input")])),
            ]))
            .unwrap();
        let mut engine = Engine::new();
        engine.full_scan(&db);
        assert_eq!(engine.diagnostics(), lint_database(&db));
        assert_eq!(engine.diagnostics().len(), 2, "{:?}", engine.diagnostics());
    }

    #[test]
    fn state_round_trips_through_a_document() {
        let db = Database::in_memory();
        let a = "6ba7b810-9dad-11d1-80b4-00c04fd430c1";
        db.collection("artifacts")
            .insert(artifact(a, "h1"))
            .unwrap();
        db.collection("quarantine")
            .insert(Value::map([
                ("_id", Value::from("r9")),
                ("released", Value::from(false)),
            ]))
            .unwrap();
        let mut engine = Engine::new();
        engine.full_scan(&db);
        let doc = engine.state_doc(JournalCursor { offset: 7, crc: 9 });
        // Round-trip through the on-disk JSON form, like a real reload.
        let doc = simart_db::json::from_json(&simart_db::json::to_json(&doc)).unwrap();
        let mut restored = Engine::new();
        let cursor = restored.restore_state(&doc).expect("restore");
        assert_eq!(cursor, JournalCursor { offset: 7, crc: 9 });
        assert_eq!(restored.diagnostics(), engine.diagnostics());
        assert!(!restored.diagnostics().is_empty());
    }

    #[test]
    fn version_skew_is_a_stated_fallback() {
        let mut engine = Engine::new();
        engine.full_scan(&Database::in_memory());
        let mut doc = engine.state_doc(JournalCursor { offset: 0, crc: 0 });
        doc.set_at("version", Value::from(999i64));
        let err = Engine::new().restore_state(&doc).unwrap_err();
        assert!(err.contains("incompatible engine version"), "{err}");
    }

    #[test]
    fn deltas_skip_the_state_collection_and_unusable_records() {
        let mut engine = Engine::new();
        engine.full_scan(&Database::in_memory());
        engine.apply_op(&JournalOp::Insert {
            collection: STATE_COLLECTION.into(),
            doc: Value::map([("_id", Value::from("engine"))]),
        });
        engine.apply_op(&JournalOp::Insert {
            collection: "runs".into(),
            doc: Value::map([("status", Value::from("created"))]), // no _id
        });
        engine.apply_op(&JournalOp::BlobRemove {
            key: "not-hex".into(),
        });
        assert!(engine.diagnostics().is_empty());
    }
}
