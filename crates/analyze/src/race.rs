//! Vector-clock happens-before race detection over recorded
//! [`tracepoint`] event traces.
//!
//! The instrumented crates (the `parking_lot`/`crossbeam` shims and
//! `simart-tasks`) record synchronization events; [`check`] replays a
//! drained trace, builds the happens-before relation, and flags every
//! pair of conflicting `Read`/`Write` accesses to the same object that
//! the relation leaves unordered.
//!
//! Happens-before edges, besides program order within a thread:
//!
//! * `LockRelease(o)` → the next `LockAcquire(o)`;
//! * `ChanSend(o)` / `Enqueue(o)` → the matching `ChanRecv(o)` /
//!   `Dequeue(o)` (per-object FIFO pairing);
//! * `RemoteDispatch(t)` → the matching `RemoteAck(t)` (the
//!   coordinator's state up to writing the dispatch frame is visible
//!   to whoever accepts the worker's result);
//! * `RemoteReconnect(s)` is a join-then-publish barrier on session
//!   `s`: each reconnect observes everything every earlier
//!   `RemoteReconnect(s)` had seen and publishes its own state for
//!   later ones (connection hand-offs of one session are totally
//!   ordered);
//! * `LeaseGrant(t)` → the matching `LeaseRevoke(t)` (same FIFO
//!   pairing: the worker's state up to taking the lease is visible to
//!   the supervisor that revokes it);
//! * `TaskSubmit(t)` / `TaskRequeue(t)` / `TaskFinish(t)` → the next
//!   `TaskStart(t)`.
//!
//! The checker itself is a pure function over `&[Event]`, so it works
//! on hand-built traces without any feature flag; capturing a *live*
//! trace requires the `race-detect` feature (which turns on
//! `tracepoint/enabled`).

use crate::diag::{Diagnostic, LintCode};
use std::collections::{BTreeMap, HashMap, VecDeque};
use tracepoint::{Event, ObjectId, Op, ThreadId};

/// A pair of conflicting accesses left unordered by happens-before.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Race {
    /// The object both accesses touched.
    pub object: ObjectId,
    /// The earlier access (by recording order).
    pub first: Event,
    /// The later access.
    pub second: Event,
}

/// A thread's vector clock: its knowledge of every thread's progress.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct VClock(BTreeMap<ThreadId, u64>);

impl VClock {
    fn get(&self, thread: ThreadId) -> u64 {
        self.0.get(&thread).copied().unwrap_or(0)
    }

    fn tick(&mut self, thread: ThreadId) {
        *self.0.entry(thread).or_insert(0) += 1;
    }

    fn join(&mut self, other: &VClock) {
        for (thread, clock) in &other.0 {
            let mine = self.0.entry(*thread).or_insert(0);
            *mine = (*mine).max(*clock);
        }
    }
}

/// One recorded `Read`/`Write`, reduced to its epoch: the accessing
/// thread and that thread's own clock component at access time.
#[derive(Debug, Clone, Copy)]
struct Access {
    thread: ThreadId,
    clock: u64,
    write: bool,
    event: Event,
}

/// Replays a trace and returns every conflicting unordered access pair
/// (two accesses to the same object, at least one a write, on different
/// threads, with neither happening-before the other).
pub fn check(events: &[Event]) -> Vec<Race> {
    let mut events: Vec<Event> = events.to_vec();
    events.sort_by_key(|e| e.seq);

    let mut clocks: HashMap<ThreadId, VClock> = HashMap::new();
    let mut lock_release: HashMap<ObjectId, VClock> = HashMap::new();
    let mut queued: HashMap<ObjectId, VecDeque<VClock>> = HashMap::new();
    let mut task_origin: HashMap<ObjectId, VClock> = HashMap::new();
    let mut session_origin: HashMap<ObjectId, VClock> = HashMap::new();
    let mut accesses: HashMap<ObjectId, Vec<Access>> = HashMap::new();
    let mut races = Vec::new();

    for event in events {
        let mut vc = clocks.remove(&event.thread).unwrap_or_default();
        match event.op {
            Op::LockAcquire(o) => {
                if let Some(release) = lock_release.get(&o) {
                    vc.join(release);
                }
            }
            Op::LockRelease(o) => {
                lock_release.insert(o, vc.clone());
            }
            Op::ChanSend(o) | Op::Enqueue(o) | Op::LeaseGrant(o) | Op::RemoteDispatch(o) => {
                queued.entry(o).or_default().push_back(vc.clone());
            }
            Op::ChanRecv(o) | Op::Dequeue(o) | Op::LeaseRevoke(o) | Op::RemoteAck(o) => {
                if let Some(sent) = queued.get_mut(&o).and_then(VecDeque::pop_front) {
                    vc.join(&sent);
                }
            }
            Op::RemoteReconnect(o) => {
                let origin = session_origin.entry(o).or_default();
                vc.join(&origin.clone());
                origin.join(&vc);
            }
            Op::TaskSubmit(o) | Op::TaskRequeue(o) | Op::TaskFinish(o) => {
                task_origin.entry(o).or_default().join(&vc);
            }
            Op::TaskStart(o) => {
                if let Some(origin) = task_origin.get(&o) {
                    vc.join(origin);
                }
            }
            Op::Read(o) | Op::Write(o) => {
                let write = matches!(event.op, Op::Write(_));
                let history = accesses.entry(o).or_default();
                for prior in history.iter() {
                    let conflicting = prior.thread != event.thread && (prior.write || write);
                    // `prior` happened-before this access iff this
                    // thread has seen the prior thread progress at
                    // least to the prior access's epoch.
                    let ordered = vc.get(prior.thread) >= prior.clock;
                    if conflicting && !ordered {
                        races.push(Race {
                            object: o,
                            first: prior.event,
                            second: event,
                        });
                    }
                }
                // Epoch: tick first so clock is nonzero and unique per
                // access on this thread.
                vc.tick(event.thread);
                history.push(Access {
                    thread: event.thread,
                    clock: vc.get(event.thread),
                    write,
                    event,
                });
                clocks.insert(event.thread, vc);
                continue;
            }
        }
        vc.tick(event.thread);
        clocks.insert(event.thread, vc);
    }
    races
}

/// Converts races to SA0101 diagnostics (one per race, deterministic
/// order by object then sequence numbers).
pub fn race_diagnostics(races: &[Race]) -> Vec<Diagnostic> {
    let mut races: Vec<Race> = races.to_vec();
    races.sort_by_key(|r| (r.object, r.first.seq, r.second.seq));
    races
        .iter()
        .map(|race| {
            let label = tracepoint::lookup_label(race.object)
                .map(|l| format!(" ({l})"))
                .unwrap_or_default();
            Diagnostic::new(
                LintCode::DataRace,
                format!("object:{}{label}", race.object),
                format!(
                    "unsynchronized {} by thread {} (seq {}) conflicts with {} by thread {} \
                     (seq {})",
                    race.first.op,
                    race.first.thread,
                    race.first.seq,
                    race.second.op,
                    race.second.thread,
                    race.second.seq,
                ),
            )
        })
        .collect()
}

/// Captures two live traces and checks the detector both fires and
/// stays silent: a deliberately racy pair of threads writing one object
/// with no synchronization must be flagged, and the same writes guarded
/// by a (traced) mutex must not be.
///
/// # Errors
///
/// Returns a description of whichever expectation failed.
#[cfg(feature = "race-detect")]
pub fn self_test() -> Result<String, String> {
    use std::sync::Arc;

    // Phase 1: deliberately racy — no synchronization between writers.
    tracepoint::enable();
    let target = tracepoint::fresh_id();
    let writers: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                tracepoint::record(Op::Write(target));
            })
        })
        .collect();
    for writer in writers {
        writer
            .join()
            .map_err(|_| "racy writer panicked".to_owned())?;
    }
    let racy: Vec<Event> = tracepoint::drain()
        .into_iter()
        .filter(|e| e.op.object() == target)
        .collect();
    let races = check(&racy);
    if !races.iter().any(|r| r.object == target) {
        tracepoint::disable();
        return Err(format!(
            "deliberately racy trace was not flagged (trace: {racy:?})"
        ));
    }

    // Phase 2: the same two writes, each under a traced mutex — the
    // lock release/acquire edge orders them.
    let guarded = tracepoint::fresh_id();
    let lock = Arc::new(parking_lot::Mutex::new(()));
    let (tx, rx) = std::sync::mpsc::channel();
    let writers: Vec<_> = (0..2)
        .map(|_| {
            let lock = Arc::clone(&lock);
            let tx = tx.clone();
            std::thread::spawn(move || {
                let guard = lock.lock();
                tracepoint::record(Op::Write(guarded));
                drop(guard);
                let _ = tx.send(tracepoint::current_thread());
            })
        })
        .collect();
    for writer in writers {
        writer
            .join()
            .map_err(|_| "guarded writer panicked".to_owned())?;
    }
    let threads: Vec<tracepoint::ThreadId> = rx.try_iter().collect();
    let synced: Vec<Event> = tracepoint::drain()
        .into_iter()
        .filter(|e| threads.contains(&e.thread))
        .collect();
    tracepoint::disable();
    let races = check(&synced);
    if let Some(race) = races.iter().find(|r| r.object == guarded) {
        return Err(format!(
            "synchronized trace was wrongly flagged: {race:?} (trace: {synced:?})"
        ));
    }
    Ok("race self-test: racy trace flagged, synchronized trace clean".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, thread: ThreadId, op: Op) -> Event {
        Event { seq, thread, op }
    }

    #[test]
    fn unsynchronized_conflicting_writes_race() {
        let races = check(&[ev(0, 0, Op::Write(7)), ev(1, 1, Op::Write(7))]);
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].object, 7);
        let diags = race_diagnostics(&races);
        assert_eq!(diags[0].code, LintCode::DataRace);
        assert!(diags[0].message.contains("thread 0"));
    }

    #[test]
    fn read_read_is_not_a_race() {
        assert!(check(&[ev(0, 0, Op::Read(7)), ev(1, 1, Op::Read(7))]).is_empty());
    }

    #[test]
    fn distinct_objects_do_not_race() {
        assert!(check(&[ev(0, 0, Op::Write(7)), ev(1, 1, Op::Write(8))]).is_empty());
    }

    #[test]
    fn lock_orders_critical_sections() {
        let trace = [
            ev(0, 0, Op::LockAcquire(1)),
            ev(1, 0, Op::Write(7)),
            ev(2, 0, Op::LockRelease(1)),
            ev(3, 1, Op::LockAcquire(1)),
            ev(4, 1, Op::Write(7)),
            ev(5, 1, Op::LockRelease(1)),
        ];
        assert!(check(&trace).is_empty());
    }

    #[test]
    fn lock_on_a_different_object_does_not_order() {
        let trace = [
            ev(0, 0, Op::LockAcquire(1)),
            ev(1, 0, Op::Write(7)),
            ev(2, 0, Op::LockRelease(1)),
            ev(3, 1, Op::LockAcquire(2)),
            ev(4, 1, Op::Write(7)),
            ev(5, 1, Op::LockRelease(2)),
        ];
        assert_eq!(check(&trace).len(), 1);
    }

    #[test]
    fn channel_send_orders_receiver() {
        let trace = [
            ev(0, 0, Op::Write(7)),
            ev(1, 0, Op::ChanSend(2)),
            ev(2, 1, Op::ChanRecv(2)),
            ev(3, 1, Op::Write(7)),
        ];
        assert!(check(&trace).is_empty());
    }

    #[test]
    fn task_submit_orders_task_start() {
        let trace = [
            ev(0, 0, Op::Write(7)),
            ev(1, 0, Op::TaskSubmit(3)),
            ev(2, 1, Op::TaskStart(3)),
            ev(3, 1, Op::Read(7)),
        ];
        assert!(check(&trace).is_empty());
    }

    #[test]
    fn retry_requeue_orders_the_next_attempt() {
        let trace = [
            ev(0, 1, Op::Write(7)),
            ev(1, 1, Op::TaskRequeue(3)),
            ev(2, 2, Op::TaskStart(3)),
            ev(3, 2, Op::Write(7)),
        ];
        assert!(check(&trace).is_empty());
    }

    #[test]
    fn lease_grant_orders_the_revoking_supervisor() {
        // Worker writes shared state, takes the lease; the supervisor
        // revokes the lease and reads — ordered, no race.
        let trace = [
            ev(0, 0, Op::Write(7)),
            ev(1, 0, Op::LeaseGrant(4)),
            ev(2, 1, Op::LeaseRevoke(4)),
            ev(3, 1, Op::Read(7)),
        ];
        assert!(check(&trace).is_empty());
        // Without the grant edge the same accesses race.
        let unordered = [
            ev(0, 0, Op::Write(7)),
            ev(1, 1, Op::LeaseRevoke(4)),
            ev(2, 1, Op::Read(7)),
        ];
        assert_eq!(check(&unordered).len(), 1);
    }

    #[test]
    fn remote_dispatch_orders_the_acking_coordinator() {
        // Dispatching thread writes run state before putting the task
        // on the wire; the reader thread that accepts the worker's
        // result reads it — ordered by the dispatch→ack edge.
        let trace = [
            ev(0, 0, Op::Write(7)),
            ev(1, 0, Op::RemoteDispatch(4)),
            ev(2, 1, Op::RemoteAck(4)),
            ev(3, 1, Op::Read(7)),
        ];
        assert!(check(&trace).is_empty());
        // Without the dispatch edge the same accesses race.
        let unordered = [
            ev(0, 0, Op::Write(7)),
            ev(1, 1, Op::RemoteAck(4)),
            ev(2, 1, Op::Read(7)),
        ];
        assert_eq!(check(&unordered).len(), 1);
    }

    #[test]
    fn remote_reconnect_orders_session_handoffs() {
        // The thread that served the session's first connection writes
        // shared state and hits the reconnect barrier; the thread that
        // resumes the session hits the same barrier before reading —
        // ordered, no race.
        let trace = [
            ev(0, 0, Op::Write(7)),
            ev(1, 0, Op::RemoteReconnect(9)),
            ev(2, 1, Op::RemoteReconnect(9)),
            ev(3, 1, Op::Read(7)),
        ];
        assert!(check(&trace).is_empty());
        // A reconnect barrier on a *different* session does not order.
        let unordered = [
            ev(0, 0, Op::Write(7)),
            ev(1, 0, Op::RemoteReconnect(9)),
            ev(2, 1, Op::RemoteReconnect(8)),
            ev(3, 1, Op::Read(7)),
        ];
        assert_eq!(check(&unordered).len(), 1);
    }

    #[test]
    fn write_after_unrelated_recv_still_races() {
        // Receiver joined a clock, but the racing writer never sent.
        let trace = [
            ev(0, 0, Op::ChanSend(2)),
            ev(1, 1, Op::ChanRecv(2)),
            ev(2, 1, Op::Write(7)),
            ev(3, 2, Op::Write(7)),
        ];
        assert_eq!(check(&trace).len(), 1);
    }

    #[cfg(feature = "race-detect")]
    #[test]
    fn live_self_test_passes() {
        self_test().expect("race self-test");
    }
}
