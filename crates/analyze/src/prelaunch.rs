//! Pre-launch validation of experiment cross-products.
//!
//! A cross-product axis that names workloads/resources must only
//! reference entries present in the resource catalog — a typo'd suite
//! name should fail `simart check` (and the campaign prelaunch gate)
//! before any simulation time is spent, not 40 minutes into a batch.

use crate::diag::{sort_diagnostics, Diagnostic, LintCode};
use simart_resources::Catalog;

/// Axis names treated as resource references. Other axes ("cpu",
/// "cores", …) are free-form parameters and are not checked.
pub const RESOURCE_AXES: &[&str] = &["resource", "benchmark", "suite", "workload", "image"];

/// Validates a cross-product's axes against the catalog: every value of
/// a [resource axis](RESOURCE_AXES) must name a catalog resource
/// (SA0010).
pub fn validate_axes(axes: &[(String, Vec<String>)], catalog: &Catalog) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    for (axis, values) in axes {
        if !RESOURCE_AXES.contains(&axis.as_str()) {
            continue;
        }
        for value in values {
            if catalog.find(value).is_none() {
                diagnostics.push(Diagnostic::new(
                    LintCode::UnknownResource,
                    format!("axis:{axis}"),
                    format!("axis '{axis}' references '{value}', which is not in the catalog"),
                ));
            }
        }
    }
    sort_diagnostics(&mut diagnostics);
    diagnostics
}

#[cfg(test)]
mod tests {
    use super::*;

    fn axes(pairs: &[(&str, &[&str])]) -> Vec<(String, Vec<String>)> {
        pairs
            .iter()
            .map(|(a, vs)| {
                (
                    (*a).to_owned(),
                    vs.iter().map(|v| (*v).to_owned()).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn catalog_resources_pass() {
        let catalog = Catalog::standard();
        let diags = validate_axes(&axes(&[("benchmark", &["npb", "parsec"])]), &catalog);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unknown_resources_are_flagged() {
        let catalog = Catalog::standard();
        let diags = validate_axes(&axes(&[("suite", &["npb", "spec-2038"])]), &catalog);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::UnknownResource);
        assert!(diags[0].message.contains("spec-2038"));
    }

    #[test]
    fn non_resource_axes_are_ignored() {
        let catalog = Catalog::standard();
        let diags = validate_axes(
            &axes(&[("cpu", &["kvm", "atomic"]), ("cores", &["1", "2"])]),
            &catalog,
        );
        assert!(diags.is_empty());
    }
}
