//! Equivalence properties for the incremental lint engine.
//!
//! The contract `simart check --incremental` rests on: a warm
//! [`Engine`] fed journal deltas produces **byte-identical** reports to
//! a fresh full scan, after every single mutation — and the persisted
//! state round-trips through the `analysis_state` collection, survives
//! reopen, and is loudly invalidated when a checkpoint compacts the
//! journal past its cursor.

use proptest::collection::vec;
use proptest::prelude::*;
use simart_analyze::diag::render_text;
use simart_analyze::{check_dir_incremental, lint, Engine};
use simart_artifact::Uuid;
use simart_db::{read_journal_from, BlobKey, Database, Value};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn unique_dir(tag: &str) -> PathBuf {
    let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "simart-incr-props-{}-{tag}-{seq}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A mutation against the database, drawn from a pool small enough that
/// collisions (duplicate hashes, re-upserts, deletes of live docs) are
/// common and large enough to hit every lint's delta path.
#[derive(Debug, Clone)]
enum Op {
    UpsertArtifact {
        slot: u8,
        inputs: Vec<u8>,
        hash: u8,
        payload: u8,
    },
    BadArtifact {
        slot: u8,
    },
    DeleteArtifact {
        slot: u8,
    },
    UpsertRun {
        slot: u8,
        status: u8,
        events: u8,
        hash: u8,
        inputs: Vec<u8>,
    },
    DeleteRun {
        slot: u8,
    },
    Letter {
        slot: u8,
        released: bool,
    },
    DeleteLetter {
        slot: u8,
    },
    BlobPut {
        content: u8,
    },
    BlobRemove {
        content: u8,
    },
    DropRuns,
}

fn op_strategy() -> BoxedStrategy<Op> {
    let inputs = || vec(any::<u8>(), 0..4);
    prop_oneof![
        (any::<u8>(), inputs(), any::<u8>(), any::<u8>()).prop_map(
            |(slot, inputs, hash, payload)| Op::UpsertArtifact {
                slot,
                inputs,
                hash,
                payload
            }
        ),
        any::<u8>().prop_map(|slot| Op::BadArtifact { slot }),
        any::<u8>().prop_map(|slot| Op::DeleteArtifact { slot }),
        (
            (any::<u8>(), any::<u8>()),
            (any::<u8>(), any::<u8>(), inputs())
        )
            .prop_map(|((slot, status), (events, hash, inputs))| Op::UpsertRun {
                slot,
                status,
                events,
                hash,
                inputs
            }),
        any::<u8>().prop_map(|slot| Op::DeleteRun { slot }),
        (any::<u8>(), any::<bool>()).prop_map(|(slot, released)| Op::Letter { slot, released }),
        any::<u8>().prop_map(|slot| Op::DeleteLetter { slot }),
        any::<u8>().prop_map(|content| Op::BlobPut { content }),
        any::<u8>().prop_map(|content| Op::BlobRemove { content }),
        Just(Op::DropRuns),
    ]
    .boxed()
}

fn artifact_id(slot: u8) -> String {
    Uuid::new_v3("incr-props", &format!("artifact-{}", slot % 6)).to_string()
}

fn run_id(slot: u8) -> String {
    format!("run-{}", slot % 6)
}

/// Input slots resolve mostly to pool artifacts, sometimes to a ghost
/// uuid (dangling reference) and sometimes to a non-uuid string.
fn input_ref(slot: u8) -> String {
    match slot % 9 {
        0..=5 => artifact_id(slot),
        6 | 7 => Uuid::new_v3("incr-props", &format!("ghost-{}", slot % 2)).to_string(),
        _ => "not-a-uuid".to_owned(),
    }
}

fn blob_content(content: u8) -> [u8; 1] {
    [content % 5]
}

/// Payload selector: none, a valid blob-key hex (which may or may not
/// be in the store), or garbage that is not a key at all.
fn payload_value(selector: u8) -> Option<Value> {
    match selector % 3 {
        0 => None,
        1 => Some(Value::from(
            BlobKey::for_content(&blob_content(selector)).to_hex(),
        )),
        _ => Some(Value::from("not-a-blob-key")),
    }
}

const STATUSES: [&str; 7] = [
    "created",
    "queued",
    "running",
    "done",
    "failed",
    "retrying",
    "quarantined",
];

/// Event-log shapes covering clean replays and every replay lint.
fn run_events(selector: u8) -> Vec<&'static str> {
    match selector % 6 {
        0 => vec![],
        1 => vec!["status:queued", "status:running", "status:done"],
        2 => vec!["status:queued", "status:done"],
        3 => vec!["status:queued", "status:running", "status:retrying"],
        4 => vec!["status:queued", "status:running", "remote-dispatch:1:g1"],
        _ => vec!["status:bogus"],
    }
}

fn apply(db: &Database, op: &Op) {
    match op {
        Op::UpsertArtifact {
            slot,
            inputs,
            hash,
            payload,
        } => {
            let mut doc = Value::map([
                ("_id", Value::from(artifact_id(*slot))),
                ("name", Value::from("prop")),
                ("kind", Value::from("binary")),
                ("hash", Value::from(format!("hash-{}", hash % 4))),
                (
                    "inputs",
                    Value::array(inputs.iter().map(|i| Value::from(input_ref(*i)))),
                ),
            ]);
            if let Some(payload) = payload_value(*payload) {
                doc.set_at("payload", payload);
            }
            db.collection("artifacts")
                .upsert(doc)
                .expect("upsert artifact");
        }
        Op::BadArtifact { slot } => {
            db.collection("artifacts")
                .upsert(Value::map([
                    ("_id", Value::from(format!("bad-{}", slot % 3))),
                    ("hash", Value::from("hash-bad")),
                ]))
                .expect("upsert bad artifact");
        }
        Op::DeleteArtifact { slot } => {
            db.collection("artifacts").delete(&artifact_id(*slot));
        }
        Op::UpsertRun {
            slot,
            status,
            events,
            hash,
            inputs,
        } => {
            let mut doc = Value::map([
                ("_id", Value::from(run_id(*slot))),
                ("hash", Value::from(format!("rh-{}", hash % 4))),
                (
                    "status",
                    Value::from(STATUSES[*status as usize % STATUSES.len()]),
                ),
                (
                    "inputs",
                    Value::array(inputs.iter().map(|i| Value::from(input_ref(*i)))),
                ),
                (
                    "events",
                    Value::array(run_events(*events).into_iter().map(Value::from)),
                ),
            ]);
            if let Some(payload) = payload_value(*hash) {
                doc.set_at("results.payload", payload);
            }
            db.collection("runs").upsert(doc).expect("upsert run");
        }
        Op::DeleteRun { slot } => {
            db.collection("runs").delete(&run_id(*slot));
        }
        Op::Letter { slot, released } => {
            db.collection("quarantine")
                .upsert(Value::map([
                    ("_id", Value::from(run_id(*slot))),
                    ("released", Value::from(*released)),
                ]))
                .expect("upsert dead letter");
        }
        Op::DeleteLetter { slot } => {
            db.collection("quarantine").delete(&run_id(*slot));
        }
        Op::BlobPut { content } => {
            db.blobs().put(blob_content(*content).to_vec());
        }
        Op::BlobRemove { content } => {
            db.blobs()
                .remove(BlobKey::for_content(&blob_content(*content)));
        }
        Op::DropRuns => {
            db.drop_collection("runs");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// THE equivalence property: after every mutation, a warm engine
    /// that only saw journal deltas renders the same report, byte for
    /// byte, as a fresh engine that scanned the whole database.
    #[test]
    fn incremental_report_is_byte_identical_to_full_scan(ops in vec(op_strategy(), 1..25)) {
        let dir = unique_dir("equiv");
        let db = Database::open(&dir).expect("open attached database");
        let mut warm = Engine::new();
        warm.full_scan(&db);
        let mut offset = 0u64;
        for op in &ops {
            apply(&db, op);
            let replay = read_journal_from(&dir, offset).expect("read journal suffix");
            for jop in &replay.ops {
                warm.apply_op(jop);
            }
            offset = replay.valid_bytes;
            let mut fresh = Engine::new();
            fresh.full_scan(&db);
            prop_assert_eq!(
                render_text(&warm.diagnostics()),
                render_text(&fresh.diagnostics()),
                "after {op:?}"
            );
        }
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The persisted-state path: the first check records state after a
/// loud full scan, the next check resumes from the cursor and still
/// matches a fresh `lint_dir`, a checkpoint compacts the journal past
/// the cursor (loud fallback again), and the re-recorded state resumes
/// silently afterwards.
#[test]
fn persisted_state_resumes_and_checkpoint_invalidates_the_cursor() {
    let dir = unique_dir("persist");
    let ghost = Uuid::new_v3("incr-props", "persist-ghost").to_string();
    {
        let db = Database::open(&dir).expect("open attached database");
        db.collection("runs")
            .upsert(Value::map([
                ("_id", Value::from("run-a")),
                ("hash", Value::from("rh-dup")),
                ("status", Value::from("created")),
            ]))
            .expect("seed run");
        db.collection("runs")
            .upsert(Value::map([
                ("_id", Value::from("run-b")),
                ("hash", Value::from("rh-dup")),
                ("status", Value::from("created")),
            ]))
            .expect("seed run");
    }

    let full = lint::lint_dir(&dir).expect("full lint");
    let first = check_dir_incremental(&dir).expect("first check");
    assert!(!first.incremental);
    assert_eq!(
        first.fallback.as_deref(),
        Some("no analysis state recorded yet (this full scan records one)")
    );
    assert_eq!(render_text(&first.diagnostics), render_text(&full));

    // A dangling input lands in the journal; the resumed check picks it
    // up from the cursor and agrees with a fresh full scan.
    {
        let db = Database::open(&dir).expect("reopen attached database");
        db.collection("runs")
            .upsert(Value::map([
                ("_id", Value::from("run-c")),
                ("hash", Value::from("rh-c")),
                ("status", Value::from("created")),
                ("inputs", Value::array([Value::from(ghost.as_str())])),
            ]))
            .expect("seed defect");
    }
    let full = lint::lint_dir(&dir).expect("full lint after mutation");
    let second = check_dir_incremental(&dir).expect("second check");
    assert!(
        second.incremental,
        "state recorded by the first check resumes"
    );
    assert!(second.fallback.is_none());
    assert!(second.delta_records > 0);
    assert_eq!(render_text(&second.diagnostics), render_text(&full));

    // Checkpointing folds and truncates the journal: the recorded
    // cursor no longer names a journal prefix, so the check says so and
    // rescans — then the state it re-records resumes again.
    {
        let db = Database::open(&dir).expect("reopen for checkpoint");
        db.checkpoint().expect("checkpoint");
    }
    let third = check_dir_incremental(&dir).expect("post-checkpoint check");
    assert!(!third.incremental);
    assert_eq!(
        third.fallback.as_deref(),
        Some("journal compacted past the analysis cursor")
    );
    let full = lint::lint_dir(&dir).expect("full lint after checkpoint");
    assert_eq!(render_text(&third.diagnostics), render_text(&full));

    let fourth = check_dir_incremental(&dir).expect("final check");
    assert!(fourth.incremental);
    assert!(fourth.fallback.is_none());
    assert_eq!(render_text(&fourth.diagnostics), render_text(&full));
    let _ = std::fs::remove_dir_all(&dir);
}
