//! Workspace umbrella for the `simart` project.
//!
//! This package exists to host the cross-crate integration tests in
//! `tests/` and the runnable examples in `examples/`; the library API
//! lives in the [`simart`] crate and its substrate crates.

pub use simart;
pub use simart_artifact;
pub use simart_db;
pub use simart_fullsim;
pub use simart_gpu;
pub use simart_resources;
pub use simart_run;
pub use simart_tasks;
