//! Design-space exploration with the out-of-order CPU model: the kind
//! of architectural study the framework exists to make reproducible.
//! Sweeps ROB size and issue width over a memory-bound and a
//! compute-bound workload.
//!
//! ```text
//! cargo run --example o3_explorer --release
//! ```

use simart::report::Table;
use simart::sim::cpu::{CpuModel, O3Config, O3Cpu};
use simart::sim::isa::InstStream;
use simart::sim::mem::{build, MemKind};
use simart::sim::workload::parsec_profile;

fn main() {
    let workloads = [
        ("streamcluster", "memory-bound"),
        ("swaptions", "compute-bound"),
    ];
    let mut table = Table::new(
        "O3 design space: IPC by ROB size and issue width",
        &["workload", "character", "ROB", "width", "IPC"],
    );
    for (app, character) in workloads {
        let profile = parsec_profile(app).expect("known app");
        for rob_size in [32, 96, 192, 384] {
            for width in [2u64, 4, 8] {
                let mut cpu = O3Cpu::new(O3Config {
                    rob_size,
                    fetch_width: width,
                    issue_width: width,
                    ..O3Config::default()
                });
                let mut mem = build(MemKind::classic_coherent(), 1);
                let mut stream =
                    InstStream::new(&format!("o3x/{app}"), 0, profile.mix.clone(), profile.addrs);
                let result = cpu.run(0, &mut stream, 40_000, mem.as_mut());
                table.row(&[
                    app.to_owned(),
                    character.to_owned(),
                    rob_size.to_string(),
                    width.to_string(),
                    format!("{:.3}", 1.0 / result.cpi()),
                ]);
            }
        }
    }
    println!("{}", table.render());
    println!(
        "The memory-bound workload keeps gaining from a deeper ROB (more loads in flight);\n\
         the compute-bound one saturates early and wants issue width instead — the classic\n\
         trade-off, regenerable deterministically on every run."
    );
}
