//! GPU register-allocator exploration (use-case 3 in miniature):
//! sweep one synchronization-heavy and one throughput-friendly kernel
//! across both allocators and inspect *why* each wins.
//!
//! ```text
//! cargo run --example gpu_regalloc --release
//! ```

use simart::gpu::alloc::AllocPolicy;
use simart::gpu::{workloads, Gpu};
use simart::report::Table;
use simart::resources::environment::RocmStack;

fn main() {
    // The environment resource validates the tool-chain the GPU model
    // needs — the check the GCN-docker image performs for real users.
    let env = RocmStack::gcn_docker();
    println!("build environment: {env}\n");

    let gpu = Gpu::table3();
    let mut table = Table::new(
        "Register allocators head to head",
        &[
            "kernel",
            "allocator",
            "shader ticks",
            "occupancy/CU",
            "lock retries",
            "l1 hit rate",
        ],
    );
    for app in ["FAMutex", "MatrixTranspose", "fwd_pool", "2dshfl"] {
        assert!(env.supports(app), "{app} must build under {env}");
        let kernel = workloads::by_name(app).expect("known workload");
        for policy in [AllocPolicy::Simple, AllocPolicy::Dynamic] {
            let result = gpu.run(&kernel, policy);
            table.row(&[
                app.to_owned(),
                policy.to_string(),
                result.ticks.to_string(),
                result.peak_occupancy.to_string(),
                result.lock_retries.to_string(),
                format!("{:.2}", result.stats.scalar("gpu.mem.l1HitRate")),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "FAMutex: more resident wavefronts -> more spinning -> the lock chain dilates.\n\
         MatrixTranspose: independent tiles -> occupancy hides memory latency.\n\
         fwd_pool: per-wavefront tiles fit the L1 at low occupancy and thrash it at 40.\n\
         2dshfl: one wavefront total -> the allocators are indistinguishable."
    );
}
