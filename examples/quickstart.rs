//! Quickstart: the complete framework workflow in ~60 lines.
//!
//! Registers the artifacts of a tiny experiment, creates one
//! full-system run, executes it through the simulator, and queries the
//! database for the archived results.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use simart::db::Filter;
use simart::resources::{disks, kernels::KernelResource, suite};
use simart::sim::kernel::KernelVersion;
use simart::sim::os::OsImage;
use simart::sim::system::{Fidelity, SystemConfig};
use simart::sim::workload::{parsec_profile, InputSize};
use simart::tasks::SerialScheduler;
use simart::{ExecOutcome, Experiment};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. An experiment session: artifact registry + database.
    let experiment = Experiment::new("quickstart");

    // 2. Register every input as an artifact (steps 1-2 of the paper's
    //    workflow). The resource helpers fill in reproduction docs.
    let (simulator, repo, script, kernel, disk) = experiment.with_registry(|registry| {
        let [repo, binary, script] = suite::register_simulator(registry, "20.1.0.4", "X86")?;
        let kernel =
            suite::register_kernel(registry, &KernelResource::standard(KernelVersion::V5_4))?;
        let disk = suite::register_disk_image(registry, &disks::parsec_image(OsImage::Ubuntu2004))?;
        Ok((binary.id(), repo.id(), script.id(), kernel.id(), disk.id()))
    })?;
    println!("registered {} artifacts", experiment.artifact_count());

    // 3. Create a run object: one unique experiment.
    let run = experiment.create_fs_run(|b| {
        b.simulator(simulator, "gem5/build/X86/gem5.opt")
            .simulator_repo(repo)
            .run_script(script, "configs/run_parsec.py")
            .kernel(kernel, "vmlinux-5.4.51")
            .disk_image(disk, "disks/parsec-ubuntu-20.04.img")
            .param("blackscholes")
            .param("2")
    })?;
    println!("created run {} (hash {})", run.id(), run.run_hash());

    // 4-7. Launch it: boot the simulated system, run the benchmark,
    //       archive results.
    let summary = experiment.launch(vec![run], &SerialScheduler::new(), |run| {
        let profile = parsec_profile(&run.params()[0]).ok_or("unknown app")?;
        let config = SystemConfig::builder()
            .cores(run.params()[1].parse().map_err(|e| format!("{e}"))?)
            .os(OsImage::Ubuntu2004)
            .fidelity(Fidelity::Smoke)
            .build()
            .map_err(|e| e.to_string())?;
        let output = config
            .run_workload(&profile, InputSize::SimSmall)
            .map_err(|e| e.to_string())?;
        Ok(ExecOutcome {
            outcome: output.outcome.label().to_owned(),
            sim_ticks: output.sim_ticks,
            payload: output.stats.dump().into_bytes(),
            success: output.outcome.is_success(),
            events: vec![],
        })
    });
    println!("launch summary: {summary:?}");

    // 8. Query the database.
    for doc in experiment.query_runs(&Filter::eq("status", "done")) {
        let ticks = doc
            .at("results.simTicks")
            .and_then(simart::db::Value::as_int)
            .unwrap_or(0);
        println!(
            "run {} -> {} simulated ticks",
            doc.at("hash")
                .and_then(simart::db::Value::as_str)
                .unwrap_or("?"),
            ticks
        );
    }
    Ok(())
}
