//! The hack-back workflow: checkpoint once after boot, then run many
//! host-provided scripts against the same checkpoint — the resource
//! that makes iterating on workloads cheap.
//!
//! ```text
//! cargo run --example hack_back --release
//! ```

use simart::report::Table;
use simart::sim::system::{Fidelity, SystemConfig};
use simart::sim::workload::{parsec_profile, InputSize, PARSEC_APPS};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SystemConfig::builder()
        .cores(4)
        .fidelity(Fidelity::Smoke)
        .build()?;

    // Boot once, checkpoint.
    let checkpoint = config.checkpoint_boot()?;
    println!(
        "checkpoint captured on `{}` after {} boot instructions\n",
        checkpoint.config_label(),
        checkpoint.boot().instructions
    );

    // Run several "host scripts" (benchmarks) against the checkpoint,
    // and compare the simulator time saved vs. cold boots.
    let mut table = Table::new(
        "Checkpointed vs cold runs",
        &[
            "app",
            "exec time (sim s)",
            "host s (resume)",
            "host s (cold)",
            "saved",
        ],
    );
    let mut total_saved = 0.0;
    for app in PARSEC_APPS.iter().take(5) {
        let profile = parsec_profile(app).expect("known app");
        let resumed = config.run_workload_from(&checkpoint, &profile, InputSize::SimSmall)?;
        let cold = config.run_workload(&profile, InputSize::SimSmall)?;
        assert_eq!(
            resumed.sim_ticks, cold.sim_ticks,
            "resume changes nothing measured"
        );
        let saved = cold.host_seconds - resumed.host_seconds;
        total_saved += saved;
        table.row(&[
            (*app).to_owned(),
            format!("{:.4}", resumed.sim_seconds()),
            format!("{:.1}", resumed.host_seconds),
            format!("{:.1}", cold.host_seconds),
            format!("{saved:.1}s"),
        ]);
    }
    println!("{}", table.render());
    println!(
        "one checkpoint amortized over 5 workloads saves an estimated {total_saved:.0}s of \
         simulator host time — the reason the hack-back resource exists."
    );
    Ok(())
}
