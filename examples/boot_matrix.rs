//! Boot-test triage: which configurations can boot Linux, and how do
//! the failures cluster? (A compact view of use-case 2 / Figure 8.)
//!
//! ```text
//! cargo run --example boot_matrix --release
//! ```

use simart::report::Table;
use simart::sim::compat::{evaluate, figure8_configs, BootOutcome};
use simart::sim::cpu::CpuKind;
use simart::sim::system::{Fidelity, SystemConfig};
use simart::sim::ticks::format_ticks;

fn main() {
    // Fast triage: the compatibility model classifies all 480
    // configurations without detailed simulation.
    let mut table = Table::new(
        "Boot outcome counts per CPU model",
        &[
            "cpu",
            "success",
            "unsupported",
            "panic",
            "crash",
            "deadlock",
            "timeout",
        ],
    );
    for cpu in CpuKind::FIGURE8 {
        let mut counts = [0usize; 6];
        for config in figure8_configs().iter().filter(|c| c.cpu == cpu) {
            let idx = match evaluate(config) {
                BootOutcome::Success => 0,
                BootOutcome::Unsupported { .. } => 1,
                BootOutcome::KernelPanic { .. } => 2,
                BootOutcome::SimulatorCrash => 3,
                BootOutcome::ProtocolDeadlock => 4,
                BootOutcome::Timeout => 5,
            };
            counts[idx] += 1;
        }
        let mut row = vec![cpu.to_string()];
        row.extend(counts.iter().map(|c| c.to_string()));
        table.row(&row);
    }
    println!("{}", table.render());

    // Then simulate a few successful boots in detail to compare boot
    // times across CPU models.
    let mut timing = Table::new(
        "Detailed boot times (1 core, v5.4, systemd)",
        &[
            "cpu",
            "boot time (simulated)",
            "estimated simulator host time",
        ],
    );
    for cpu in CpuKind::FIGURE8 {
        let config = SystemConfig::builder()
            .cpu(cpu)
            .cores(1)
            .fidelity(Fidelity::Smoke)
            .build()
            .expect("valid");
        let output = config.boot_only().expect("boots");
        timing.row(&[
            cpu.to_string(),
            format_ticks(output.sim_ticks),
            format!("{:.1}s", output.host_seconds),
        ]);
    }
    println!("{}", timing.render());
    println!(
        "kvm fast-forwards boot at host speed; O3 pays ~9x the simulation cost of the \
         atomic CPU — why the paper checkpoints after boot."
    );
}
