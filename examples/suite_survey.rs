//! Survey of the other benchmark resources: NPB and GAPBS, run in both
//! full-system and syscall-emulation modes.
//!
//! ```text
//! cargo run --example suite_survey --release
//! ```

use simart::report::Table;
use simart::sim::system::{Fidelity, SystemConfig};
use simart::sim::workload::{gapbs_profile, npb_profile, InputSize, GAPBS_APPS, NPB_APPS};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SystemConfig::builder()
        .cores(8)
        .fidelity(Fidelity::Smoke)
        .build()?;

    let mut npb = Table::new(
        "NAS Parallel Benchmarks (8 cores, SE mode)",
        &["kernel", "insts", "exec time (sim s)", "IPC/core"],
    );
    for app in NPB_APPS {
        let profile = npb_profile(app).expect("known kernel");
        let out = config.run_se_workload(&profile, InputSize::SimSmall)?;
        npb.row(&[
            app.to_owned(),
            out.instructions.to_string(),
            format!("{:.4}", out.sim_seconds()),
            format!("{:.3}", out.stats.scalar("workload.utilization")),
        ]);
    }
    println!("{}", npb.render());

    let mut gapbs = Table::new(
        "GAP Benchmark Suite (8 cores, full system)",
        &["kernel", "insts", "exec time (sim s)", "IPC/core"],
    );
    for app in GAPBS_APPS {
        let profile = gapbs_profile(app).expect("known kernel");
        let out = config.run_workload(&profile, InputSize::SimSmall)?;
        gapbs.row(&[
            app.to_owned(),
            out.instructions.to_string(),
            format!("{:.4}", out.sim_seconds()),
            format!("{:.3}", out.stats.scalar("workload.utilization")),
        ]);
    }
    println!("{}", gapbs.render());
    println!(
        "Graph kernels (GAPBS) run at a fraction of the NPB kernels' IPC: poor locality \
         over a 512 MiB graph defeats the cache hierarchy — visible directly in the stats."
    );
    Ok(())
}
