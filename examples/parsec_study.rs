//! The paper's Figure 5 launch script, in Rust: a PARSEC cross-product
//! study over OS images and core counts.
//!
//! ```text
//! cargo run --example parsec_study --release
//! ```

use simart::report::Table;
use simart::sim::os::OsImage;
use simart::sim::system::Fidelity;
use simart_bench::usecase1;

fn main() {
    // A reduced cross product (3 apps x 2 OS x 3 core counts) still
    // exercises the full pipeline; `usecase1::run` does all 60 runs.
    eprintln!("running the use-case 1 cross product at smoke fidelity...");
    let data = usecase1::run(Fidelity::Smoke);

    let mut table = Table::new(
        "PARSEC execution time (simulated seconds), Ubuntu 18.04 vs 20.04",
        &["app", "cores", "18.04", "20.04", "diff", "winner"],
    );
    for app in ["blackscholes", "dedup", "ferret"] {
        for cores in usecase1::CORE_COUNTS {
            let bionic = data
                .get(app, OsImage::Ubuntu1804, cores)
                .expect("row exists");
            let focal = data
                .get(app, OsImage::Ubuntu2004, cores)
                .expect("row exists");
            let b = usecase1::seconds(bionic.exec_ticks);
            let f = usecase1::seconds(focal.exec_ticks);
            table.row(&[
                app.to_owned(),
                cores.to_string(),
                format!("{b:.4}"),
                format!("{f:.4}"),
                format!("{:+.4}", b - f),
                if f < b {
                    "20.04".into()
                } else {
                    "18.04".into()
                },
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "Across all {} data points, Ubuntu 20.04 runs more instructions at higher \
         utilization and finishes sooner — the paper's cross-stack observation.",
        data.rows.len()
    );
}
