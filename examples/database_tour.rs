//! Database tour: run a small sweep, then slice the results with the
//! query and aggregation layers, render Markdown, and persist the
//! database to disk — everything the paper does in Jupyter, in Rust.
//!
//! ```text
//! cargo run --example database_tour --release
//! ```

use simart::cross::CrossProduct;
use simart::db::{aggregate, Database, Filter, Reduce, Value};
use simart::report::Table;
use simart::resources::{disks, kernels::KernelResource, suite};
use simart::sim::kernel::KernelVersion;
use simart::sim::os::OsImage;
use simart::sim::system::{Fidelity, SystemConfig};
use simart::sim::workload::{parsec_profile, InputSize};
use simart::tasks::PoolScheduler;
use simart::{ExecOutcome, Experiment};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let experiment = Experiment::new("database-tour");
    let (simulator, repo, script, kernel, disk) = experiment.with_registry(|r| {
        let [repo, bin, script] = suite::register_simulator(r, "20.1.0.4", "X86")?;
        let kernel = suite::register_kernel(r, &KernelResource::standard(KernelVersion::V5_4))?;
        let disk = suite::register_disk_image(r, &disks::parsec_image(OsImage::Ubuntu2004))?;
        Ok((bin.id(), repo.id(), script.id(), kernel.id(), disk.id()))
    })?;

    // A small sweep: 3 apps x 3 core counts.
    let sweep = CrossProduct::new()
        .axis("app", ["blackscholes", "dedup", "swaptions"])
        .axis("cores", ["1", "2", "8"]);
    let runs: Vec<_> = sweep
        .iter()
        .map(|combo| {
            experiment
                .create_fs_run(|b| {
                    b.simulator(simulator, "sim")
                        .simulator_repo(repo)
                        .run_script(script, "run.py")
                        .kernel(kernel, "vmlinux")
                        .disk_image(disk, "disk.img")
                        .params(combo.params())
                })
                .expect("valid run")
        })
        .collect();

    let pool = PoolScheduler::new(4);
    let summary = experiment.launch(runs, &pool, |run| {
        let profile = parsec_profile(&run.params()[0]).ok_or("unknown app")?;
        let cores = run.params()[1].parse().map_err(|e| format!("{e}"))?;
        let config = SystemConfig::builder()
            .cores(cores)
            .os(OsImage::Ubuntu2004)
            .fidelity(Fidelity::Smoke)
            .build()
            .map_err(|e| e.to_string())?;
        let out = config
            .run_workload(&profile, InputSize::SimSmall)
            .map_err(|e| e.to_string())?;
        Ok(ExecOutcome {
            outcome: out.outcome.label().into(),
            sim_ticks: out.sim_ticks,
            payload: out.stats.dump().into_bytes(),
            success: out.outcome.is_success(),
            events: vec![],
        })
    });
    println!("launched: {summary:?}\n");

    // Query + aggregate: mean simulated time per application. The
    // aggregation reads a copy-on-write snapshot, so every stage sees
    // one consistent cut of the collection.
    let runs_collection = experiment.database().collection("runs");
    let means = aggregate::group_reduce(
        &runs_collection.snapshot(),
        &Filter::eq("status", "done"),
        "params.0",
        "results.simTicks",
        Reduce::Mean,
    );
    let mut table = Table::new(
        "Mean simulated ticks per application",
        &["app", "mean ticks"],
    );
    for (app, mean) in &means {
        table.row(&[app.clone(), format!("{mean:.0}")]);
    }
    println!("{}", table.render());
    println!("same table as Markdown:\n\n{}", table.render_markdown());

    // Targeted query: which runs beat 2 simulated seconds?
    let fast = runs_collection.find(
        &Filter::eq("status", "done").and(Filter::lt("results.simTicks", 2_000_000_000_000i64)),
    );
    println!("{} run(s) finished under 2 simulated seconds:", fast.len());
    for doc in fast {
        let params = doc.at("params").and_then(Value::as_array).unwrap();
        println!(
            "  {} on {} core(s)",
            params[0].as_str().unwrap_or("?"),
            params[1].as_str().unwrap_or("?")
        );
    }

    // Persist everything; a collaborator can `Database::load` it.
    let dir = std::env::temp_dir().join("simart-database-tour");
    let _ = std::fs::remove_dir_all(&dir);
    experiment.database().save(&dir)?;
    let restored = Database::load(&dir)?;
    println!(
        "\ndatabase persisted to {} ({} runs, {} artifacts) and reloaded successfully",
        dir.display(),
        restored.collection("runs").len(),
        restored.collection("artifacts").len()
    );

    // Attached mode: `open` journals every mutation as it commits —
    // kill the process at any point and nothing committed is lost.
    // `checkpoint` folds the journal back into the snapshot files.
    let attached = Database::open(&dir)?;
    attached.collection("notes").insert(Value::map([
        ("_id", Value::from("tour")),
        ("text", Value::from("journaled the moment it was inserted")),
    ]))?;
    attached.checkpoint()?;
    println!(
        "attached reopen: note journaled and checkpointed ({} collections on disk)",
        Database::load(&dir)?.collection_names().len()
    );
    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
